//! Offline mini-`serde_json`.
//!
//! JSON text rendering and parsing for the vendored mini-serde data model
//! ([`serde::Value`]). The public functions mirror the real crate's
//! signatures — [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`from_value`] — so workspace code compiles unchanged if
//! the `vendor/` path dependencies are swapped back to crates.io.
//!
//! Finite `f64`s round-trip **bit-exactly**: the writer emits Rust's
//! shortest-round-trip `Display` form (with `.0` appended to integral
//! values, matching real `serde_json`), and the parser routes any literal
//! containing `.`/`e`/`E` through `str::parse::<f64>`, which performs
//! correctly rounded conversion. Non-finite floats serialise as `null`
//! (real `serde_json` behaviour); the mini-serde `f64` deserialiser maps
//! `null` back to NaN so report round-trips stay total.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

pub use serde::{DeError, Value};

/// Error from JSON parsing or value conversion.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
    /// Byte offset in the input where parsing failed (0 for conversion
    /// errors).
    pub offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at offset {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error {
            msg: e.0,
            offset: 0,
        }
    }
}

/// Convert any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serialise to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to human-oriented JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |o, v, d| {
            write_value(o, v, indent, d)
        }),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator, F: Fn(&mut String, I::Item, usize)>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    write_item: F,
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

/// Shortest-round-trip decimal for a finite `f64`; `null` otherwise.
///
/// Rust's `Display` for `f64` prints the shortest decimal string that
/// parses back to the same bits, but renders integral values without a
/// fractional part ("5"). A bare "5" would re-parse as an integer, so —
/// like real `serde_json` — integral floats gain a ".0" suffix. Negative
/// zero is special-cased ("-0.0") because "-0" would re-parse as integer
/// zero and lose the sign bit.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser: recursive descent with a depth limit.
// ---------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a low surrogate.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 character (input is &str, so
                    // continuation bytes are valid).
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid number `{text}`")))?;
            Ok(Value::F64(x))
        } else if let Some(rest) = text.strip_prefix('-') {
            // Negative integer.
            let _ = rest;
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::I64(n)),
                // Fall back to f64 for magnitudes beyond i64.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.err(format!("invalid number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::U64(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.err(format!("invalid number `{text}`"))),
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_text() {
        for (v, s) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::U64(42), "42"),
            (Value::I64(-7), "-7"),
            (Value::F64(1.5), "1.5"),
        ] {
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, s);
            assert_eq!(parse(s).unwrap(), v);
        }
    }

    #[test]
    fn integral_floats_keep_fraction() {
        let mut out = String::new();
        write_value(&mut out, &Value::F64(5.0), None, 0);
        assert_eq!(out, "5.0");
        assert_eq!(parse("5.0").unwrap(), Value::F64(5.0));
    }

    #[test]
    fn negative_zero_keeps_sign() {
        let mut out = String::new();
        write_value(&mut out, &Value::F64(-0.0), None, 0);
        assert_eq!(out, "-0.0");
        let Value::F64(x) = parse("-0.0").unwrap() else {
            panic!("not a float");
        };
        assert_eq!(x.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn non_finite_serialises_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        // And null deserialises back to NaN (mini-serde extension).
        let x: f64 = from_str("null").unwrap();
        assert!(x.is_nan());
    }

    #[test]
    fn f64_bit_exact_round_trip_hard_cases() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            5e-324, // smallest subnormal
            1.7976931348623157e308,
            -2.2250738585072014e-308,
            #[allow(clippy::excessive_precision)]
            123456789.123456789,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a\"b\\c\nd\tü🦀\u{7}";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_escapes() {
        let back: String = from_str("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(back, "🦀");
    }

    #[test]
    fn arrays_objects_and_pretty() {
        let v = Value::Object(vec![
            (
                "xs".into(),
                Value::Array(vec![Value::U64(1), Value::U64(2)]),
            ),
            ("name".into(), Value::String("grid".into())),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0);
        assert_eq!(compact, "{\"xs\":[1,2],\"name\":\"grid\"}");
        assert_eq!(parse(&compact).unwrap(), v);
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"xs\": ["));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err());
        assert!(parse("42 extra").is_err());
        assert!(parse("").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn typed_round_trip_via_derive_free_impls() {
        let xs: Vec<f64> = vec![0.25, -1.5, 3.0];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[0.25,-1.5,3.0]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
