//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and report
//! types but never actually serializes anything (there is no `serde_json`
//! in the tree), so the derives here expand to nothing. Swapping the
//! `vendor/` stubs for the real crates requires no source changes.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepted on any item, expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepted on any item, expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
