//! Offline mini-`serde_derive`.
//!
//! Generates working `Serialize`/`Deserialize` impls for the item shapes
//! this workspace uses — structs with named fields, tuple structs, and
//! enums with unit / newtype / tuple / struct variants — targeting the
//! mini-serde data model in `vendor/serde`. The emitted layout matches
//! real `serde_json`'s externally-tagged defaults (unit variants as bare
//! strings, data variants as single-key objects, newtype structs
//! transparent), so scenario files written here stay readable by the real
//! crates after a crates.io swap.
//!
//! Implementation notes: the input item is parsed with a small hand-rolled
//! scanner over `proc_macro::TokenTree`s (no `syn`/`quote` in the sealed
//! environment); generic parameters are not supported (no derive site in
//! this workspace needs them) and produce a compile error via `panic!`.
//! Of serde's field attributes, `skip_serializing_if = "path"` is honoured
//! on named fields (real-serde semantics: the field is omitted when
//! `path(&value)` is true); `default` needs no generated-code support
//! because absent keys already deserialise from `Value::Null`, which
//! `Option` fields accept as `None`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// Field list of a struct or enum variant.
enum Fields {
    /// `struct X;` or `Variant`.
    Unit,
    /// `struct X { a: T, b: U }` — the named fields.
    Named(Vec<NamedField>),
    /// `struct X(T, U);` — the arity.
    Tuple(usize),
}

/// One named field plus the serde knobs the generated code honours.
struct NamedField {
    name: String,
    /// `#[serde(skip_serializing_if = "path")]` predicate, if any: the
    /// field is omitted from serialised objects when `path(&value)` is
    /// true (real serde's behaviour). The deserializer needs no matching
    /// support — absent keys already fall back to `Value::Null`, which
    /// `Option` fields accept as `None`.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize` (mini-serde: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let item = parse_item(item);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (mini-serde: `fn from_value(&Value)`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let item = parse_item(item);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip outer attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(...)`).
fn skip_attrs_and_vis(iter: &mut Tokens) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(iter: &mut Tokens, context: &str) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("mini serde_derive: expected identifier {context}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = expect_ident(&mut iter, "(`struct` or `enum`)");
    let name = expect_ident(&mut iter, "(type name)");
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("mini serde_derive: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("mini serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("mini serde_derive: unexpected enum body {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("mini serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parse `name: Type, ...` field lists, returning the names. Commas inside
/// angle brackets (`Vec<(f64, f64)>` style generics) do not split fields:
/// nested `()`/`[]`/`{}` arrive as single `Group` tokens, and `<`/`>`
/// depth is tracked explicitly.
fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let skip_if = take_field_attrs(&mut iter);
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(id) = tree else {
            panic!("mini serde_derive: expected field name, found {tree:?}");
        };
        fields.push(NamedField {
            name: id.to_string(),
            skip_if,
        });
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("mini serde_derive: expected `:` after field, found {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tree in iter.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Consume the attributes and visibility before a named field, returning
/// the `skip_serializing_if` predicate path if a `#[serde(...)]`
/// attribute carries one. Other serde knobs (`default`) need no
/// generated-code support and are ignored.
fn take_field_attrs(iter: &mut Tokens) -> Option<String> {
    let mut skip_if = None;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(attr)) = iter.next() {
                    skip_if = parse_serde_attr(attr.stream()).or(skip_if);
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return skip_if,
        }
    }
}

/// Extract `skip_serializing_if = "path"` from one attribute body
/// (`serde(...)` only; doc comments and other attributes return `None`).
fn parse_serde_attr(stream: TokenStream) -> Option<String> {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return None;
    };
    let mut args = args.stream().into_iter();
    while let Some(tree) = args.next() {
        let TokenTree::Ident(id) = &tree else {
            continue;
        };
        if id.to_string() != "skip_serializing_if" {
            continue;
        }
        match (args.next(), args.next()) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                return Some(lit.to_string().trim_matches('"').to_string());
            }
            other => panic!("mini serde_derive: malformed skip_serializing_if ({other:?})"),
        }
    }
    None
}

/// Count the fields of a tuple struct / tuple variant body: the number of
/// top-level comma-separated segments that contain type tokens. Attributes
/// (incl. doc comments, which arrive as `#[doc = ...]`) and trailing
/// commas do not count.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut segment_has_type = false;
    let mut iter = stream.into_iter().peekable();
    while let Some(tree) = iter.next() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume its bracketed body, contributes no type.
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_has_type = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                segment_has_type = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_has_type {
                    count += 1;
                }
                segment_has_type = false;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => segment_has_type = true,
        }
    }
    if segment_has_type {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(id) = tree else {
            panic!("mini serde_derive: expected variant name, found {tree:?}");
        };
        let name = id.to_string();
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(stream))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(stream))
            }
            _ => Fields::Unit,
        };
        // Skip any discriminant and the separating comma.
        for tree in iter.by_ref() {
            if let TokenTree::Punct(p) = &tree {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------

/// Emit the statements filling a `fields` vec from named fields, honouring
/// each field's `skip_serializing_if` predicate. `access` prefixes the
/// field name (`&self.` in struct impls, `` for match bindings, which are
/// already references).
fn named_field_pushes(fields: &[NamedField], access: &str, vec_name: &str) -> String {
    let mut parts = String::new();
    for f in fields {
        let (name, value) = (&f.name, format!("{access}{}", f.name));
        let push = format!(
            "{vec_name}.push((String::from(\"{name}\"), serde::__private::to_value({value})));"
        );
        match &f.skip_if {
            Some(pred) => {
                let _ = write!(parts, "if !{pred}({value}) {{ {push} }}");
            }
            None => parts.push_str(&push),
        }
    }
    parts
}

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Named(fields) => {
            let parts = named_field_pushes(fields, "&self.", "fields");
            format!(
                "{{ let mut fields: Vec<(String, serde::Value)> = Vec::new(); \
                 {parts} serde::Value::Object(fields) }}"
            )
        }
        Fields::Tuple(1) => "serde::__private::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let mut parts = String::new();
            for i in 0..*n {
                let _ = write!(parts, "serde::__private::to_value(&self.{i}),");
            }
            format!("serde::Value::Array(vec![{parts}])")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("Ok({name})"),
        Fields::Named(fields) => {
            let mut parts = String::new();
            for f in fields {
                let f = &f.name;
                let _ = write!(
                    parts,
                    "{f}: serde::__private::field(obj, \"{f}\", \"{name}\")?,"
                );
            }
            format!(
                "let obj = serde::__private::as_object(value, \"struct {name}\")?;\n\
                 Ok({name} {{ {parts} }})"
            )
        }
        Fields::Tuple(1) => format!("Ok({name}(serde::__private::from_value(value)?))"),
        Fields::Tuple(n) => {
            let mut parts = String::new();
            for i in 0..*n {
                let _ = write!(parts, "serde::__private::from_value(&items[{i}])?,");
            }
            format!(
                "let items = serde::__private::as_tuple(value, {n}, \"tuple struct {name}\")?;\n\
                 Ok({name}({parts}))"
            )
        }
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                let _ = write!(
                    arms,
                    "{name}::{vn} => serde::Value::String(String::from(\"{vn}\")),"
                );
            }
            Fields::Named(fields) => {
                let binds = fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                let parts = named_field_pushes(fields, "", "inner");
                let _ = write!(
                    arms,
                    "{name}::{vn} {{ {binds} }} => {{ \
                         let mut inner: Vec<(String, serde::Value)> = Vec::new(); \
                         {parts} \
                         serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Object(inner))]) \
                     }}"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    arms,
                    "{name}::{vn}(x0) => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::__private::to_value(x0))]),"
                );
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let mut parts = String::new();
                for b in &binds {
                    let _ = write!(parts, "serde::__private::to_value({b}),");
                }
                let _ = write!(
                    arms,
                    "{name}::{vn}({}) => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Array(vec![{parts}]))]),",
                    binds.join(", ")
                );
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                let _ = write!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),");
            }
            Fields::Named(fields) => {
                let mut parts = String::new();
                for f in fields {
                    let f = &f.name;
                    let _ = write!(
                        parts,
                        "{f}: serde::__private::field(obj, \"{f}\", \"{name}::{vn}\")?,"
                    );
                }
                let _ = write!(
                    tagged_arms,
                    "\"{vn}\" => {{\n\
                         let obj = serde::__private::as_object(inner, \"variant {name}::{vn}\")?;\n\
                         Ok({name}::{vn} {{ {parts} }})\n\
                     }}"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    tagged_arms,
                    "\"{vn}\" => Ok({name}::{vn}(serde::__private::from_value(inner)?)),"
                );
            }
            Fields::Tuple(n) => {
                let mut parts = String::new();
                for i in 0..*n {
                    let _ = write!(parts, "serde::__private::from_value(&items[{i}])?,");
                }
                let _ = write!(
                    tagged_arms,
                    "\"{vn}\" => {{\n\
                         let items = serde::__private::as_tuple(inner, {n}, \"variant {name}::{vn}\")?;\n\
                         Ok({name}::{vn}({parts}))\n\
                     }}"
                );
            }
        }
    }
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 match value {{\n\
                     serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(serde::DeError(format!(\n\
                             \"unknown unit variant `{{other}}` of enum {name}\"))),\n\
                     }},\n\
                     serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(serde::DeError(format!(\n\
                                 \"unknown variant `{{other}}` of enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(serde::DeError::expected(\"enum {name}\", value)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
