//! Offline stub of `rand` (the slice of the 0.8 API this workspace uses).
//!
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family the real `rand 0.8` uses for `SmallRng` on 64-bit
//! targets — so statistical quality matches the upstream crate. Only the
//! methods the workspace calls are provided: `seed_from_u64`, `next_u32`,
//! `next_u64`, `fill_bytes`, `gen::<f64>()` and `gen_range` over primitive
//! integer/float ranges. Swap the `vendor/` path dependency for the real
//! crate when network access is available; no source changes are needed,
//! but seeded draw sequences will differ (the workspace's determinism
//! contract is per-build, not cross-crate-version).

#![warn(missing_docs)]

/// Core infallible RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (matches the
    /// upstream default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: Steele, Lea & Flood (2014); public domain.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, zb) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = zb;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from an RNG's raw bits (stand-in for the
/// `Standard` distribution used by [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1), the conversion rand 0.8 uses.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift mapping (Lemire); bias is O(span / 2^64),
                // negligible for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}
float_range!(f64, f32);

/// Convenience sampling methods over any [`RngCore`] (subset of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform `[0, 1)`; integers: uniform over the domain).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG algorithms (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast non-cryptographic RNG: xoshiro256++ (Blackman & Vigna,
    /// 2018; public domain) — the algorithm behind `rand 0.8`'s `SmallRng`
    /// on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline(always)]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                for (b, wb) in chunk.iter_mut().zip(word) {
                    *b = wb;
                }
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_uniform_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            let k = rng.gen_range(0usize..10);
            counts[k] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 100_000.0 - 0.1).abs() < 0.01);
        }
        for _ in 0..1000 {
            let x = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
            let f = rng.gen_range(2.0f64..5.0);
            assert!((2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
