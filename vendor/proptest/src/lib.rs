//! Offline mini-proptest.
//!
//! Implements the slice of the `proptest` API this workspace's property
//! tests use — [`Strategy`] with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`any`], `prop::collection::vec`, [`Just`],
//! [`ProptestConfig`], and the [`proptest!`]/`prop_assert*` macros — on top
//! of a deterministic per-test RNG. Differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   printed; cases are reproducible because the RNG stream is a pure
//!   function of the test name and case index.
//! * **`prop_assume!` skips** the case instead of re-drawing it.
//!
//! Swap the `vendor/` path dependency for the real crate when network
//! access is available; the test sources compile unchanged.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic source of randomness handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5EED)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }
}

/// A generator of random values (the mini version samples, never shrinks).
pub trait Strategy {
    /// The value type produced.
    type Value: core::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the produced value.
    fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produce a follow-up strategy from the value (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `f` (bounded retries, then panic).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: core::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive draws",
            self.whence
        );
    }
}

/// Strategy producing one fixed value (like proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}
float_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
    (A, B, C, D, E, G, H);
    (A, B, C, D, E, G, H, I);
}

/// Types with a canonical whole-domain strategy (mini `Arbitrary`).
pub trait Arbitrary: Sized + core::fmt::Debug {
    /// Sample uniformly from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy over `T`'s full domain; see [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical whole-domain strategy for `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Namespaced strategy constructors (mini `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Size specification for [`vec()`]: a fixed size or a range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            min: usize,
            /// Inclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { min: n, max: n }
            }
        }
        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }
        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy: each element drawn from `element`, length drawn
        /// from `size` (fixed `usize`, `a..b`, or `a..=b`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.min == self.size.max {
                    self.size.min
                } else {
                    self.size.min + rng.below(self.size.max - self.size.min + 1)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property (panics with the formatted message;
/// the harness prints the sampled case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when the assumption fails (the real crate
/// re-draws; the mini version just moves on to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each function's `pat in strategy` arguments are
/// sampled `config.cases` times and the body re-run per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    // On panic inside the body, the guard reports the case
                    // index and sampled inputs; cases are reproducible
                    // because the stream is deterministic in the test name
                    // and case index.
                    let __guard = $crate::CaseReporter::new(stringify!($name), __case);
                    $(
                        let $pat = {
                            let __sampled = $crate::Strategy::sample(&($strat), &mut __rng);
                            __guard.record(format!("{:?}", __sampled));
                            __sampled
                        };
                    )+
                    $body
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Prints the failing case index on unwind (armed per case by
/// [`proptest!`]).
pub struct CaseReporter {
    name: &'static str,
    case: u32,
    armed: core::cell::Cell<bool>,
    inputs: core::cell::RefCell<Vec<String>>,
}

impl CaseReporter {
    /// Arm a reporter for one case.
    pub fn new(name: &'static str, case: u32) -> CaseReporter {
        CaseReporter {
            name,
            case,
            armed: core::cell::Cell::new(true),
            inputs: core::cell::RefCell::new(Vec::new()),
        }
    }

    /// Record one sampled input (for the failure report).
    pub fn record(&self, shown: String) {
        self.inputs.borrow_mut().push(shown);
    }

    /// The case passed; do not report.
    pub fn disarm(&self) {
        self.armed.set(false);
    }
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if self.armed.get() && std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case {} with inputs {:?} \
                 (deterministic; rerun reproduces it)",
                self.name,
                self.case,
                self.inputs.borrow()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (1usize..=10, 0.5f64..2.0, Just(7u8)).sample(&mut rng);
            assert!((1..=10).contains(&v.0));
            assert!((0.5..2.0).contains(&v.1));
            assert_eq!(v.2, 7);
        }
    }

    #[test]
    fn flat_map_dependent_sampling() {
        let strat = (1usize..=6).prop_flat_map(|d| {
            let n = 1u64 << d;
            (Just(d), 0..n)
        });
        let mut rng = crate::TestRng::for_case("t2", 3);
        for _ in 0..1000 {
            let (d, x) = strat.sample(&mut rng);
            assert!(x < (1u64 << d));
        }
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = crate::TestRng::for_case("t3", 1);
        for _ in 0..200 {
            let v = prop::collection::vec(0.0f64..1.0, 3..7).sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            let w = prop::collection::vec(any::<u8>(), 5).sample(&mut rng);
            assert_eq!(w.len(), 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(x in 0u64..100, (a, b) in (0usize..4, 0usize..4)) {
            prop_assert!(x < 100);
            prop_assert!(a < 4 && b < 4);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
