//! Offline mini-criterion.
//!
//! A wall-clock microbenchmark harness exposing the slice of the
//! `criterion` API the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It runs a short warm-up, then timed batches
//! until a time budget is spent, and prints mean time per iteration with a
//! min/max spread — no statistics engine, plots, or saved baselines. Swap
//! the `vendor/` path dependency for the real crate when network access is
//! available; bench sources compile unchanged.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much of the measurement time one setup batch should cover
/// (only a hint in the real crate; ignored here beyond existing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing handle passed to bench closures.
pub struct Bencher {
    /// (iterations, total duration) pairs recorded by `iter*`.
    samples: Vec<(u64, Duration)>,
    measurement_time: Duration,
}

impl Bencher {
    fn new(measurement_time: Duration) -> Bencher {
        Bencher {
            samples: Vec::new(),
            measurement_time,
        }
    }

    /// Measure `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call, then estimate the per-iter cost.
        black_box(routine());
        let probe = Instant::now();
        black_box(routine());
        let est = probe.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (self.measurement_time.as_nanos() / 10 / est.as_nanos()).clamp(1, 1 << 20) as u64;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push((per_batch, start.elapsed()));
        }
    }

    /// Measure `routine` on fresh inputs from `setup`, excluding setup time
    /// from the per-batch estimate as far as the mini harness can (setup
    /// runs outside the timed section).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push((1, start.elapsed()));
        }
    }

    fn report(&self, name: &str) {
        let iters: u64 = self.samples.iter().map(|&(n, _)| n).sum();
        if iters == 0 {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().map(|&(_, d)| d).sum();
        let mean = total.as_secs_f64() / iters as f64;
        let per_iter = |&(n, d): &(u64, Duration)| d.as_secs_f64() / n as f64;
        let min = self.samples.iter().map(per_iter).fold(f64::MAX, f64::min);
        let max = self.samples.iter().map(per_iter).fold(0.0f64, f64::max);
        println!(
            "{name:<40} time: [{} {} {}]  ({iters} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The top-level harness.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(500u64);
        Criterion {
            measurement_time: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            measurement_time: self.measurement_time,
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of benchmarks (`group/name` labels).
pub struct BenchmarkGroup<'a> {
    /// Group-local budget; overrides die with the group (`finish`), like
    /// the real crate.
    measurement_time: Duration,
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the mini harness paces by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set this group's measurement budget (does not outlive the group).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_and_reports() {
        let mut b = Bencher::new(Duration::from_millis(20));
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(!b.samples.is_empty());
        b.report("smoke");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.samples.iter().all(|&(n, _)| n == 1));
    }

    #[test]
    fn group_measurement_time_does_not_leak_to_parent() {
        let mut c = Criterion::default();
        let parent_budget = c.measurement_time;
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("inner", |b| b.iter(|| 1u64 + 1));
        group.finish();
        assert_eq!(c.measurement_time, parent_budget);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
