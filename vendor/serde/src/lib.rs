//! Offline mini-`serde`.
//!
//! The sealed build environment has no crates.io access, so this crate
//! stands in for `serde`. Unlike the original no-op stub it is **functional**:
//! [`Serialize`]/[`Deserialize`] convert values to and from a JSON-shaped
//! [`Value`] tree, and the companion `vendor/serde_derive` proc macro
//! generates real impls in the same externally-tagged layout the genuine
//! `serde`/`serde_json` pair produces (unit enum variants as strings,
//! data-carrying variants as single-key objects, newtype structs
//! transparent). `vendor/serde_json` renders and parses the tree as JSON
//! text.
//!
//! Downstream workspace code only ever uses
//! `use serde::{Deserialize, Serialize}`, the derives, and the
//! `serde_json::{to_string, to_string_pretty, from_str}` functions, all of
//! which match the real crates' call signatures — so swapping the `vendor/`
//! path dependencies back to crates.io versions requires no source changes
//! outside `vendor/`. (The trait *methods* here differ from real serde's
//! visitor architecture; nothing outside `vendor/` calls them directly.)

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the data model of this mini-serde.
///
/// Object keys keep insertion order (a `Vec` of pairs, not a map), so
/// serialising a struct lists its fields in declaration order and text
/// round-trips are stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (preferred for unsigned Rust ints).
    U64(u64),
    /// Negative integer (only produced when the value is `< 0`).
    I64(i64),
    /// Floating-point number. Finite values round-trip bit-exactly through
    /// `serde_json` text; NaN/infinities serialise as `null` (as real
    /// `serde_json` does).
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be interpreted as the requested
/// type.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Error with a "expected X, found Y" message.
    pub fn expected(what: &str, found: &Value) -> DeError {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::U64(_) | Value::I64(_) => "an integer",
            Value::F64(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
///
/// The `'de` lifetime exists only for signature compatibility with real
/// serde bounds (`for<'de> Deserialize<'de>`); this mini-serde always
/// copies out of the tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct a value from the data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::expected("an unsigned integer", value)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n: i64 = match *value {
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range for i64")))?,
                    Value::I64(n) => n,
                    _ => return Err(DeError::expected("an integer", value)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for std::num::NonZeroUsize {
    fn to_value(&self) -> Value {
        Value::U64(self.get() as u64)
    }
}

impl<'de> Deserialize<'de> for std::num::NonZeroUsize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let n = usize::from_value(value)?;
        std::num::NonZeroUsize::new(n)
            .ok_or_else(|| DeError("expected a nonzero integer, found 0".to_string()))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            // Real serde_json writes non-finite floats as `null`; accept the
            // reverse mapping so report round-trips stay total.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("a number", value)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("a boolean", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("a string", value)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("an array", value)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let Value::Array(items) = value else {
                    return Err(DeError::expected("a tuple (array)", value));
                };
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if items.len() != LEN {
                    return Err(DeError(format!(
                        "expected a {LEN}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Support machinery used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Serialize, Value};

    /// Interpret `value` as an object while deserialising `ty`.
    pub fn as_object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
        match value {
            Value::Object(fields) => Ok(fields),
            _ => Err(DeError::expected(ty, value)),
        }
    }

    /// Interpret `value` as an array of exactly `len` items (tuple structs
    /// and tuple enum variants).
    pub fn as_tuple<'v>(value: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], DeError> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            _ => Err(DeError::expected(ty, value)),
        }
    }

    /// Deserialize one named field of a struct or struct variant.
    pub fn field<'de, T: Deserialize<'de>>(
        obj: &[(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<T, DeError> {
        let value = match obj.iter().find(|(k, _)| k == key) {
            Some((_, v)) => v,
            // Absent key: try deserializing from `null`, which succeeds
            // exactly for `Option` fields (as `None`) — matching real
            // serde's implicitly-optional treatment of `Option<T>` struct
            // fields — and keeps the "missing field" error for the rest.
            None => {
                return T::from_value(&Value::Null)
                    .map_err(|_| DeError(format!("missing field `{key}` of {ty}")))
            }
        };
        T::from_value(value).map_err(|e| DeError(format!("{ty}.{key}: {e}")))
    }

    /// Serialize a value (free-function form for generated code).
    pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
        v.to_value()
    }

    /// Deserialize a value (free-function form for generated code).
    pub fn from_value<'de, T: Deserialize<'de>>(v: &Value) -> Result<T, DeError> {
        T::from_value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v = vec![1.0f64, 2.5, -3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()), Ok(v));
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()), Ok(None));
        assert_eq!(
            Option::<u32>::from_value(&Some(5u32).to_value()),
            Ok(Some(5))
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn absent_field_is_none_for_options_and_error_otherwise() {
        let obj = [(String::from("present"), Value::U64(3))];
        assert_eq!(
            __private::field::<Option<u64>>(&obj, "absent", "T"),
            Ok(None)
        );
        assert_eq!(__private::field::<u64>(&obj, "present", "T"), Ok(3));
        let err = __private::field::<u64>(&obj, "absent", "T").unwrap_err();
        assert!(err.0.contains("missing field `absent`"), "{err}");
    }

    #[test]
    fn tuples_round_trip() {
        let pair = (1.5f64, 3u64);
        assert_eq!(<(f64, u64)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn object_get() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.get("a"), Some(&Value::U64(1)));
        assert_eq!(obj.get("b"), None);
    }
}
