//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! macro namespace so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Nothing in this
//! workspace performs serialization, so the traits carry no methods and the
//! derives expand to nothing. Replace the `vendor/` path dependencies with
//! the real crates.io versions once network access is available; no source
//! changes are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; never invoked).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; never invoked).
pub trait Deserialize<'de> {}
