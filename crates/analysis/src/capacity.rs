//! Capacity planning: the paper's bounds inverted into design questions a
//! network architect actually asks — "what load can a `d`-cube guarantee a
//! target delay at?", "what rate can each node sustain?".
//!
//! All answers use the *guaranteed* (Prop. 12/17) upper bounds, so they are
//! conservative: the real network is faster.

use crate::butterfly_bounds;

/// Largest load factor `ρ` at which Prop. 12 guarantees mean delay at most
/// `target` on the `d`-cube: solving `dp/(1-ρ) ≤ T*` gives
/// `ρ ≤ 1 - dp/T*`. Returns `None` when `target < dp` (unreachable even
/// empty: packets need `dp` hops on average).
pub fn hypercube_max_load_for_delay(d: usize, p: f64, target: f64) -> Option<f64> {
    assert!(d >= 1 && (0.0..=1.0).contains(&p) && target > 0.0);
    let dp = d as f64 * p;
    if target < dp {
        return None;
    }
    Some((1.0 - dp / target).clamp(0.0, 1.0))
}

/// Largest per-node Poisson rate `λ` with the same guarantee
/// (`λ = ρ/p`).
pub fn hypercube_max_lambda_for_delay(d: usize, p: f64, target: f64) -> Option<f64> {
    assert!(p > 0.0, "p must be positive to convert load to rate");
    hypercube_max_load_for_delay(d, p, target).map(|rho| rho / p)
}

/// Smallest hypercube dimension hosting at least `nodes` processors.
pub fn dimension_for_nodes(nodes: u64) -> usize {
    assert!(nodes >= 1);
    (64 - nodes.saturating_sub(1).leading_zeros() as usize).max(1)
}

/// Guaranteed mean delay of the `d`-cube at load `ρ` (Prop. 12 restated
/// for planning): `dp/(1-ρ)`.
pub fn hypercube_guaranteed_delay(d: usize, p: f64, rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho));
    d as f64 * p / (1.0 - rho)
}

/// Largest per-node rate `λ` at which Prop. 17 guarantees butterfly mean
/// delay at most `target`, found by bisection (the bound is increasing in
/// `λ`). Returns `None` when even `λ → 0` misses the target (`target < d`).
pub fn butterfly_max_lambda_for_delay(d: usize, p: f64, target: f64) -> Option<f64> {
    assert!(d >= 1 && (0.0..=1.0).contains(&p) && target > 0.0);
    if target < d as f64 {
        return None;
    }
    let lambda_cap = 1.0 / p.max(1.0 - p); // stability limit
    let bound = |lambda: f64| butterfly_bounds::greedy_upper_bound(d, lambda, p);
    // Bisection on (0, lambda_cap).
    let (mut lo, mut hi) = (0.0f64, lambda_cap * (1.0 - 1e-9));
    if bound(hi.min(lambda_cap * 0.999_999)) <= target {
        return Some(hi);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if bound(mid) <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Throughput–delay frontier of the `d`-cube: the guaranteed
/// (total packets/unit time, delay) pairs swept over `ρ`.
pub fn hypercube_frontier(d: usize, p: f64, rhos: &[f64]) -> Vec<(f64, f64)> {
    rhos.iter()
        .map(|&rho| {
            let lambda = rho / p;
            let throughput = lambda * (1u64 << d) as f64;
            (throughput, hypercube_guaranteed_delay(d, p, rho))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_for_delay_round_trips() {
        let (d, p) = (8usize, 0.5);
        for &target in &[5.0, 10.0, 50.0] {
            let rho = hypercube_max_load_for_delay(d, p, target).unwrap();
            let achieved = hypercube_guaranteed_delay(d, p, rho);
            assert!(
                (achieved - target).abs() < 1e-9,
                "target {target}: ρ={rho} gives {achieved}"
            );
        }
    }

    #[test]
    fn unreachable_targets_are_none() {
        // dp = 4: targets below the bare path length are impossible.
        assert!(hypercube_max_load_for_delay(8, 0.5, 3.9).is_none());
        assert!(butterfly_max_lambda_for_delay(8, 0.5, 7.9).is_none());
    }

    #[test]
    fn more_headroom_at_larger_targets() {
        let (d, p) = (8usize, 0.5);
        let tight = hypercube_max_load_for_delay(d, p, 5.0).unwrap();
        let loose = hypercube_max_load_for_delay(d, p, 100.0).unwrap();
        assert!(loose > tight);
        assert!(loose < 1.0);
    }

    #[test]
    fn dimension_for_nodes_rounds_up() {
        assert_eq!(dimension_for_nodes(1), 1);
        assert_eq!(dimension_for_nodes(2), 1);
        assert_eq!(dimension_for_nodes(3), 2);
        assert_eq!(dimension_for_nodes(1024), 10);
        assert_eq!(dimension_for_nodes(1025), 11);
    }

    #[test]
    fn butterfly_bisection_hits_target() {
        let (d, p, target) = (6usize, 0.5, 20.0);
        let lambda = butterfly_max_lambda_for_delay(d, p, target).unwrap();
        let achieved = butterfly_bounds::greedy_upper_bound(d, lambda, p);
        assert!(
            achieved <= target + 1e-6 && achieved > target * 0.99,
            "λ={lambda}: bound {achieved} vs target {target}"
        );
    }

    #[test]
    fn butterfly_huge_target_returns_near_capacity() {
        let lambda = butterfly_max_lambda_for_delay(4, 0.5, 1e9).unwrap();
        assert!((lambda - 2.0).abs() < 1e-6); // 1/max{p,1-p} = 2
    }

    #[test]
    fn frontier_is_monotone() {
        let f = hypercube_frontier(6, 0.5, &[0.1, 0.5, 0.9]);
        assert_eq!(f.len(), 3);
        assert!(f.windows(2).all(|w| w[1].0 > w[0].0 && w[1].1 > w[0].1));
    }
}
