//! Load factors and stability conditions (§2.1, §4.2).

/// Hypercube load factor `ρ = λp` (Eq. (2)). The network can be stable
/// under **any** routing scheme only if `ρ ≤ 1`, and (for non-deterministic
/// arrivals) only if `ρ < 1`.
pub fn hypercube_load_factor(lambda: f64, p: f64) -> f64 {
    validate(lambda, p);
    lambda * p
}

/// Butterfly load factor `ρ_bf = λ·max{p, 1-p}` (Eq. (17)): vertical arcs
/// carry `λp`, straight arcs `λ(1-p)`; whichever is larger is the
/// bottleneck (they swap roles at `p = 1/2`).
pub fn butterfly_load_factor(lambda: f64, p: f64) -> f64 {
    validate(lambda, p);
    lambda * p.max(1.0 - p)
}

/// Necessary stability condition for the hypercube under any scheme.
pub fn hypercube_necessary_condition(lambda: f64, p: f64) -> bool {
    hypercube_load_factor(lambda, p) < 1.0
}

/// Necessary (and, for greedy routing, sufficient — Prop. 16) stability
/// condition for the butterfly.
pub fn butterfly_necessary_condition(lambda: f64, p: f64) -> bool {
    butterfly_load_factor(lambda, p) < 1.0
}

/// Per-node arrival rate `λ` that realises a target hypercube load factor.
pub fn lambda_for_load(rho: f64, p: f64) -> f64 {
    assert!((f64::MIN_POSITIVE..=1.0).contains(&p), "need 0 < p ≤ 1");
    assert!(rho >= 0.0);
    rho / p
}

/// Expected Hamming distance to the destination, `d·p` (Lemma 1): the mean
/// number of arcs any packet must traverse, hence `T ≥ dp` under any scheme.
pub fn expected_path_length(d: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    d as f64 * p
}

/// Per-dimension load factors for an arbitrary translation-invariant
/// destination distribution `f(x ⊕ z)` (end of §2.2):
/// `p_j = λ · Σ_{y : y_j = 1} f(y)`, and the generalised load factor is
/// `ρ = max_j p_j`.
///
/// `f` is given over XOR-masks `0..2^d`; it must sum to 1.
pub fn dimension_load_factors(d: usize, lambda: f64, f: &dyn Fn(u64) -> f64) -> Vec<f64> {
    assert!((1..=30).contains(&d));
    let mut loads = vec![0.0f64; d];
    let mut total = 0.0;
    for y in 0..(1u64 << d) {
        let fy = f(y);
        assert!(fy >= 0.0, "negative probability at mask {y}");
        total += fy;
        for (j, load) in loads.iter_mut().enumerate() {
            if (y >> j) & 1 == 1 {
                *load += lambda * fy;
            }
        }
    }
    assert!(
        (total - 1.0).abs() < 1e-9,
        "destination distribution sums to {total}, not 1"
    );
    loads
}

/// Generalised load factor `ρ = max_j p_j` for a translation-invariant
/// destination distribution.
pub fn general_load_factor(d: usize, lambda: f64, f: &dyn Fn(u64) -> f64) -> f64 {
    dimension_load_factors(d, lambda, f)
        .into_iter()
        .fold(0.0, f64::max)
}

fn validate(lambda: f64, p: f64) {
    assert!(lambda >= 0.0, "negative arrival rate {lambda}");
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_load_basics() {
        assert_eq!(hypercube_load_factor(2.0, 0.5), 1.0);
        assert!(hypercube_necessary_condition(1.9, 0.5));
        assert!(!hypercube_necessary_condition(2.0, 0.5));
        assert_eq!(lambda_for_load(0.9, 0.5), 1.8);
    }

    #[test]
    fn butterfly_load_symmetry_and_crossover() {
        // ρ_bf is symmetric in p ↔ 1-p and minimised at p = 1/2.
        let l = 1.0;
        assert_eq!(butterfly_load_factor(l, 0.3), butterfly_load_factor(l, 0.7));
        assert!(butterfly_load_factor(l, 0.5) < butterfly_load_factor(l, 0.4));
        assert_eq!(butterfly_load_factor(l, 0.5), 0.5);
        // For p > 1/2 vertical arcs dominate: ρ_bf = λp.
        assert_eq!(butterfly_load_factor(2.0, 0.8), 1.6);
    }

    #[test]
    fn expected_path_length_uniform() {
        // p = 1/2: dp = d/2, the classic average distance (with self-loops
        // permitted as in Eq. (1)).
        assert_eq!(expected_path_length(10, 0.5), 5.0);
        assert_eq!(expected_path_length(4, 1.0), 4.0);
        assert_eq!(expected_path_length(4, 0.0), 0.0);
    }

    #[test]
    fn bitflip_distribution_recovers_rho() {
        // The paper's Eq. (1) destination law as a mask distribution:
        // f(y) = p^|y| (1-p)^(d-|y|); every dimension load must equal λp.
        let (d, lambda, p) = (6usize, 1.3f64, 0.35f64);
        let f = move |y: u64| {
            let k = y.count_ones() as i32;
            p.powi(k) * (1.0 - p).powi(d as i32 - k)
        };
        let loads = dimension_load_factors(d, lambda, &f);
        for (j, l) in loads.iter().enumerate() {
            assert!((l - lambda * p).abs() < 1e-9, "dim {j}: {l}");
        }
        assert!((general_load_factor(d, lambda, &f) - lambda * p).abs() < 1e-9);
    }

    #[test]
    fn skewed_distribution_bottleneck_dimension() {
        // All traffic flips only bit 0: dimension 0 carries everything.
        let d = 4;
        let f = |y: u64| if y == 1 { 1.0 } else { 0.0 };
        let loads = dimension_load_factors(d, 2.0, &f);
        assert_eq!(loads[0], 2.0);
        assert!(loads[1..].iter().all(|&l| l == 0.0));
        assert_eq!(general_load_factor(d, 2.0, &f), 2.0);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_non_distribution() {
        let f = |_: u64| 0.3;
        dimension_load_factors(3, 1.0, &f);
    }

    #[test]
    #[should_panic(expected = "p must lie in")]
    fn rejects_bad_p() {
        hypercube_load_factor(1.0, 1.5);
    }
}
