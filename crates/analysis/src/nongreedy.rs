//! The §2.3 non-greedy pipelined schemes and their (poor) stability.
//!
//! *Pipelined Valiant–Brebner*: at every round each node releases one
//! stored packet; the batch is routed as the first phase of \[VaB81\], which
//! completes in time close to `R·d` with high probability for a constant
//! `R > 1`. Each node thus behaves as an M/G/1 queue with service time
//! `≈ R·d`, so stability needs `λ·R·d < 1`: at any fixed load factor
//! `ρ = λp` the scheme is **unstable once `d > p/(ρR)`** — while greedy
//! routing remains stable for every `ρ < 1` at every `d`. This contrast is
//! the paper's §2.3 motivation, reproduced in experiment E12.
//!
//! *Pipelined d-permutation schemes* (\[ChS86\], \[Val88\]) improve the
//! threshold to a small constant load factor `ρ* ≈ 0.005` (still far from
//! greedy's `ρ < 1`).

use serde::{Deserialize, Serialize};

/// The \[ChS86\]-based pipeline's approximate maximum load factor quoted in
/// §2.3.
pub const CHANG_SIMON_MAX_LOAD: f64 = 0.005;

/// Parameters of the pipelined Valiant–Brebner scheme.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PipelinedScheme {
    /// The whp round-length constant `R` (> 1) of the \[VaB81\] first phase.
    pub r_const: f64,
}

impl Default for PipelinedScheme {
    fn default() -> Self {
        // [VaB81]'s analysis allows R close to 2 for large d; any R > 1
        // gives the same qualitative conclusion.
        PipelinedScheme { r_const: 2.0 }
    }
}

impl PipelinedScheme {
    /// Round duration `R·d` for dimension `d`.
    pub fn round_length(&self, d: usize) -> f64 {
        assert!(d >= 1);
        self.r_const * d as f64
    }

    /// Maximum per-node arrival rate for stability: `λ < 1/(R·d)`.
    pub fn max_lambda(&self, d: usize) -> f64 {
        1.0 / self.round_length(d)
    }

    /// Maximum sustainable hypercube load factor `ρ = λp`: `p/(R·d)` —
    /// vanishes as `d` grows.
    pub fn max_load_factor(&self, d: usize, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        p * self.max_lambda(d)
    }

    /// Is the scheme stable at per-node rate `lambda` on the `d`-cube?
    pub fn is_stable(&self, d: usize, lambda: f64) -> bool {
        lambda < self.max_lambda(d)
    }

    /// The smallest dimension at which a fixed load factor `rho` (with
    /// bit-flip probability `p`) becomes unstable.
    pub fn instability_dimension(&self, rho: f64, p: f64) -> usize {
        assert!(rho > 0.0 && (0.0..=1.0).contains(&p) && p > 0.0);
        // unstable iff λ R d ≥ 1 iff d ≥ p/(ρ R).
        (p / (rho * self.r_const)).ceil().max(1.0) as usize
    }

    /// M/D/1-style delay estimate for the batch scheme (service `R·d`):
    /// `T ≈ R·d·(1 + u/(2(1-u)))` with `u = λ·R·d` — compare with greedy's
    /// `dp/(1-ρ)`. Returns `None` when unstable.
    pub fn delay_estimate(&self, d: usize, lambda: f64) -> Option<f64> {
        let s = self.round_length(d);
        let u = lambda * s;
        if u >= 1.0 {
            return None;
        }
        Some(s * (1.0 + u / (2.0 * (1.0 - u))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_threshold_shrinks_with_d() {
        let s = PipelinedScheme::default();
        assert!(s.max_load_factor(2, 0.5) > s.max_load_factor(8, 0.5));
        assert!(s.max_load_factor(8, 0.5) > s.max_load_factor(20, 0.5));
        // ρ_max = p/(Rd) exactly.
        assert!((s.max_load_factor(10, 0.5) - 0.5 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_load_becomes_unstable_at_predicted_dimension() {
        let s = PipelinedScheme::default();
        let (rho, p) = (0.1, 0.5);
        let d_star = s.instability_dimension(rho, p);
        // d* = ceil(0.5 / 0.2) = 3.
        assert_eq!(d_star, 3);
        // Just below: stable; at d*: unstable.
        let lambda = rho / p;
        assert!(s.is_stable(d_star - 1, lambda));
        assert!(!s.is_stable(d_star, lambda));
    }

    #[test]
    fn greedy_always_beats_pipeline_threshold() {
        // Greedy sustains any ρ < 1; pipeline cannot reach ρ = 0.5 even at
        // d = 2.
        let s = PipelinedScheme::default();
        for d in 2..20 {
            assert!(s.max_load_factor(d, 0.5) < 0.5);
        }
    }

    #[test]
    fn delay_estimate_unstable_is_none() {
        let s = PipelinedScheme::default();
        assert!(s.delay_estimate(10, 0.06).is_none()); // u = 1.2
        let t = s.delay_estimate(10, 0.01).unwrap(); // u = 0.2
        assert!(t > 20.0); // at least a full round
        assert!((t - 20.0 * (1.0 + 0.2 / 1.6)).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the §2.3 constant
    fn chang_simon_far_below_one() {
        assert!(CHANG_SIMON_MAX_LOAD < 0.01);
    }
}
