//! Delay bounds for greedy routing on the butterfly (§4.2–§4.3).

use crate::hypercube_bounds::DelayBounds;
use crate::load::butterfly_load_factor;
use hyperroute_queueing::md1;

/// Proposition 14 (universal lower bound): under **any** routing scheme,
/// `T ≥ d + λp²/(2(1-λp)) + λ(1-p)²/(2(1-λ(1-p)))`.
///
/// First-level arcs `(x;0;v)` and `(x;0;s)` behave at best as M/D/1 queues
/// with rates `λp`, `λ(1-p)`; every packet then needs `d-1` further hops.
pub fn universal_lower_bound(d: usize, lambda: f64, p: f64) -> f64 {
    check(d, lambda, p);
    let (rv, rs) = (lambda * p, lambda * (1.0 - p));
    let w_v = if p > 0.0 { md1::mean_sojourn(rv) } else { 1.0 };
    let w_s = if p < 1.0 { md1::mean_sojourn(rs) } else { 1.0 };
    (d - 1) as f64 + p * w_v + (1.0 - p) * w_s
}

/// Proposition 17 (upper bound for greedy routing):
/// `T ≤ dp/(1-λp) + d(1-p)/(1-λ(1-p))`.
pub fn greedy_upper_bound(d: usize, lambda: f64, p: f64) -> f64 {
    check(d, lambda, p);
    let d = d as f64;
    d * p / (1.0 - lambda * p) + d * (1.0 - p) / (1.0 - lambda * (1.0 - p))
}

/// The Prop. 14/17 bracket for greedy butterfly routing.
pub fn greedy_delay_bounds(d: usize, lambda: f64, p: f64) -> DelayBounds {
    DelayBounds {
        lower: universal_lower_bound(d, lambda, p),
        upper: greedy_upper_bound(d, lambda, p),
    }
}

/// "Overall" mean queue per node, `κ = λp/(1-λp) + λ(1-p)/(1-λ(1-p))`
/// (§4.3 discussion): the per-node average over levels `0..d` is `O(1)`
/// for any fixed load factor.
pub fn mean_queue_per_node_estimate(d: usize, lambda: f64, p: f64) -> f64 {
    check(d, lambda, p);
    lambda * p / (1.0 - lambda * p) + lambda * (1.0 - p) / (1.0 - lambda * (1.0 - p))
}

/// Mean total packets in the product-form comparison network R̄:
/// `N̄ = d·2^d·[λp/(1-λp) + λ(1-p)/(1-λ(1-p))]` (Eq. (21)).
pub fn product_form_mean_total(d: usize, lambda: f64, p: f64) -> f64 {
    (d as f64) * (2.0f64).powi(d as i32) * mean_queue_per_node_estimate(d, lambda, p)
}

fn check(d: usize, lambda: f64, p: f64) {
    assert!(d >= 1, "dimension must be positive");
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    let rho = butterfly_load_factor(lambda, p);
    assert!(
        rho < 1.0,
        "bounds require a stable system (ρ_bf = {rho} ≥ 1)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_below_upper_on_grid() {
        for d in [2usize, 4, 8, 12] {
            for rho in [0.2, 0.5, 0.8, 0.95] {
                for p in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
                    let lambda = rho / p.max(1.0 - p);
                    let b = greedy_delay_bounds(d, lambda, p);
                    assert!(
                        b.lower <= b.upper + 1e-12,
                        "d={d} ρ={rho} p={p}: [{}, {}]",
                        b.lower,
                        b.upper
                    );
                }
            }
        }
    }

    #[test]
    fn light_traffic_collapses_to_d() {
        // Every butterfly path has exactly d arcs, so T → d as λ → 0.
        let d = 7;
        let lb = universal_lower_bound(d, 1e-12, 0.4);
        let ub = greedy_upper_bound(d, 1e-12, 0.4);
        assert!((lb - 7.0).abs() < 1e-6);
        assert!((ub - 7.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_in_p_at_uniform_lambda() {
        // Both bounds are invariant under p ↔ 1-p (straight/vertical swap).
        let (d, lambda) = (6, 1.0);
        for p in [0.1, 0.25, 0.4] {
            assert!(
                (universal_lower_bound(d, lambda, p) - universal_lower_bound(d, lambda, 1.0 - p))
                    .abs()
                    < 1e-12
            );
            assert!(
                (greedy_upper_bound(d, lambda, p) - greedy_upper_bound(d, lambda, 1.0 - p)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn uniform_destination_values() {
        // p = 1/2, λ = 1: both arc classes at ρ = 1/2.
        // LB = d - 1 + W(1/2) = d - 1 + 1.5 = d + 0.5 exactly:
        //   (d-1) + 0.5·1.5 + 0.5·1.5.
        // UB = d·0.5/0.5 + d·0.5/0.5 = 2d.
        let d = 8;
        assert!((universal_lower_bound(d, 1.0, 0.5) - (d as f64 + 0.5)).abs() < 1e-12);
        assert!((greedy_upper_bound(d, 1.0, 0.5) - 2.0 * d as f64).abs() < 1e-12);
    }

    #[test]
    fn extreme_p_one() {
        // p = 1: only vertical arcs used; straight terms vanish.
        let (d, lambda) = (5, 0.8);
        let lb = universal_lower_bound(d, lambda, 1.0);
        let ub = greedy_upper_bound(d, lambda, 1.0);
        assert!((lb - ((d - 1) as f64 + md1::mean_sojourn(0.8))).abs() < 1e-12);
        assert!((ub - d as f64 / 0.2).abs() < 1e-12);
        assert!(lb <= ub);
    }

    #[test]
    fn per_node_estimate_is_order_one() {
        // κ stays bounded as d grows (the §4.3 observation).
        let (lambda, p) = (1.0, 0.5);
        let k4 = mean_queue_per_node_estimate(4, lambda, p);
        let k16 = mean_queue_per_node_estimate(16, lambda, p);
        assert!((k4 - k16).abs() < 1e-12);
        assert!((k4 - 2.0).abs() < 1e-12); // 2·(0.5/0.5)
    }

    #[test]
    fn product_form_total_eq21() {
        // N̄ = d·2^d·κ directly from Eq. (21).
        let (d, lambda, p) = (4, 0.9, 0.3);
        let expect = (d as f64)
            * 16.0
            * (lambda * p / (1.0 - lambda * p) + lambda * (1.0 - p) / (1.0 - lambda * (1.0 - p)));
        let got = product_form_mean_total(d, lambda, p);
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "stable system")]
    fn rejects_supercritical() {
        greedy_upper_bound(4, 2.5, 0.5);
    }
}
