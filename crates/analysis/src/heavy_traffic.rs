//! Heavy-traffic behaviour `lim_{ρ→1} (1-ρ)·T` (§3.3 end, §4.3 end).
//!
//! From Props. 12/13: for fixed `d` and `p`,
//! `p/2 ≤ lim_{ρ→1} (1-ρ)T ≤ dp` for greedy hypercube routing — the `1/(1-ρ)`
//! blow-up rate is optimal (Prop. 2 gives a matching `Ω(1/(1-ρ))` for *any*
//! scheme at fixed `d`). Closing the factor-`2d` gap is the paper's stated
//! open question; it conjectures the upper end is tight for `p ∈ (0,1)` and
//! proves the lower end tight at `p = 1`.

/// Greedy hypercube routing: the `[p/2, dp]` bracket for
/// `lim_{ρ→1} (1-ρ)T` (from Props. 13 and 12).
pub fn hypercube_bracket(d: usize, p: f64) -> (f64, f64) {
    assert!(d >= 1 && (0.0..=1.0).contains(&p));
    (p / 2.0, d as f64 * p)
}

/// At `p = 1` the limit is exactly `1/2` (disjoint paths, §3.3 end:
/// `T = d + ρ/(2(1-ρ))`).
pub fn hypercube_p_one_limit() -> f64 {
    0.5
}

/// Greedy butterfly routing: the `[max{p,1-p}/2, d·max{p,1-p}]` bracket for
/// `lim_{ρ_bf→1} (1-ρ_bf)T` (§4.3 end).
pub fn butterfly_bracket(d: usize, p: f64) -> (f64, f64) {
    assert!(d >= 1 && (0.0..=1.0).contains(&p));
    let m = p.max(1.0 - p);
    (m / 2.0, d as f64 * m)
}

/// Scaled delay `(1-ρ)·T` — the quantity whose limit the brackets bound.
pub fn scaled_delay(rho: f64, t: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho));
    (1.0 - rho) * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube_bounds;

    #[test]
    fn bracket_orders() {
        for d in [1usize, 4, 16] {
            for p in [0.1, 0.5, 1.0] {
                let (lo, hi) = hypercube_bracket(d, p);
                assert!(lo <= hi);
                let (blo, bhi) = butterfly_bracket(d, p);
                assert!(blo <= bhi);
            }
        }
    }

    #[test]
    fn scaled_bounds_converge_into_bracket() {
        // (1-ρ)·LB and (1-ρ)·UB both land inside [p/2, dp] as ρ → 1.
        let (d, p) = (8usize, 0.5);
        let (lo, hi) = hypercube_bracket(d, p);
        for &rho in &[0.99, 0.999, 0.9999] {
            let lambda = rho / p;
            let slb = scaled_delay(rho, hypercube_bounds::greedy_lower_bound(d, lambda, p));
            let sub = scaled_delay(rho, hypercube_bounds::greedy_upper_bound(d, lambda, p));
            assert!(slb >= lo * 0.99 && slb <= hi * 1.01, "scaled LB {slb}");
            assert!(sub >= lo * 0.99 && sub <= hi * 1.01, "scaled UB {sub}");
        }
    }

    #[test]
    fn p_one_limit_from_exact_formula() {
        // (1-ρ)·(d + ρ/(2(1-ρ))) → 1/2.
        let d = 6;
        for &rho in &[0.999, 0.99999] {
            let t = hypercube_bounds::p_one_exact_delay(d, rho);
            let s = scaled_delay(rho, t);
            assert!((s - hypercube_p_one_limit()).abs() < 0.02, "scaled {s}");
        }
    }

    #[test]
    fn butterfly_bracket_symmetric() {
        assert_eq!(butterfly_bracket(4, 0.3), butterfly_bracket(4, 0.7));
    }
}
