//! Delay bounds for greedy routing on the hypercube (§2.2, §3.3, §3.4).

use crate::load::{expected_path_length, hypercube_load_factor};
use hyperroute_queueing::{md1, mds};
use serde::{Deserialize, Serialize};

/// A lower/upper pair bracketing the stationary mean delay `T`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DelayBounds {
    /// Guaranteed lower bound on `T`.
    pub lower: f64,
    /// Guaranteed upper bound on `T`.
    pub upper: f64,
}

impl DelayBounds {
    /// Does a measured delay fall inside the bracket (with slack `tol`
    /// relative on each side, for simulation noise)?
    pub fn contains(&self, measured: f64, tol: f64) -> bool {
        measured >= self.lower * (1.0 - tol) && measured <= self.upper * (1.0 + tol)
    }
}

/// Proposition 2 (universal lower bound), using the **provably valid**
/// M/D/2^d delay bound of
/// [`mds::workload_lower_bound`]:
/// `T ≥ max{ dp, p·D_lb(2^d; ρ) }` for any routing scheme.
pub fn universal_lower_bound(d: usize, lambda: f64, p: f64) -> f64 {
    let rho = check_stable(d, lambda, p);
    let servers = (2.0f64).powi(d as i32);
    let dlb = mds::workload_lower_bound(servers, rho);
    expected_path_length(d, p).max(p * dlb)
}

/// Proposition 2 with the bound expression **as printed in the paper**,
/// `T ≥ max{dp, p(1 + ρ/(2^{d+1}(1-ρ)))}`; exact only as `ρ → 1` (see
/// `hyperroute_queueing::mds` for why the two forms are distinguished).
pub fn universal_lower_bound_paper_form(d: usize, lambda: f64, p: f64) -> f64 {
    let rho = check_stable(d, lambda, p);
    let servers = (2.0f64).powi(d as i32);
    let dlb = mds::paper_heavy_traffic_form(servers, rho);
    expected_path_length(d, p).max(p * dlb)
}

/// Proposition 3 (oblivious schemes): `T ≥ max{dp, p(1 + ρ/(2(1-ρ)))}`.
///
/// Every oblivious, time-independent path-selection rule — greedy routing
/// included — obeys this.
pub fn oblivious_lower_bound(d: usize, lambda: f64, p: f64) -> f64 {
    let rho = check_stable(d, lambda, p);
    expected_path_length(d, p).max(p * md1::mean_sojourn(rho))
}

/// Proposition 12 (the headline upper bound): greedy routing satisfies
/// `T ≤ dp / (1-ρ)` for every `ρ < 1` — average delay `O(d)` at any fixed
/// load.
pub fn greedy_upper_bound(d: usize, lambda: f64, p: f64) -> f64 {
    let rho = check_stable(d, lambda, p);
    expected_path_length(d, p) / (1.0 - rho)
}

/// Proposition 13: greedy routing satisfies
/// `T ≥ dp + p·ρ/(2(1-ρ))` (first-dimension arcs are M/D/1; deeper arcs
/// hold each packet at least one unit).
pub fn greedy_lower_bound(d: usize, lambda: f64, p: f64) -> f64 {
    let rho = check_stable(d, lambda, p);
    expected_path_length(d, p) + p * md1::mean_wait(rho)
}

/// The Prop. 12/13 bracket for greedy routing.
pub fn greedy_delay_bounds(d: usize, lambda: f64, p: f64) -> DelayBounds {
    DelayBounds {
        lower: greedy_lower_bound(d, lambda, p),
        upper: greedy_upper_bound(d, lambda, p),
    }
}

/// Exact delay for `p = 1` (end of §3.3): every packet crosses all `d`
/// dimensions, canonical paths from different origins are arc-disjoint, so
/// each origin's stream sees an M/D/1 at dimension 0 and never queues
/// afterwards: `T = d + ρ/(2(1-ρ))` with `ρ = λ`.
pub fn p_one_exact_delay(d: usize, lambda: f64) -> f64 {
    let rho = check_stable(d, lambda, 1.0);
    d as f64 + md1::mean_wait(rho)
}

/// Slotted-time upper bound (§3.4): with slot length `r` (`1/r` integer)
/// and per-slot Poisson batches of mean `λr`,
/// `T_slot ≤ dp/(1-ρ) + r`.
pub fn slotted_upper_bound(d: usize, lambda: f64, p: f64, slot: f64) -> f64 {
    assert!(slot > 0.0 && slot <= 1.0, "slot length must be in (0, 1]");
    greedy_upper_bound(d, lambda, p) + slot
}

/// Steady-state mean number of packets stored per node is at most
/// `d·ρ/(1-ρ)` (§3.3 discussion after Prop. 12: `N ≤ d·2^d·ρ/(1-ρ)`
/// divided by `2^d` nodes).
pub fn mean_queue_per_node_bound(d: usize, lambda: f64, p: f64) -> f64 {
    let rho = check_stable(d, lambda, p);
    d as f64 * rho / (1.0 - rho)
}

/// Mean total packets in the product-form comparison network Q̄:
/// `N̄ = d·2^d·ρ/(1-ρ)` (proof of Prop. 12).
pub fn product_form_mean_total(d: usize, lambda: f64, p: f64) -> f64 {
    let rho = check_stable(d, lambda, p);
    (d as f64) * (2.0f64).powi(d as i32) * rho / (1.0 - rho)
}

fn check_stable(d: usize, lambda: f64, p: f64) -> f64 {
    assert!(d >= 1, "dimension must be positive");
    let rho = hypercube_load_factor(lambda, p);
    assert!(rho < 1.0, "bounds require a stable system (ρ = {rho} ≥ 1)");
    rho
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID_D: [usize; 4] = [2, 4, 8, 12];
    const GRID_RHO: [f64; 5] = [0.1, 0.3, 0.5, 0.8, 0.95];
    const GRID_P: [f64; 4] = [0.2, 0.5, 0.8, 1.0];

    #[test]
    fn bound_ordering_on_grid() {
        // universal ≤ oblivious ≤ greedy-LB ≤ greedy-UB everywhere.
        for &d in &GRID_D {
            for &rho in &GRID_RHO {
                for &p in &GRID_P {
                    let lambda = rho / p;
                    let u = universal_lower_bound(d, lambda, p);
                    let o = oblivious_lower_bound(d, lambda, p);
                    let gl = greedy_lower_bound(d, lambda, p);
                    let gu = greedy_upper_bound(d, lambda, p);
                    assert!(u <= o + 1e-12, "d={d} ρ={rho} p={p}: {u} > {o}");
                    assert!(o <= gl + 1e-12, "d={d} ρ={rho} p={p}: {o} > {gl}");
                    assert!(gl <= gu + 1e-12, "d={d} ρ={rho} p={p}: {gl} > {gu}");
                }
            }
        }
    }

    #[test]
    fn light_traffic_limits() {
        // As ρ → 0 all brackets collapse to dp.
        let (d, p) = (8, 0.5);
        let lambda = 1e-9 / p;
        let dp = 4.0;
        assert!((greedy_upper_bound(d, lambda, p) - dp).abs() < 1e-6);
        assert!((greedy_lower_bound(d, lambda, p) - dp).abs() < 1e-6);
        assert!((universal_lower_bound(d, lambda, p) - dp).abs() < 1e-6);
    }

    #[test]
    fn paper_values_prop12() {
        // d=10, p=1/2, ρ=0.9 → T ≤ 5/(0.1) = 50.
        let t = greedy_upper_bound(10, 1.8, 0.5);
        assert!((t - 50.0).abs() < 1e-9);
    }

    #[test]
    fn paper_values_prop13() {
        // d=10, p=1/2, ρ=0.9 → T ≥ 5 + 0.5·0.9/(2·0.1) = 7.25.
        let t = greedy_lower_bound(10, 1.8, 0.5);
        assert!((t - 7.25).abs() < 1e-9);
    }

    #[test]
    fn p_one_exact_is_inside_greedy_bracket() {
        for &d in &GRID_D {
            for &rho in &GRID_RHO {
                let t = p_one_exact_delay(d, rho);
                let b = greedy_delay_bounds(d, rho, 1.0);
                assert!(
                    b.contains(t, 1e-12),
                    "d={d} ρ={rho}: exact {t} outside [{}, {}]",
                    b.lower,
                    b.upper
                );
            }
        }
    }

    #[test]
    fn p_one_lower_bound_is_tight() {
        // §3.3: for p = 1 the Prop. 13 lower bound is exactly attained.
        for &d in &GRID_D {
            let rho = 0.7;
            let exact = p_one_exact_delay(d, rho);
            let lb = greedy_lower_bound(d, rho, 1.0);
            assert!((exact - lb).abs() < 1e-12, "d={d}: {exact} vs {lb}");
        }
    }

    #[test]
    fn slotted_adds_exactly_one_slot() {
        let (d, lambda, p) = (6, 1.0, 0.5);
        let base = greedy_upper_bound(d, lambda, p);
        assert_eq!(slotted_upper_bound(d, lambda, p, 0.25), base + 0.25);
        assert_eq!(slotted_upper_bound(d, lambda, p, 1.0), base + 1.0);
    }

    #[test]
    fn product_form_total_matches_per_node_bound() {
        let (d, lambda, p) = (5, 1.2, 0.5);
        let total = product_form_mean_total(d, lambda, p);
        let per_node = mean_queue_per_node_bound(d, lambda, p);
        assert!((total / 32.0 - per_node).abs() < 1e-9);
    }

    #[test]
    fn universal_bound_paper_form_dominates_valid_form() {
        // The printed form is never below the conservative valid form.
        for &d in &GRID_D {
            for &rho in &[0.5, 0.9] {
                let lambda = rho / 0.5;
                let paper = universal_lower_bound_paper_form(d, lambda, 0.5);
                let valid = universal_lower_bound(d, lambda, 0.5);
                assert!(paper >= valid - 1e-12);
            }
        }
    }

    #[test]
    fn heavy_traffic_blowup_rate() {
        // (1-ρ)·UB is constant in ρ: equals dp.
        let (d, p) = (8, 0.5);
        for &rho in &[0.9, 0.99, 0.999] {
            let lambda = rho / p;
            let scaled = (1.0 - rho) * greedy_upper_bound(d, lambda, p);
            assert!((scaled - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "stable system")]
    fn rejects_supercritical() {
        greedy_upper_bound(4, 2.0, 0.5);
    }
}
