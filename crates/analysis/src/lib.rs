//! Closed-form bounds from *The Efficiency of Greedy Routing in Hypercubes
//! and Butterflies* (Stamoulis & Tsitsiklis, SPAA 1991), as documented,
//! testable functions.
//!
//! Conventions: `d` is the network dimension, `lambda` the per-node Poisson
//! generation rate, `p` the bit-flip probability of the destination
//! distribution (Eq. (1) of the paper). The hypercube load factor is
//! `ρ = λp`; the butterfly's is `ρ_bf = λ·max{p, 1-p}`.
//!
//! Module map:
//! * [`load`] — load factors, stability predicates, expected path lengths
//!   (§2.1, Eq. (2), Prop. 16), including the translation-invariant
//!   generalisation at the end of §2.2;
//! * [`hypercube_bounds`] — Props. 2, 3, 12, 13, the `p = 1` exact delay
//!   and the slotted-time bound (§3.3–§3.4);
//! * [`butterfly_bounds`] — Props. 14 and 17 (§4);
//! * [`heavy_traffic`] — the `lim_{ρ→1}(1-ρ)T` brackets (§3.3, §4.3);
//! * [`nongreedy`] — the §2.3 pipelined schemes' stability thresholds and
//!   delay model.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod butterfly_bounds;
pub mod capacity;
pub mod heavy_traffic;
pub mod hypercube_bounds;
pub mod load;
pub mod nongreedy;
