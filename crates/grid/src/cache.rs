//! The content-addressed report cache.
//!
//! Five PRs of corpus gating prove that a [`Report`] is a **pure
//! function** of its scenario's canonical JSON: same spec, same bytes,
//! on any backend, worker count, or machine. This module turns that
//! determinism into serving capacity — a [`ReportCache`] keyed by
//! [`CacheKey`] (the scenario's [`Scenario::canonical_hash`], which
//! already folds in the engine fingerprint) is consulted *before* any
//! simulation, so repeated or overlapping sweeps are answered without
//! simulating at all.
//!
//! Two backends ship:
//!
//! * [`MemoryCache`] — a bounded in-memory LRU, the hot tier of a
//!   long-running [`crate::service::SweepService`];
//! * [`DiskCache`] — one `<hash>.report.json` per report, written with
//!   the same atomic temp-file-and-rename discipline as campaign
//!   checkpoints, so a cache directory survives kills and can be shared
//!   across service restarts (and, over a network filesystem, machines).
//!
//! Every implementation counts hits, misses, and inserts
//! ([`CacheStats`]); the service surfaces the counters through its
//! status replies and the CLI prints them after cached runs, so "zero
//! simulations on resubmit" is an assertable number, not a hope.
//!
//! Correctness note: a cached report must be **byte-identical** to a
//! fresh simulation. [`MemoryCache`] stores the `Report` value itself
//! (bit-exact by construction); [`DiskCache`] stores its canonical JSON,
//! whose round trip is bit-exact by the same serde guarantees the
//! corpus baselines rely on. A disk entry that fails to parse (a
//! truncated file from a kill mid-write cannot happen thanks to the
//! atomic rename, but a foreign or corrupted file can) is treated as a
//! miss and overwritten — never trusted.

use hyperroute_core::scenario::{Report, Scenario, ScenarioHash};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The content address of one report: the scenario's canonical hash.
///
/// Equal keys mean "the engine would produce byte-identical reports";
/// the engine fingerprint folded into [`Scenario::canonical_hash`]
/// guarantees keys from an older engine never collide with the current
/// one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub ScenarioHash);

impl CacheKey {
    /// The cache key of `scenario`.
    pub fn for_scenario(scenario: &Scenario) -> CacheKey {
        CacheKey(scenario.canonical_hash())
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Hit / miss / insert counters, cumulative since the cache was created.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// `get` calls answered from the cache.
    pub hits: u64,
    /// `get` calls that found nothing (or an unreadable disk entry).
    pub misses: u64,
    /// `put` calls that stored a report.
    pub inserts: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} inserts",
            self.hits, self.misses, self.inserts
        )
    }
}

/// A content-addressed report store.
///
/// Implementations take `&self` and must be safe to share across the
/// dispatcher's worker threads (`Send + Sync`); counters and storage use
/// interior mutability.
pub trait ReportCache: Send + Sync {
    /// Look up the report for `key`, counting a hit or a miss.
    fn get(&self, key: &CacheKey) -> Option<Report>;

    /// Store `report` under `key`, counting an insert. Overwrites any
    /// existing entry (by construction both hold the same bytes).
    fn put(&self, key: &CacheKey, report: &Report);

    /// Cumulative counters.
    fn stats(&self) -> CacheStats;
}

/// Bounded in-memory LRU cache.
///
/// Recency is a generation counter bumped on every touch; eviction
/// removes the least-recently-used entry when the capacity is exceeded.
/// Eviction scans for the minimum generation — O(capacity) per insert
/// past the limit, which is fine at the few-thousand-report capacities a
/// sweep service holds (a `Report` is the expensive thing, not the
/// scan).
pub struct MemoryCache {
    inner: Mutex<MemoryInner>,
    capacity: usize,
}

struct MemoryInner {
    map: HashMap<CacheKey, (u64, Report)>,
    tick: u64,
    stats: CacheStats,
}

impl MemoryCache {
    /// An LRU cache holding at most `capacity` reports.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> MemoryCache {
        assert!(capacity > 0, "cache capacity must be positive");
        MemoryCache {
            inner: Mutex::new(MemoryInner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            capacity,
        }
    }

    /// Reports currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ReportCache for MemoryCache {
    fn get(&self, key: &CacheKey) -> Option<Report> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((gen, report)) => {
                *gen = tick;
                let report = report.clone();
                inner.stats.hits += 1;
                Some(report)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    fn put(&self, key: &CacheKey, report: &Report) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(*key, (tick, report.clone()));
        inner.stats.inserts += 1;
        if inner.map.len() > self.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (gen, _))| *gen)
                .map(|(k, _)| *k)
                .expect("map is non-empty past capacity");
            inner.map.remove(&oldest);
        }
    }

    fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }
}

/// On-disk cache: one `<hash>.report.json` per report in a flat
/// directory.
///
/// Writes go through the campaign checkpoints' atomic
/// write-then-rename, so a concurrent reader (another service process
/// sharing the directory) only ever sees absent or complete files, and
/// a kill mid-write leaves at worst an orphaned `.tmp`. Unparseable
/// entries are misses, recomputed and overwritten.
pub struct DiskCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl DiskCache {
    /// Open (creating if needed) the cache directory `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskCache, crate::GridError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| crate::error::io_error(&dir, e))?;
        Ok(DiskCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        })
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.report.json"))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl ReportCache for DiskCache {
    fn get(&self, key: &CacheKey) -> Option<Report> {
        let report = std::fs::read_to_string(self.entry_path(key))
            .ok()
            .and_then(|text| serde_json::from_str::<Report>(&text).ok());
        match report {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: &CacheKey, report: &Report) {
        let text = serde_json::to_string(report).expect("reports always serialise");
        // Best-effort: a full disk degrades the cache to misses, it does
        // not fail the campaign (the simulation result is already in
        // hand when `put` runs).
        let _ = crate::campaign::atomic_write(&self.entry_path(key), &text);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperroute_core::scenario::Topology;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scenario(seed: u64) -> Scenario {
        Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.8)
            .horizon(50.0)
            .warmup(10.0)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hyperroute-cache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn exercise_round_trip(cache: &dyn ReportCache) {
        let s = scenario(7);
        let key = CacheKey::for_scenario(&s);
        let report = s.run().unwrap();
        assert_eq!(cache.get(&key), None);
        cache.put(&key, &report);
        let cached = cache.get(&key).expect("just inserted");
        // Byte identity, not just PartialEq: the cache serves what the
        // simulation would have produced, down to the JSON rendering.
        assert_eq!(
            serde_json::to_string(&cached).unwrap(),
            serde_json::to_string(&report).unwrap()
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                inserts: 1
            }
        );
    }

    #[test]
    fn memory_cache_round_trips_byte_identically() {
        exercise_round_trip(&MemoryCache::new(8));
    }

    #[test]
    fn disk_cache_round_trips_byte_identically() {
        let dir = temp_dir("roundtrip");
        exercise_round_trip(&DiskCache::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_scenarios_get_distinct_keys() {
        assert_ne!(
            CacheKey::for_scenario(&scenario(1)),
            CacheKey::for_scenario(&scenario(2))
        );
        assert_eq!(
            CacheKey::for_scenario(&scenario(1)),
            CacheKey::for_scenario(&scenario(1))
        );
    }

    #[test]
    fn memory_cache_evicts_least_recently_used() {
        let cache = MemoryCache::new(2);
        let (a, b, c) = (scenario(1), scenario(2), scenario(3));
        let (ka, kb, kc) = (
            CacheKey::for_scenario(&a),
            CacheKey::for_scenario(&b),
            CacheKey::for_scenario(&c),
        );
        let report = a.run().unwrap();
        cache.put(&ka, &report);
        cache.put(&kb, &report);
        // Touch `a` so `b` is now the least recently used.
        assert!(cache.get(&ka).is_some());
        cache.put(&kc, &report);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ka).is_some(), "recently-used entry survives");
        assert!(cache.get(&kc).is_some(), "new entry survives");
        assert!(cache.get(&kb).is_none(), "LRU entry was evicted");
    }

    #[test]
    fn disk_cache_treats_corruption_as_a_miss_and_heals() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        let s = scenario(9);
        let key = CacheKey::for_scenario(&s);
        let report = s.run().unwrap();
        cache.put(&key, &report);
        // A foreign process scribbles over the entry.
        std::fs::write(dir.join(format!("{key}.report.json")), "{ nope").unwrap();
        assert_eq!(cache.get(&key), None, "corrupted entry must not be served");
        // Re-inserting heals the entry.
        cache.put(&key, &report);
        assert_eq!(cache.get(&key), Some(report));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_cache_persists_across_instances() {
        let dir = temp_dir("persist");
        let s = scenario(11);
        let key = CacheKey::for_scenario(&s);
        let report = s.run().unwrap();
        DiskCache::open(&dir).unwrap().put(&key, &report);
        // A fresh instance — a service restart — serves the entry.
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.get(&key), Some(report));
        assert_eq!(reopened.stats().hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
