//! Slicing a [`Sweep`] into serialisable jobs and merging out-of-order
//! results back into row-major report order.
//!
//! A [`GridSlice`] is self-contained: it carries the full sweep spec plus
//! the contiguous row-major range it covers, so it can cross a process or
//! machine boundary as one JSON line and be executed with nothing but
//! this crate on the other side. [`merge`] is the inverse — results
//! arrive in whatever order the backend finishes them and come back out
//! exactly as `Sweep::run` would have produced them.

use crate::error::GridError;
use hyperroute_core::scenario::{Report, Sweep};
use serde::{Deserialize, Serialize};

/// One serialisable unit of sweep work: a contiguous row-major range of
/// grid points cut from a [`Sweep`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridSlice {
    /// Slice id, unique within its campaign (the index in partition
    /// order, so `id` also orders slices by `start`).
    pub id: u64,
    /// The sweep this slice is cut from.
    pub sweep: Sweep,
    /// First grid point covered (row-major index).
    pub start: usize,
    /// Number of grid points covered.
    pub len: usize,
}

impl GridSlice {
    /// Run every grid point of this slice serially, in row-major order.
    ///
    /// Each point is a deterministic function of the sweep spec and its
    /// index, so executing the same slice anywhere — any process, any
    /// machine, any number of times — yields the same reports.
    pub fn execute(&self) -> Result<SliceResult, GridError> {
        self.execute_with(&mut |_, _| {})
    }

    /// [`GridSlice::execute`] with progress reporting: `progress(done,
    /// total)` fires after each grid point completes. The callback sees
    /// only counts — it cannot touch the runs — so observed and
    /// unobserved executions produce identical reports. Workers use this
    /// to emit heartbeat lines mid-slice.
    pub fn execute_with(
        &self,
        progress: &mut dyn FnMut(usize, usize),
    ) -> Result<SliceResult, GridError> {
        if self
            .start
            .checked_add(self.len)
            .is_none_or(|end| end > self.sweep.len())
        {
            // A malformed job from across a process boundary must come
            // back as an error line, not a worker abort. This is a
            // deterministic property of the job itself, so it carries
            // the no-retry error category.
            return Err(GridError::SliceFailed {
                slice: self.id,
                message: format!(
                    "covers points {}..{} of a {}-point grid",
                    self.start,
                    self.start.saturating_add(self.len),
                    self.sweep.len()
                ),
            });
        }
        let scenarios = self.sweep.slice_scenarios(self.start, self.len)?;
        let total = scenarios.len();
        let mut reports = Vec::with_capacity(total);
        for scenario in scenarios {
            reports.push(scenario.run()?);
            progress(reports.len(), total);
        }
        Ok(SliceResult {
            id: self.id,
            start: self.start,
            reports,
        })
    }
}

/// The reports of one executed [`GridSlice`], tagged with enough position
/// to merge out-of-order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SliceResult {
    /// Id of the slice that produced these reports.
    pub id: u64,
    /// First grid point covered.
    pub start: usize,
    /// One report per grid point, in row-major order.
    pub reports: Vec<Report>,
}

/// Cut `sweep` into slices of at most `slice_len` points each, in
/// row-major order. The final slice absorbs the remainder; an empty grid
/// partitions into no slices.
///
/// # Panics
///
/// Panics when `slice_len == 0`.
pub fn partition(sweep: &Sweep, slice_len: usize) -> Vec<GridSlice> {
    assert!(slice_len > 0, "slice length must be positive");
    let total = sweep.len();
    (0..total.div_ceil(slice_len))
        .map(|i| {
            let start = i * slice_len;
            GridSlice {
                id: i as u64,
                sweep: sweep.clone(),
                start,
                len: slice_len.min(total - start),
            }
        })
        .collect()
}

/// Reassemble out-of-order slice results into the row-major
/// `Vec<Report>` the underlying `Sweep::run` would have produced.
///
/// Rejects overlapping, duplicated, or missing coverage — a checkpoint
/// directory that was tampered with (or a dispatcher bug) surfaces here
/// rather than as silently misordered reports.
pub fn merge(total: usize, mut results: Vec<SliceResult>) -> Result<Vec<Report>, GridError> {
    results.sort_by_key(|r| r.start);
    let mut out: Vec<Report> = Vec::with_capacity(total);
    for r in results {
        if r.start != out.len() {
            return Err(GridError::Merge(format!(
                "slice {} starts at point {} but coverage reaches {}",
                r.id,
                r.start,
                out.len()
            )));
        }
        out.extend(r.reports);
    }
    if out.len() != total {
        return Err(GridError::Merge(format!(
            "slices cover {} of {} grid points",
            out.len(),
            total
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperroute_core::scenario::{Axis, Scenario, SweepParam, Topology};

    fn small_sweep() -> Sweep {
        let base = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.8)
            .p(0.5)
            .horizon(60.0)
            .warmup(10.0)
            .seed(5)
            .build()
            .unwrap();
        Sweep::new(
            base,
            vec![Axis::new(SweepParam::Lambda, vec![0.4, 0.8, 1.2, 1.6, 2.0])],
        )
    }

    #[test]
    fn partition_covers_grid_exactly_once() {
        let sweep = small_sweep();
        let slices = partition(&sweep, 2);
        assert_eq!(slices.len(), 3);
        assert_eq!(
            slices
                .iter()
                .map(|s| (s.id, s.start, s.len))
                .collect::<Vec<_>>(),
            vec![(0, 0, 2), (1, 2, 2), (2, 4, 1)]
        );
        // One oversized slice is the whole grid.
        let one = partition(&sweep, 100);
        assert_eq!(one.len(), 1);
        assert_eq!((one[0].start, one[0].len), (0, 5));
    }

    #[test]
    fn merge_reorders_and_validates() {
        let sweep = small_sweep();
        let direct = sweep.run(1).unwrap();
        let mut results: Vec<SliceResult> = partition(&sweep, 2)
            .iter()
            .map(|s| s.execute().unwrap())
            .collect();
        results.reverse(); // arrive out of order
        let merged = merge(sweep.len(), results.clone()).unwrap();
        assert_eq!(merged, direct);

        // Missing coverage is rejected.
        let partial = vec![results[0].clone()];
        assert!(matches!(
            merge(sweep.len(), partial),
            Err(GridError::Merge(_))
        ));
        // Duplicate coverage is rejected.
        let mut duplicated = results.clone();
        duplicated.push(results[0].clone());
        assert!(matches!(
            merge(sweep.len(), duplicated),
            Err(GridError::Merge(_))
        ));
    }

    #[test]
    fn progress_callback_counts_rows_without_changing_reports() {
        let slice = partition(&small_sweep(), 100).remove(0); // whole 5-point grid
        let mut seen = Vec::new();
        let observed = slice
            .execute_with(&mut |done, total| seen.push((done, total)))
            .unwrap();
        assert_eq!(seen, vec![(1, 5), (2, 5), (3, 5), (4, 5), (5, 5)]);
        assert_eq!(observed, slice.execute().unwrap());
    }

    #[test]
    fn malformed_slice_executes_to_an_error() {
        let sweep = small_sweep();
        let bogus = GridSlice {
            id: 9,
            start: 4,
            len: 3, // past the 5-point grid
            sweep,
        };
        assert!(matches!(
            bogus.execute(),
            Err(GridError::SliceFailed { slice: 9, .. })
        ));
    }

    #[test]
    fn slice_round_trips_through_json() {
        let slice = partition(&small_sweep(), 2).remove(1);
        let text = serde_json::to_string(&slice).unwrap();
        let back: GridSlice = serde_json::from_str(&text).unwrap();
        assert_eq!(back, slice);
        assert_eq!(back.execute().unwrap(), slice.execute().unwrap());
    }
}
