//! The sweep service: sharded campaign execution with warm workers, a
//! content-addressed report cache, and the scenario-corpus regression
//! gate.
//!
//! `hyperroute-core`'s [`Sweep`](hyperroute_core::scenario::Sweep) fans
//! out over local threads inside one process. This crate is everything
//! above that: it cuts any sweep into serialisable [`GridSlice`] jobs,
//! runs them through a pluggable [`ExecBackend`], and deterministically
//! merges the out-of-order results back into the row-major
//! `Vec<Report>` that `Sweep::run` would have produced —
//! **byte-identical**, whatever the backend, worker count, completion
//! order, or cache state, because every grid point is a pure function
//! of the sweep spec and its index. That purity is load-bearing twice
//! over: it is what lets out-of-order shards merge exactly, and what
//! makes a report *cacheable by scenario hash* so repeated campaigns
//! cost zero simulation.
//!
//! # Layers
//!
//! | layer | type | job |
//! |---|---|---|
//! | slicing | [`GridSlice`], [`partition`], [`merge`] | cut a grid into self-contained JSON jobs; reassemble results |
//! | execution | [`ExecBackend`]: [`ThreadPoolBackend`], [`SubprocessBackend`] | run slices in-process or on subprocess workers with retry/timeout |
//! | warm pools | [`WorkerPool`] | park live workers between campaigns; reuse instead of respawn |
//! | caching | [`ReportCache`]: [`MemoryCache`], [`DiskCache`] | serve reports by [`CacheKey`] (canonical-scenario × engine fingerprint) |
//! | dispatch | [`Campaign`] | checkpoint every finished slice; probe the cache before simulating |
//! | service | [`SweepService`], [`serve`] | long-running daemon: submit/status/stream campaigns over NDJSON |
//! | regression | [`run_corpus`] | execute `scenarios/` and diff reports against checked-in baselines |
//!
//! # The service model
//!
//! Batch mode ([`Campaign::run`]) spawns workers, runs one campaign and
//! exits. The service ([`SweepService`], CLI `hyperroute-grid serve`)
//! inverts that: it stays resident, accepts campaigns continuously over
//! the NDJSON [`ServiceRequest`]/[`ServiceReply`] protocol (stdio, or a
//! unix socket via any stream relay), and keeps two things warm between
//! campaigns —
//!
//! * **Workers.** Subprocess workers speak protocol v2 (a handshake plus
//!   tagged [`WorkerRequest`] frames) and are parked in a [`WorkerPool`]
//!   when a campaign drains rather than killed; the next campaign checks
//!   them out, so process spawn + monomorphisation cost is paid once per
//!   fleet, not once per campaign. Dispatch is throughput-weighted:
//!   per-worker points/sec is measured and the longest pending slices go
//!   to the fastest workers (classic LPT), which keeps heterogeneous
//!   fleets busy — scheduling never affects output bytes, only wall
//!   time.
//! * **Reports.** Every finished grid point is inserted into a
//!   [`ReportCache`] keyed by [`CacheKey`]: the FNV-1a-128 hash of the
//!   scenario's canonical JSON folded with the engine fingerprint.
//!   Campaigns probe the cache before simulating, so resubmitting an
//!   identical (or overlapping) sweep performs zero simulations and
//!   still streams byte-identical reports. A fingerprint bump
//!   invalidates every cached report at once.
//!
//! # The worker protocol
//!
//! `hyperroute-grid worker` answers one terminal JSON [`WorkerReply`]
//! per job line, with throttled `Progress` heartbeat lines interleaved
//! while a long slice runs (see [`subprocess`] for the exact framing,
//! the v1/v2 coexistence rules, and the fault model). The
//! [`SubprocessBackend`] speaks this protocol to any argv you give it —
//! the bundled binary for multi-core, or an ssh/container wrapper for
//! multi-machine — and treats heartbeats as keep-alives, so its timeout
//! bounds worker silence rather than slice duration. Wrap any backend
//! in a [`ProgressBackend`] to stream per-slice campaign progress to a
//! callback.
//!
//! # Checkpoint / resume
//!
//! A [`Campaign`] with a checkpoint directory writes `manifest.json`
//! (the campaign identity) once and one `slice_<id>.json` per finished
//! slice, atomically. Rerunning the identical campaign over the same
//! directory executes only the missing slices; a manifest describing a
//! different sweep is refused. See [`campaign`] for the format.
//!
//! ```
//! use hyperroute_core::scenario::{Axis, Scenario, Sweep, SweepParam, Topology};
//! use hyperroute_grid::{Campaign, MemoryCache, ReportCache, ThreadPoolBackend};
//!
//! let base = Scenario::builder(Topology::Hypercube { dim: 3 })
//!     .horizon(80.0)
//!     .warmup(20.0)
//!     .build()
//!     .unwrap();
//! let sweep = Sweep::new(base, vec![Axis::new(SweepParam::Lambda, vec![0.5, 1.0, 1.5])]);
//! let cache = MemoryCache::new(64);
//! let backend = ThreadPoolBackend::new(2);
//! let reports = Campaign::new(sweep.clone(), 1)
//!     .run_cached(&backend, &cache)
//!     .unwrap();
//! assert_eq!(reports, sweep.run(1).unwrap()); // same bytes, sharded
//!
//! // Resubmission simulates nothing: every point is a cache hit.
//! let again = Campaign::new(sweep, 1).run_cached(&backend, &cache).unwrap();
//! assert_eq!(again, reports);
//! assert_eq!(cache.stats().hits, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod cache;
pub mod campaign;
pub mod corpus;
pub mod error;
pub mod service;
pub mod slice;
pub mod subprocess;
pub mod warm;

pub use backend::{ExecBackend, ProgressBackend, ProgressUpdate, ThreadPoolBackend};
pub use cache::{CacheKey, CacheStats, DiskCache, MemoryCache, ReportCache};
pub use campaign::Campaign;
pub use corpus::{
    run_corpus, run_corpus_with, validate_corpus, CorpusEntry, CorpusOptions, CorpusOutcome,
    CorpusStatus, RoundTripOutcome, RoundTripStatus,
};
pub use error::GridError;
pub use service::{
    serve, CampaignState, ServiceConfig, ServiceReply, ServiceRequest, SweepService,
};
pub use slice::{merge, partition, GridSlice, SliceResult};
pub use subprocess::{
    run_worker, run_worker_with, SubprocessBackend, WorkerReply, WorkerRequest, PROTOCOL_VERSION,
};
pub use warm::WorkerPool;
