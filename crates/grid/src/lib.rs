//! Sharded sweep execution and the scenario-corpus regression gate.
//!
//! `hyperroute-core`'s [`Sweep`](hyperroute_core::scenario::Sweep) fans
//! out over local threads inside one process. This crate is the layer
//! above: it cuts any sweep into serialisable [`GridSlice`] jobs, runs
//! them through a pluggable [`ExecBackend`], and deterministically merges
//! the out-of-order results back into the row-major `Vec<Report>` that
//! `Sweep::run` would have produced — **byte-identical**, whatever the
//! backend, worker count, or completion order, because every grid point
//! is a pure function of the sweep spec and its index.
//!
//! # Layers
//!
//! | layer | type | job |
//! |---|---|---|
//! | slicing | [`GridSlice`], [`partition`], [`merge`] | cut a grid into self-contained JSON jobs; reassemble results |
//! | execution | [`ExecBackend`]: [`ThreadPoolBackend`], [`SubprocessBackend`] | run slices in-process or on subprocess workers with retry/timeout |
//! | dispatch | [`Campaign`] | checkpoint every finished slice to a manifest directory; resume without recomputing |
//! | regression | [`run_corpus`] | execute `scenarios/` and diff reports against checked-in baselines |
//!
//! # The worker protocol
//!
//! `hyperroute-grid worker` reads one JSON `GridSlice` per stdin line and
//! answers one terminal JSON [`WorkerReply`] per stdout line, with
//! throttled `Progress` heartbeat lines interleaved while a long slice
//! runs (see [`subprocess`] for the exact framing and fault model). The
//! [`SubprocessBackend`] speaks this protocol to any argv you give it —
//! the bundled binary for multi-core, or an ssh/container wrapper for
//! multi-machine — and treats heartbeats as keep-alives, so its timeout
//! bounds worker silence rather than slice duration. Wrap any backend in
//! a [`ProgressBackend`] to stream per-slice campaign progress to a
//! callback.
//!
//! # Checkpoint / resume
//!
//! A [`Campaign`] with a checkpoint directory writes `manifest.json`
//! (the campaign identity) once and one `slice_<id>.json` per finished
//! slice, atomically. Rerunning the identical campaign over the same
//! directory executes only the missing slices; a manifest describing a
//! different sweep is refused. See [`campaign`] for the format.
//!
//! ```
//! use hyperroute_core::scenario::{Axis, Scenario, Sweep, SweepParam, Topology};
//! use hyperroute_grid::{Campaign, ThreadPoolBackend};
//!
//! let base = Scenario::builder(Topology::Hypercube { dim: 3 })
//!     .horizon(80.0)
//!     .warmup(20.0)
//!     .build()
//!     .unwrap();
//! let sweep = Sweep::new(base, vec![Axis::new(SweepParam::Lambda, vec![0.5, 1.0, 1.5])]);
//! let reports = Campaign::new(sweep.clone(), 1)
//!     .run(&ThreadPoolBackend::new(2))
//!     .unwrap();
//! assert_eq!(reports, sweep.run(1).unwrap()); // same bytes, sharded
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod campaign;
pub mod corpus;
pub mod error;
pub mod slice;
pub mod subprocess;

pub use backend::{ExecBackend, ProgressBackend, ProgressUpdate, ThreadPoolBackend};
pub use campaign::Campaign;
pub use corpus::{
    run_corpus, run_corpus_with, validate_corpus, CorpusEntry, CorpusOptions, CorpusOutcome,
    CorpusStatus, RoundTripOutcome, RoundTripStatus,
};
pub use error::GridError;
pub use slice::{merge, partition, GridSlice, SliceResult};
pub use subprocess::{run_worker, run_worker_with, SubprocessBackend, WorkerReply};
