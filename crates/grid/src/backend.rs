//! Pluggable slice-execution backends.
//!
//! An [`ExecBackend`] takes a batch of [`GridSlice`] jobs and streams
//! their [`SliceResult`]s back **as each slice completes, in any order**
//! — the dispatcher ([`crate::campaign::Campaign`]) owns ordering (via
//! [`crate::slice::merge`]) and checkpointing, so backends stay dumb
//! executors. Two implementations ship:
//!
//! * [`ThreadPoolBackend`] — in-process fan-out over scoped worker
//!   threads (the default; zero serialisation cost);
//! * [`crate::subprocess::SubprocessBackend`] — out-of-process workers
//!   speaking the newline-delimited JSON protocol, with retry and
//!   timeout handling for lost workers.
//!
//! Every grid point is a deterministic function of the sweep spec and
//! its row-major index, so **which** backend runs a slice — and with how
//! many workers — can never change the merged reports.

use crate::error::GridError;
use crate::slice::{GridSlice, SliceResult};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// A strategy for executing a batch of independent slice jobs.
pub trait ExecBackend {
    /// Execute every job in `jobs`, calling `on_result` once per slice
    /// as it completes (completion order is backend-defined). `on_result`
    /// runs on the calling thread; returning an error from it aborts the
    /// batch.
    fn execute(
        &self,
        jobs: &[GridSlice],
        on_result: &mut dyn FnMut(SliceResult) -> Result<(), GridError>,
    ) -> Result<(), GridError>;
}

/// One campaign progress snapshot, emitted after each finished slice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgressUpdate {
    /// Slices finished so far in this batch.
    pub done: usize,
    /// Slices in this batch (pending only — checkpointed slices a
    /// resumed campaign skips are not counted).
    pub total: usize,
    /// Grid points finished so far.
    pub points: usize,
    /// Grid points per wall-clock second since the batch started.
    pub points_per_sec: f64,
}

/// Decorator that reports campaign progress — one [`ProgressUpdate`] per
/// finished slice — to a sink, then forwards the result unchanged. The
/// sink runs on the dispatching thread, so a plain `eprintln!` closure
/// is enough; results and merge order are untouched.
pub struct ProgressBackend<'a> {
    inner: &'a dyn ExecBackend,
    sink: &'a (dyn Fn(&ProgressUpdate) + Sync),
}

impl<'a> ProgressBackend<'a> {
    /// Wrap `inner`, reporting each finished slice to `sink`.
    pub fn new(
        inner: &'a dyn ExecBackend,
        sink: &'a (dyn Fn(&ProgressUpdate) + Sync),
    ) -> ProgressBackend<'a> {
        ProgressBackend { inner, sink }
    }
}

impl ExecBackend for ProgressBackend<'_> {
    fn execute(
        &self,
        jobs: &[GridSlice],
        on_result: &mut dyn FnMut(SliceResult) -> Result<(), GridError>,
    ) -> Result<(), GridError> {
        let total = jobs.len();
        let started = std::time::Instant::now();
        let mut done = 0usize;
        let mut points = 0usize;
        self.inner.execute(jobs, &mut |result| {
            done += 1;
            points += result.reports.len();
            let secs = started.elapsed().as_secs_f64();
            (self.sink)(&ProgressUpdate {
                done,
                total,
                points,
                points_per_sec: if secs > 0.0 {
                    points as f64 / secs
                } else {
                    0.0
                },
            });
            on_result(result)
        })
    }
}

/// In-process backend: a scoped thread pool with an atomic work-stealing
/// cursor, mirroring `hyperroute_core::runner::parallel_map` but
/// streaming results out as slices finish instead of waiting for the
/// whole batch.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPoolBackend {
    /// Worker threads to fan out over (`0` = hardware parallelism).
    pub workers: usize,
}

impl ThreadPoolBackend {
    /// Backend over `workers` threads (`0` = hardware parallelism).
    pub fn new(workers: usize) -> ThreadPoolBackend {
        ThreadPoolBackend { workers }
    }
}

impl ExecBackend for ThreadPoolBackend {
    fn execute(
        &self,
        jobs: &[GridSlice],
        on_result: &mut dyn FnMut(SliceResult) -> Result<(), GridError>,
    ) -> Result<(), GridError> {
        if jobs.is_empty() {
            return Ok(());
        }
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = if self.workers == 0 { hw } else { self.workers }
            .min(jobs.len())
            .max(1);
        let cursor = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<Result<SliceResult, GridError>>();
        std::thread::scope(|scope| -> Result<(), GridError> {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let cancelled = &cancelled;
                scope.spawn(move || loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    if tx.send(jobs[i].execute()).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for outcome in rx {
                let result = match outcome {
                    Ok(result) => result,
                    Err(e) => {
                        cancelled.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                };
                if let Err(e) = on_result(result) {
                    cancelled.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::{merge, partition};
    use hyperroute_core::scenario::{Axis, Scenario, Sweep, SweepParam, Topology};

    fn small_sweep() -> Sweep {
        let base = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.8)
            .p(0.5)
            .horizon(60.0)
            .warmup(10.0)
            .seed(5)
            .build()
            .unwrap();
        Sweep::new(
            base,
            vec![Axis::new(SweepParam::Lambda, vec![0.4, 0.8, 1.2, 1.6, 2.0])],
        )
    }

    #[test]
    fn thread_pool_streams_every_slice_once() {
        let sweep = small_sweep();
        let jobs = partition(&sweep, 2);
        let mut results = Vec::new();
        ThreadPoolBackend::new(3)
            .execute(&jobs, &mut |r| {
                results.push(r);
                Ok(())
            })
            .unwrap();
        assert_eq!(results.len(), jobs.len());
        assert_eq!(merge(sweep.len(), results).unwrap(), sweep.run(1).unwrap());
    }

    #[test]
    fn progress_backend_reports_each_slice_and_forwards_results_unchanged() {
        let sweep = small_sweep();
        let jobs = partition(&sweep, 2); // 3 slices over 5 points
        let updates = std::sync::Mutex::new(Vec::new());
        let sink = |u: &ProgressUpdate| updates.lock().unwrap().push(*u);
        let inner = ThreadPoolBackend::new(2);
        let mut results = Vec::new();
        ProgressBackend::new(&inner, &sink)
            .execute(&jobs, &mut |r| {
                results.push(r);
                Ok(())
            })
            .unwrap();
        let updates = updates.into_inner().unwrap();
        assert_eq!(
            updates.iter().map(|u| u.done).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(updates.iter().all(|u| u.total == jobs.len()));
        let last = updates.last().unwrap();
        assert_eq!(last.points, sweep.len());
        assert!(last.points_per_sec.is_finite() && last.points_per_sec >= 0.0);
        assert_eq!(merge(sweep.len(), results).unwrap(), sweep.run(1).unwrap());
    }

    #[test]
    fn thread_pool_aborts_on_callback_error() {
        let sweep = small_sweep();
        let jobs = partition(&sweep, 1);
        let err = ThreadPoolBackend::new(2)
            .execute(&jobs, &mut |_| Err(GridError::Merge("stop".into())))
            .unwrap_err();
        assert!(matches!(err, GridError::Merge(_)));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        ThreadPoolBackend::new(0)
            .execute(&[], &mut |_| panic!("no results expected"))
            .unwrap();
    }
}
