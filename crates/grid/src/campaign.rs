//! The dispatcher: slice a sweep, run it through a backend, checkpoint
//! every finished slice, merge deterministically.
//!
//! # The checkpoint manifest
//!
//! A campaign given a checkpoint directory writes two kinds of file:
//!
//! * `manifest.json` — the campaign identity: the full [`Sweep`] spec,
//!   the slice length, and the grid size. Written once when the
//!   directory is fresh; on reuse the stored identity must match the
//!   campaign exactly (same spec, same slicing) or the run is refused —
//!   resuming a *different* sweep over stale slice files would silently
//!   merge unrelated reports.
//! * `slice_<id>.json` — one finished [`crate::slice::SliceResult`] per
//!   completed slice, written atomically (temp file + rename) the moment
//!   the backend delivers it.
//!
//! Resume is therefore implicit: rerunning the same campaign over the
//! same directory loads every intact slice file, executes **only** the
//! missing slices, and merges to the identical row-major `Vec<Report>`.
//! A kill mid-write leaves at worst one orphaned temp file, which is
//! ignored and recomputed.

use crate::backend::ExecBackend;
use crate::cache::{CacheKey, ReportCache};
use crate::error::{io_error, GridError};
use crate::slice::{merge, partition, GridSlice, SliceResult};
use hyperroute_core::scenario::{Report, Sweep};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// A sliced sweep run: what to execute, how finely to slice it, and
/// (optionally) where to checkpoint progress.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// The parameter grid to execute.
    pub sweep: Sweep,
    /// Grid points per slice (the job granularity).
    pub slice_len: usize,
    /// Directory for `manifest.json` + per-slice checkpoints (`None`
    /// runs without checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
}

impl Campaign {
    /// Campaign over `sweep` with `slice_len` points per slice and no
    /// checkpointing.
    ///
    /// # Panics
    ///
    /// Panics when `slice_len == 0`.
    pub fn new(sweep: Sweep, slice_len: usize) -> Campaign {
        assert!(slice_len > 0, "slice length must be positive");
        Campaign {
            sweep,
            slice_len,
            checkpoint_dir: None,
        }
    }

    /// Checkpoint into (and resume from) `dir`.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>) -> Campaign {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Execute the campaign on `backend` and return reports in row-major
    /// grid order — byte-identical to `self.sweep.run(..)`, whatever the
    /// backend, worker count, or completion order.
    ///
    /// With a checkpoint directory, already-completed slices are loaded
    /// instead of recomputed, and every newly finished slice is persisted
    /// before the campaign proceeds — an interrupted run resumes where it
    /// stopped.
    pub fn run(&self, backend: &dyn ExecBackend) -> Result<Vec<Report>, GridError> {
        self.run_inner(backend, None)
    }

    /// [`Campaign::run`] behind a content-addressed report cache.
    ///
    /// Before anything is simulated, every slice is probed against
    /// `cache` (one [`CacheKey`] per grid point): a slice whose points
    /// are **all** hits is answered synthetically without touching the
    /// backend, while a slice with any miss executes in full and its
    /// reports are inserted afterwards. A resubmitted campaign over a
    /// warm cache therefore performs *zero* simulations — assert it via
    /// [`crate::CacheStats`]. Smaller slices cache at finer granularity;
    /// `slice_len == 1` gives exact per-point reuse across overlapping
    /// sweeps.
    ///
    /// Output is byte-identical to [`Campaign::run`] (and hence to
    /// `Sweep::run`): cached reports are the same pure function of the
    /// same canonical spec, and the engine fingerprint folded into every
    /// key keeps stale engines out.
    pub fn run_cached(
        &self,
        backend: &dyn ExecBackend,
        cache: &dyn ReportCache,
    ) -> Result<Vec<Report>, GridError> {
        self.run_inner(backend, Some(cache))
    }

    fn run_inner(
        &self,
        backend: &dyn ExecBackend,
        cache: Option<&dyn ReportCache>,
    ) -> Result<Vec<Report>, GridError> {
        let slices = partition(&self.sweep, self.slice_len);
        let checkpoint = self
            .checkpoint_dir
            .as_deref()
            .map(|dir| Checkpoint::open(dir, &self.sweep, self.slice_len))
            .transpose()?;
        let mut results = match &checkpoint {
            Some(c) => c.completed(slices.len() as u64)?,
            None => Vec::new(),
        };
        let done: HashSet<u64> = results.iter().map(|r| r.id).collect();
        let mut pending: Vec<GridSlice> = Vec::new();
        for slice in slices {
            if done.contains(&slice.id) {
                continue;
            }
            match cache.map(|c| cached_slice(&slice, c)).transpose()? {
                Some(Some(result)) => {
                    if let Some(c) = &checkpoint {
                        c.record(&result)?;
                    }
                    results.push(result);
                }
                // Uncached run, or at least one point missed the cache.
                Some(None) | None => pending.push(slice),
            }
        }
        backend.execute(&pending, &mut |result| {
            if let Some(c) = &checkpoint {
                c.record(&result)?;
            }
            if let Some(c) = cache {
                insert_slice(&self.sweep, &result, c)?;
            }
            results.push(result);
            Ok(())
        })?;
        merge(self.sweep.len(), results)
    }
}

/// Probe every point of `slice` against the cache; a full house of hits
/// becomes a synthetic [`SliceResult`] (indistinguishable from an
/// executed one), any miss returns `None` and the slice simulates.
///
/// All points are probed even after the first miss so the cache's
/// hit/miss counters describe the whole slice, not a prefix.
fn cached_slice(
    slice: &GridSlice,
    cache: &dyn ReportCache,
) -> Result<Option<SliceResult>, GridError> {
    let scenarios = slice.sweep.slice_scenarios(slice.start, slice.len)?;
    let mut reports = Vec::with_capacity(scenarios.len());
    let mut complete = true;
    for scenario in &scenarios {
        match cache.get(&CacheKey::for_scenario(scenario)) {
            Some(report) if complete => reports.push(report),
            Some(_) => {}
            None => complete = false,
        }
    }
    Ok(complete.then_some(SliceResult {
        id: slice.id,
        start: slice.start,
        reports,
    }))
}

/// Insert every report of a freshly executed slice under its point's key.
fn insert_slice(
    sweep: &Sweep,
    result: &SliceResult,
    cache: &dyn ReportCache,
) -> Result<(), GridError> {
    let scenarios = sweep.slice_scenarios(result.start, result.reports.len())?;
    for (scenario, report) in scenarios.iter().zip(&result.reports) {
        cache.put(&CacheKey::for_scenario(scenario), report);
    }
    Ok(())
}

/// The identity block of `manifest.json`. Equality of the whole struct is
/// what "same campaign" means.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ManifestFile {
    sweep: Sweep,
    slice_len: usize,
    total_points: usize,
}

/// An open checkpoint directory whose manifest matches the campaign.
#[derive(Debug)]
struct Checkpoint {
    dir: PathBuf,
}

impl Checkpoint {
    /// Open (or initialise) `dir` for this campaign, refusing a manifest
    /// that describes a different one.
    fn open(dir: &Path, sweep: &Sweep, slice_len: usize) -> Result<Checkpoint, GridError> {
        std::fs::create_dir_all(dir).map_err(|e| io_error(dir, e))?;
        let manifest_path = dir.join("manifest.json");
        let manifest = ManifestFile {
            sweep: sweep.clone(),
            slice_len,
            total_points: sweep.len(),
        };
        if manifest_path.exists() {
            let text =
                std::fs::read_to_string(&manifest_path).map_err(|e| io_error(&manifest_path, e))?;
            let existing: ManifestFile = serde_json::from_str(&text).map_err(|e| {
                GridError::Checkpoint(format!(
                    "manifest {} does not parse: {e}",
                    manifest_path.display()
                ))
            })?;
            if existing != manifest {
                return Err(GridError::Checkpoint(format!(
                    "{} belongs to a different campaign (spec or slicing differs); \
                     use a fresh directory",
                    manifest_path.display()
                )));
            }
        } else {
            atomic_write(
                &manifest_path,
                &serde_json::to_string_pretty(&manifest).expect("manifests always serialise"),
            )?;
        }
        Ok(Checkpoint {
            dir: dir.to_path_buf(),
        })
    }

    fn slice_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("slice_{id}.json"))
    }

    /// Load every intact finished slice with id below `slice_count`.
    /// Unparseable or foreign files are skipped (recomputed), never
    /// trusted.
    fn completed(&self, slice_count: u64) -> Result<Vec<SliceResult>, GridError> {
        let mut results = Vec::new();
        for id in 0..slice_count {
            let path = self.slice_path(id);
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(io_error(&path, e)),
            };
            match serde_json::from_str::<SliceResult>(&text) {
                Ok(result) if result.id == id => results.push(result),
                // Damaged or mislabelled checkpoint: recompute the slice.
                Ok(_) | Err(_) => {}
            }
        }
        Ok(results)
    }

    /// Persist one finished slice atomically.
    fn record(&self, result: &SliceResult) -> Result<(), GridError> {
        atomic_write(
            &self.slice_path(result.id),
            &serde_json::to_string(result).expect("slice results always serialise"),
        )
    }
}

/// Write-then-rename so observers only ever see absent or complete files.
/// Shared with the disk report cache, which needs the same discipline.
pub(crate) fn atomic_write(path: &Path, text: &str) -> Result<(), GridError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text).map_err(|e| io_error(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_error(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ThreadPoolBackend;
    use hyperroute_core::scenario::{Axis, Scenario, SweepParam, Topology};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn small_sweep() -> Sweep {
        let base = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.8)
            .p(0.5)
            .horizon(60.0)
            .warmup(10.0)
            .seed(5)
            .build()
            .unwrap();
        Sweep::new(
            base,
            vec![Axis::new(SweepParam::Lambda, vec![0.4, 0.8, 1.2, 1.6, 2.0])],
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hyperroute-grid-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn campaign_matches_sweep_run() {
        let sweep = small_sweep();
        let direct = sweep.run(1).unwrap();
        let campaign = Campaign::new(sweep, 2);
        let got = campaign.run(&ThreadPoolBackend::new(3)).unwrap();
        assert_eq!(got, direct);
    }

    #[test]
    fn checkpoint_resume_skips_finished_slices() {
        let sweep = small_sweep();
        let direct = sweep.run(1).unwrap();
        let dir = temp_dir("resume");
        let campaign = Campaign::new(sweep, 1).with_checkpoint(&dir);

        // First pass: pretend the process dies after two slices by
        // aborting from the result callback.
        let jobs = partition(&campaign.sweep, 1);
        let ckpt = Checkpoint::open(&dir, &campaign.sweep, 1).unwrap();
        for job in &jobs[..2] {
            ckpt.record(&job.execute().unwrap()).unwrap();
        }

        // Resume: only the remaining three slices execute.
        let executed = AtomicU64::new(0);
        let counting = CountingBackend {
            inner: ThreadPoolBackend::new(2),
            executed: &executed,
        };
        let got = campaign.run(&counting).unwrap();
        assert_eq!(got, direct);
        assert_eq!(executed.load(Ordering::Relaxed), 3);

        // A second resume finds everything done and executes nothing.
        executed.store(0, Ordering::Relaxed);
        let again = campaign.run(&counting).unwrap();
        assert_eq!(again, direct);
        assert_eq!(executed.load(Ordering::Relaxed), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A sparse-generator sweep: the campaign identity must cover the
    /// generator parameters (they live inside the serialised `Topology`).
    fn sparse_sweep() -> Sweep {
        let base = Scenario::builder(Topology::SmallWorld {
            side: 10,
            dims: 2,
            links: 2,
            alpha: 2.0,
            seed: 77,
        })
        .lambda(0.04)
        .horizon(120.0)
        .warmup(20.0)
        .seed(9)
        .build()
        .unwrap();
        Sweep::new(
            base,
            vec![Axis::new(SweepParam::Alpha, vec![0.0, 2.0, 4.0])],
        )
    }

    #[test]
    fn sparse_campaign_checkpoints_and_refuses_a_foreign_generator() {
        let sweep = sparse_sweep();
        let direct = sweep.run(1).unwrap();
        let dir = temp_dir("sparse");
        let campaign = Campaign::new(sweep, 1).with_checkpoint(&dir);
        let got = campaign.run(&ThreadPoolBackend::new(2)).unwrap();
        assert_eq!(got, direct);
        // Same sweep shape, different generator seed: a different random
        // graph, hence a different campaign. Resuming it over this
        // directory would merge reports from the wrong topology — the
        // manifest must refuse, not silently reuse the stale slices.
        let mut other = sparse_sweep();
        other.base.topology = Topology::SmallWorld {
            side: 10,
            dims: 2,
            links: 2,
            alpha: 2.0,
            seed: 78,
        };
        let err = Campaign::new(other, 1)
            .with_checkpoint(&dir)
            .run(&ThreadPoolBackend::new(2))
            .unwrap_err();
        assert!(matches!(err, GridError::Checkpoint(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_refuses_foreign_manifest() {
        let dir = temp_dir("foreign");
        let sweep = small_sweep();
        Checkpoint::open(&dir, &sweep, 2).unwrap();
        // Same sweep, different slicing: a different campaign.
        let err = Checkpoint::open(&dir, &sweep, 3).unwrap_err();
        assert!(matches!(err, GridError::Checkpoint(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_slice_files_are_recomputed() {
        let dir = temp_dir("damaged");
        let sweep = small_sweep();
        let campaign = Campaign::new(sweep.clone(), 1).with_checkpoint(&dir);
        let direct = sweep.run(1).unwrap();
        campaign.run(&ThreadPoolBackend::new(2)).unwrap();
        // Truncate one checkpoint as a kill-mid-write would.
        std::fs::write(dir.join("slice_3.json"), "{\"id\":3,\"sta").unwrap();
        let got = campaign.run(&ThreadPoolBackend::new(2)).unwrap();
        assert_eq!(got, direct);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_campaign_matches_sweep_run_and_resubmit_simulates_nothing() {
        use crate::cache::{MemoryCache, ReportCache};
        let sweep = small_sweep();
        let direct = sweep.run(1).unwrap();
        let cache = MemoryCache::new(64);
        let campaign = Campaign::new(sweep, 1);
        let executed = AtomicU64::new(0);
        let counting = CountingBackend {
            inner: ThreadPoolBackend::new(2),
            executed: &executed,
        };
        // Cold cache: everything simulates, everything is inserted.
        let cold = campaign.run_cached(&counting, &cache).unwrap();
        assert_eq!(cold, direct);
        assert_eq!(executed.load(Ordering::Relaxed), 5);
        assert_eq!(cache.stats().inserts, 5);
        // Warm cache: the identical campaign performs zero simulations.
        executed.store(0, Ordering::Relaxed);
        let warm = campaign.run_cached(&counting, &cache).unwrap();
        assert_eq!(warm, direct);
        assert_eq!(executed.load(Ordering::Relaxed), 0, "zero slices executed");
        let stats = cache.stats();
        assert_eq!(stats.hits, 5, "every point served from the cache");
        assert_eq!(stats.inserts, 5, "warm pass inserted nothing new");
    }

    #[test]
    fn partial_cache_hits_simulate_only_missing_slices() {
        use crate::cache::{CacheKey, MemoryCache, ReportCache};
        let sweep = small_sweep();
        let direct = sweep.run(1).unwrap();
        let cache = MemoryCache::new(64);
        // Pre-seed points 0 and 1 (= slices 0 and 1 at slice_len 1).
        for (start, report) in direct.iter().enumerate().take(2) {
            let scenario = &sweep.slice_scenarios(start, 1).unwrap()[0];
            cache.put(&CacheKey::for_scenario(scenario), report);
        }
        let executed = AtomicU64::new(0);
        let counting = CountingBackend {
            inner: ThreadPoolBackend::new(2),
            executed: &executed,
        };
        let got = Campaign::new(sweep, 1)
            .run_cached(&counting, &cache)
            .unwrap();
        assert_eq!(got, direct);
        assert_eq!(executed.load(Ordering::Relaxed), 3, "only the misses ran");
    }

    #[test]
    fn coarse_slices_need_every_point_cached_before_they_skip_the_backend() {
        use crate::cache::{CacheKey, MemoryCache, ReportCache};
        let sweep = small_sweep();
        let direct = sweep.run(1).unwrap();
        let cache = MemoryCache::new(64);
        // Slices of 2: [0,1] [2,3] [4]. Seed only point 0 — its slice
        // still has a miss at point 1, so the whole slice re-executes.
        let scenario = &sweep.slice_scenarios(0, 1).unwrap()[0];
        cache.put(&CacheKey::for_scenario(scenario), &direct[0]);
        let executed = AtomicU64::new(0);
        let counting = CountingBackend {
            inner: ThreadPoolBackend::new(2),
            executed: &executed,
        };
        let got = Campaign::new(sweep, 2)
            .run_cached(&counting, &cache)
            .unwrap();
        assert_eq!(got, direct);
        assert_eq!(executed.load(Ordering::Relaxed), 3, "all three slices ran");
    }

    /// Wraps a backend, counting executed slices.
    struct CountingBackend<'a> {
        inner: ThreadPoolBackend,
        executed: &'a AtomicU64,
    }

    impl ExecBackend for CountingBackend<'_> {
        fn execute(
            &self,
            jobs: &[GridSlice],
            on_result: &mut dyn FnMut(SliceResult) -> Result<(), GridError>,
        ) -> Result<(), GridError> {
            self.executed
                .fetch_add(jobs.len() as u64, Ordering::Relaxed);
            self.inner.execute(jobs, on_result)
        }
    }
}
