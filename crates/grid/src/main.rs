//! The `hyperroute-grid` CLI: sharded sweep campaigns and the
//! scenario-corpus regression gate.
//!
//! ```text
//! hyperroute-grid worker
//!     Serve the stdio worker protocol (spawned by the subprocess
//!     backend; also usable behind ssh for remote workers).
//!
//! hyperroute-grid run --sweep FILE [--backend threads|subprocess]
//!     [--workers N] [--slice-len N] [--checkpoint DIR]
//!     [--timeout-secs N] [--out FILE]
//!     Execute a JSON sweep file, checkpointing and resuming through
//!     DIR, and write the row-major report array as JSON.
//!
//! hyperroute-grid serve [--backend threads|subprocess] [--workers N]
//!     [--slice-len N] [--queue N] [--cache-dir DIR] [--cache-capacity N]
//!     Run the persistent sweep service over stdio NDJSON: campaign
//!     submit / status / stream-results requests in, replies out (see
//!     `hyperroute_grid::service`). Subprocess workers stay warm
//!     between campaigns; reports are served from the content-addressed
//!     cache (on disk under `--cache-dir`, else an in-memory LRU of
//!     `--cache-capacity` reports). Bridge to a unix socket with any
//!     stream relay, e.g. `socat UNIX-LISTEN:grid.sock,fork
//!     EXEC:"hyperroute-grid serve"`.
//!
//! hyperroute-grid run-corpus [--scenarios DIR] [--baselines DIR]
//!     [--workers N] [--update] [--intra-workers N] [--only a,b,c]
//!     [--cache-dir DIR] [--require-all-hits] [--via-service]
//!     Run every scenario in DIR (default `scenarios/`) and diff the
//!     reports against DIR/baselines; exit 1 on any difference.
//!     `--intra-workers N` shards each run across N threads
//!     (`RunControl::workers`) while diffing against the *same*
//!     baselines — the bit-exactness gate for the parallel engine;
//!     `--only` restricts the gate to named scenario stems.
//!     `--cache-dir` serves repeats from a disk report cache;
//!     `--require-all-hits` fails any scenario that had to simulate
//!     (the cache-differential arm's second pass); `--via-service`
//!     routes every scenario through a sweep service campaign.
//!
//! hyperroute-grid validate-corpus [--scenarios DIR] [--fix]
//!     Round-trip every scenario file through `Scenario::from_json` /
//!     `to_json`; exit 1 on files that parse but are not bit-exactly
//!     canonical (hand-edited drift). `--fix` rewrites them instead.
//! ```

use hyperroute_core::scenario::Sweep;
use hyperroute_grid::{
    run_corpus_with, run_worker, serve, validate_corpus, Campaign, CorpusOptions, DiskCache,
    ExecBackend, MemoryCache, ProgressBackend, ProgressUpdate, ReportCache, ServiceConfig,
    SubprocessBackend, SweepService, ThreadPoolBackend,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dispatch(&args));
}

fn dispatch(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("worker") => cmd_worker(),
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("run-corpus") => cmd_run_corpus(&args[1..]),
        Some("validate-corpus") => cmd_validate_corpus(&args[1..]),
        Some(other) => usage(&format!("unknown subcommand `{other}`")),
        None => usage("missing subcommand"),
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!("hyperroute-grid: {problem}");
    eprintln!(
        "usage:\n  hyperroute-grid worker\n  hyperroute-grid run --sweep FILE \
         [--backend threads|subprocess] [--workers N] [--slice-len N] \
         [--checkpoint DIR] [--timeout-secs N] [--out FILE]\n  \
         hyperroute-grid serve [--backend threads|subprocess] [--workers N] \
         [--slice-len N] [--queue N] [--cache-dir DIR] [--cache-capacity N]\n  \
         hyperroute-grid run-corpus [--scenarios DIR] [--baselines DIR] \
         [--workers N] [--update] [--intra-workers N] [--only a,b,c] \
         [--cache-dir DIR] [--require-all-hits] [--via-service]\n  \
         hyperroute-grid validate-corpus [--scenarios DIR] [--fix]"
    );
    2
}

/// Pull `--flag value` pairs and bare `--switch`es out of `args`.
struct Flags<'a> {
    args: &'a [String],
}

impl Flags<'_> {
    fn value(&self, flag: &str) -> Result<Option<&str>, String> {
        let mut found = None;
        let mut i = 0;
        while i < self.args.len() {
            if self.args[i] == flag {
                let v = self
                    .args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                found = Some(v.as_str());
                i += 2;
            } else {
                i += 1;
            }
        }
        Ok(found)
    }

    fn switch(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.value(flag)? {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("{flag}: cannot parse `{text}`")),
        }
    }
}

fn cmd_worker() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match run_worker(stdin.lock(), stdout.lock()) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("hyperroute-grid worker: {e}");
            1
        }
    }
}

fn cmd_run(args: &[String]) -> i32 {
    let flags = Flags { args };
    match try_run(&flags) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("hyperroute-grid run: {message}");
            1
        }
    }
}

fn try_run(flags: &Flags) -> Result<(), String> {
    let sweep_path = flags
        .value("--sweep")?
        .ok_or("--sweep FILE is required")?
        .to_string();
    let workers: usize = flags.parsed("--workers", 0)?;
    let slice_len: usize = flags.parsed("--slice-len", 1)?;
    if slice_len == 0 {
        return Err("--slice-len must be positive".into());
    }
    let timeout_secs: u64 = flags.parsed("--timeout-secs", 600)?;
    let backend_name = flags.value("--backend")?.unwrap_or("threads").to_string();

    let text = std::fs::read_to_string(&sweep_path).map_err(|e| format!("{sweep_path}: {e}"))?;
    let sweep: Sweep = serde_json::from_str(&text)
        .map_err(|e| format!("{sweep_path}: sweep does not parse: {e}"))?;

    let mut campaign = Campaign::new(sweep, slice_len);
    if let Some(dir) = flags.value("--checkpoint")? {
        campaign = campaign.with_checkpoint(PathBuf::from(dir));
    }

    let backend: Box<dyn ExecBackend> = match backend_name.as_str() {
        "threads" => Box::new(ThreadPoolBackend::new(workers)),
        "subprocess" => Box::new(
            SubprocessBackend::self_workers(workers)
                .map_err(|e| e.to_string())?
                .with_timeout(Duration::from_secs(timeout_secs)),
        ),
        other => return Err(format!("--backend: unknown backend `{other}`")),
    };

    // One progress line per finished slice, on stderr so stdout stays
    // clean report JSON.
    let progress = |u: &ProgressUpdate| {
        eprintln!(
            "hyperroute-grid run: {}/{} slices, {} points, {:.1} points/s",
            u.done, u.total, u.points, u.points_per_sec
        );
    };
    let started = std::time::Instant::now();
    let reports = campaign
        .run(&ProgressBackend::new(backend.as_ref(), &progress))
        .map_err(|e| e.to_string())?;
    let mut rendered = serde_json::to_string_pretty(&reports).expect("reports always serialise");
    rendered.push('\n');
    match flags.value("--out")? {
        Some(path) => std::fs::write(path, rendered).map_err(|e| format!("{path}: {e}",))?,
        None => print!("{rendered}"),
    }
    eprintln!(
        "hyperroute-grid run: {} grid points on the {backend_name} backend in {:.1}s",
        reports.len(),
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> i32 {
    let flags = Flags { args };
    match try_serve(&flags) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("hyperroute-grid serve: {message}");
            1
        }
    }
}

fn try_serve(flags: &Flags) -> Result<(), String> {
    let workers: usize = flags.parsed("--workers", 0)?;
    let slice_len: usize = flags.parsed("--slice-len", 1)?;
    if slice_len == 0 {
        return Err("--slice-len must be positive".into());
    }
    let queue_capacity: usize = flags.parsed("--queue", 16)?;
    let backend_name = flags.value("--backend")?.unwrap_or("threads").to_string();
    let worker_cmd = match backend_name.as_str() {
        "threads" => None,
        "subprocess" => {
            let me = std::env::current_exe()
                .map_err(|e| format!("cannot locate own binary for workers: {e}"))?;
            Some(vec![me.display().to_string(), "worker".to_string()])
        }
        other => return Err(format!("--backend: unknown backend `{other}`")),
    };
    let cache: Arc<dyn ReportCache> = match flags.value("--cache-dir")? {
        Some(dir) => Arc::new(DiskCache::open(PathBuf::from(dir)).map_err(|e| e.to_string())?),
        None => {
            let capacity: usize = flags.parsed("--cache-capacity", 4096)?;
            Arc::new(MemoryCache::new(capacity.max(1)))
        }
    };

    let config = ServiceConfig {
        slice_len,
        workers,
        worker_cmd,
        queue_capacity,
    };
    let service = SweepService::new(config, cache);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve(&service, stdin.lock(), stdout.lock()).map_err(|e| format!("service io: {e}"))?;

    let stats = service.cache_stats();
    let (spawns, reuses) = (service.pool().spawns(), service.pool().reuses());
    service.shutdown();
    eprintln!(
        "hyperroute-grid serve: cache {} hits / {} misses / {} inserts; \
         workers {spawns} spawned / {reuses} reused",
        stats.hits, stats.misses, stats.inserts,
    );
    Ok(())
}

fn cmd_run_corpus(args: &[String]) -> i32 {
    let flags = Flags { args };
    let scenarios = match flags.value("--scenarios") {
        Ok(v) => v.unwrap_or("scenarios").to_string(),
        Err(e) => return usage(&e),
    };
    let baselines = match flags.value("--baselines") {
        Ok(v) => v
            .map(str::to_string)
            .unwrap_or_else(|| format!("{scenarios}/baselines")),
        Err(e) => return usage(&e),
    };
    let workers = match flags.parsed("--workers", 0usize) {
        Ok(w) => w,
        Err(e) => return usage(&e),
    };
    let update = flags.switch("--update");
    let intra: usize = match flags.parsed("--intra-workers", 1usize) {
        Ok(n) => n,
        Err(e) => return usage(&e),
    };
    let cache: Option<Arc<dyn ReportCache>> = match flags.value("--cache-dir") {
        Ok(Some(dir)) => match DiskCache::open(PathBuf::from(dir)) {
            Ok(c) => Some(Arc::new(c)),
            Err(e) => {
                eprintln!("hyperroute-grid run-corpus: {e}");
                return 1;
            }
        },
        Ok(None) => None,
        Err(e) => return usage(&e),
    };
    let opts = CorpusOptions {
        intra_workers: std::num::NonZeroUsize::new(intra).filter(|n| n.get() > 1),
        only: match flags.value("--only") {
            Ok(v) => v.map(|list| list.split(',').map(str::to_string).collect()),
            Err(e) => return usage(&e),
        },
        cache,
        require_all_hits: flags.switch("--require-all-hits"),
        via_service: flags.switch("--via-service"),
    };

    match run_corpus_with(
        scenarios.as_ref(),
        baselines.as_ref(),
        workers,
        update,
        &opts,
    ) {
        Ok(outcome) => {
            print!("{}", outcome.summary());
            let slowest = outcome.slowest(5);
            if !slowest.is_empty() {
                println!("slowest {}:", slowest.len());
                for (name, secs) in slowest {
                    println!("  {secs:8.3}s  {name}");
                }
            }
            if outcome.passed() {
                println!("corpus: {} scenarios ok", outcome.entries.len());
                0
            } else {
                println!("corpus: FAILED");
                1
            }
        }
        Err(e) => {
            eprintln!("hyperroute-grid run-corpus: {e}");
            1
        }
    }
}

fn cmd_validate_corpus(args: &[String]) -> i32 {
    let flags = Flags { args };
    let scenarios = match flags.value("--scenarios") {
        Ok(v) => v.unwrap_or("scenarios").to_string(),
        Err(e) => return usage(&e),
    };
    let fix = flags.switch("--fix");
    match validate_corpus(scenarios.as_ref(), fix) {
        Ok(outcome) => {
            print!("{}", outcome.summary());
            if outcome.passed() {
                println!(
                    "validate-corpus: {} scenario files canonical",
                    outcome.entries.len()
                );
                0
            } else {
                println!("validate-corpus: FAILED");
                1
            }
        }
        Err(e) => {
            eprintln!("hyperroute-grid validate-corpus: {e}");
            1
        }
    }
}
