//! The scenario-corpus regression gate.
//!
//! A corpus is a directory of scenario files (`scenarios/*.json` in this
//! repository) plus a directory of checked-in baseline reports
//! (`scenarios/baselines/<name>.report.json`). [`run_corpus`] executes
//! every scenario — they are deterministic functions of their seeds — and
//! compares each emitted [`Report`] against its baseline with the
//! bit-exact report equality the differential tests use, so *any* change
//! to simulation output, however small, fails the gate. Regenerate
//! baselines with `update = true` (`hyperroute-grid run-corpus --update`)
//! when an output change is intended, and let the diff reviewer see
//! exactly which numbers moved.

use crate::cache::{CacheKey, ReportCache};
use crate::error::GridError;
use crate::service::{CampaignState, ServiceConfig, SweepService};
use hyperroute_core::runner::parallel_map;
use hyperroute_core::scenario::{Report, Scenario, ScenarioFileError, Sweep};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Outcome of one corpus entry.
#[derive(Clone, Debug, PartialEq)]
pub enum CorpusStatus {
    /// Report matches the checked-in baseline bit-exactly.
    Match,
    /// Baseline (re)written in update mode.
    Updated,
    /// No baseline exists for this scenario yet.
    MissingBaseline,
    /// Report differs from the baseline.
    Mismatch {
        /// Human-readable summary of the first observed difference.
        detail: String,
    },
    /// The scenario file did not load (parse or validation failure).
    Invalid {
        /// `file:line:column`-style description of the failure.
        message: String,
    },
    /// The baseline exists but could not be read (I/O failure). Recorded
    /// per entry — one unreadable baseline must not mask the diffs of
    /// the scenarios after it.
    Error {
        /// Description of the I/O failure.
        message: String,
    },
    /// The report matched its baseline but had to be *simulated* while
    /// [`CorpusOptions::require_all_hits`] demanded a cache hit — the
    /// failing verdict of the cache-differential arm's second pass.
    CacheMiss,
}

/// One corpus entry: the scenario's stem name and what happened to it.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusEntry {
    /// File stem of the scenario (`hypercube_heavy` for
    /// `scenarios/hypercube_heavy.json`).
    pub name: String,
    /// What happened.
    pub status: CorpusStatus,
    /// Wall-clock seconds the scenario took to run (`None` for files
    /// that never ran — parse/validation failures).
    pub wall_secs: Option<f64>,
}

/// Results of a whole corpus run.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusOutcome {
    /// Per-scenario outcomes, in file-name order.
    pub entries: Vec<CorpusEntry>,
}

impl CorpusOutcome {
    /// Whether the gate passes: every entry matched (or was just
    /// updated).
    pub fn passed(&self) -> bool {
        self.entries
            .iter()
            .all(|e| matches!(e.status, CorpusStatus::Match | CorpusStatus::Updated))
    }

    /// One status line per entry, `PASS`/`FAIL` style, with the
    /// scenario's wall-clock run time appended when it ran.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let line = match &e.status {
                CorpusStatus::Match => format!("ok       {}", e.name),
                CorpusStatus::Updated => format!("updated  {}", e.name),
                CorpusStatus::MissingBaseline => {
                    format!("MISSING  {} (run with --update to create)", e.name)
                }
                CorpusStatus::Mismatch { detail } => format!("DIFF     {}: {detail}", e.name),
                CorpusStatus::Invalid { message } => format!("INVALID  {}: {message}", e.name),
                CorpusStatus::Error { message } => format!("ERROR    {}: {message}", e.name),
                CorpusStatus::CacheMiss => format!(
                    "UNCACHED {} (simulated although --require-all-hits was set)",
                    e.name
                ),
            };
            out.push_str(&line);
            if let Some(wall) = e.wall_secs {
                out.push_str(&format!("  [{wall:.3}s]"));
            }
            out.push('\n');
        }
        out
    }

    /// The `n` slowest entries as `(name, wall-clock seconds)`, slowest
    /// first; entries that never ran are excluded. Ties break by name so
    /// the listing is stable across runs.
    pub fn slowest(&self, n: usize) -> Vec<(&str, f64)> {
        let mut timed: Vec<(&str, f64)> = self
            .entries
            .iter()
            .filter_map(|e| e.wall_secs.map(|w| (e.name.as_str(), w)))
            .collect();
        timed.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        timed.truncate(n);
        timed
    }
}

/// Optional knobs for [`run_corpus_with`] beyond the common defaults.
#[derive(Clone, Default)]
pub struct CorpusOptions {
    /// Override every scenario's `run.workers` before running — the
    /// sharded-execution corpus arm: reports must stay bit-identical
    /// to the same baselines the single-threaded gate checks, because
    /// [`hyperroute_core::parallel`] is an execution strategy, not a
    /// model change. Scenarios the workers gate rejects (randomised
    /// contention, EqNet/Pipelined, …) surface as `Invalid`, so the
    /// arm is pointed at compatible scenarios via [`Self::only`].
    pub intra_workers: Option<std::num::NonZeroUsize>,
    /// Restrict the run to these scenario stems (in file order, not
    /// list order). Naming a stem with no matching file is an error —
    /// a typo must not silently shrink the gate.
    pub only: Option<Vec<String>>,
    /// Consult (and populate) this content-addressed report cache
    /// before simulating any scenario. Cached reports still diff
    /// against the baselines — a poisoned cache fails the gate exactly
    /// like a regression would.
    pub cache: Option<Arc<dyn ReportCache>>,
    /// With [`Self::cache`]: fail any scenario that had to be simulated
    /// (status [`CorpusStatus::CacheMiss`]) — the second pass of the
    /// cache-differential arm, asserting "zero simulations on repeat".
    pub require_all_hits: bool,
    /// Route every scenario through a [`SweepService`] (as a one-point
    /// sweep campaign) instead of running in-process — the end-to-end
    /// gate for the service path, which must produce the same bytes.
    pub via_service: bool,
}

impl std::fmt::Debug for CorpusOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorpusOptions")
            .field("intra_workers", &self.intra_workers)
            .field("only", &self.only)
            .field("cache", &self.cache.as_ref().map(|c| c.stats()))
            .field("require_all_hits", &self.require_all_hits)
            .field("via_service", &self.via_service)
            .finish()
    }
}

/// Execute every scenario in `scenario_dir` (over `workers` threads; `0`
/// = hardware parallelism) and diff its report against
/// `baseline_dir/<stem>.report.json`. With `update`, baselines are
/// rewritten instead of compared.
pub fn run_corpus(
    scenario_dir: &Path,
    baseline_dir: &Path,
    workers: usize,
    update: bool,
) -> Result<CorpusOutcome, GridError> {
    run_corpus_with(
        scenario_dir,
        baseline_dir,
        workers,
        update,
        &CorpusOptions::default(),
    )
}

/// [`run_corpus`] with the extra [`CorpusOptions`] knobs.
pub fn run_corpus_with(
    scenario_dir: &Path,
    baseline_dir: &Path,
    workers: usize,
    update: bool,
    opts: &CorpusOptions,
) -> Result<CorpusOutcome, GridError> {
    let mut files = scenario_files(scenario_dir)?;
    if let Some(only) = &opts.only {
        for stem in only {
            if !files
                .iter()
                .any(|p| p.file_stem().is_some_and(|s| *s == **stem))
            {
                return Err(GridError::Corpus(format!(
                    "--only names `{stem}` but {}/{stem}.json does not exist",
                    scenario_dir.display()
                )));
            }
        }
        files.retain(|p| {
            p.file_stem()
                .is_some_and(|s| only.iter().any(|stem| *s == **stem))
        });
    }
    if files.is_empty() {
        return Err(GridError::Corpus(format!(
            "no scenario files (*.json) in {}",
            scenario_dir.display()
        )));
    }
    if opts.require_all_hits && opts.cache.is_none() {
        return Err(GridError::Corpus(
            "require_all_hits needs a report cache (--cache)".into(),
        ));
    }

    // Load and validate serially (cheap), run the valid ones in parallel.
    let mut entries: Vec<CorpusEntry> = Vec::with_capacity(files.len());
    let mut runnable: Vec<(usize, Scenario)> = Vec::new();
    for path in &files {
        let name = path
            .file_stem()
            .expect("scenario_files yields *.json only")
            .to_string_lossy()
            .into_owned();
        let status = match load_scenario(path).and_then(|s| reshard(s, opts, path)) {
            Ok(scenario) => {
                runnable.push((entries.len(), scenario));
                CorpusStatus::Match // placeholder until the diff below
            }
            Err(message) => CorpusStatus::Invalid { message },
        };
        entries.push(CorpusEntry {
            name,
            status,
            wall_secs: None,
        });
    }

    // Three execution routes, same bytes: in-process, in-process behind
    // the cache, or through a sweep service. Each run reports whether it
    // was served from the cache (always `false` without one).
    let reports: Vec<(usize, Report, f64, bool)> = if opts.via_service {
        run_via_service(runnable, opts)?
    } else {
        let cache = opts.cache.clone();
        parallel_map(runnable, workers, move |(idx, scenario)| {
            let started = std::time::Instant::now();
            let (report, cache_hit) = match &cache {
                Some(cache) => {
                    let key = CacheKey::for_scenario(&scenario);
                    match cache.get(&key) {
                        Some(report) => (report, true),
                        None => {
                            let report = scenario.run().expect("from_json validated");
                            cache.put(&key, &report);
                            (report, false)
                        }
                    }
                }
                None => (scenario.run().expect("from_json validated"), false),
            };
            (idx, report, started.elapsed().as_secs_f64(), cache_hit)
        })
    };

    if update {
        std::fs::create_dir_all(baseline_dir)
            .map_err(|e| crate::error::io_error(baseline_dir, e))?;
    }
    for (idx, report, wall_secs, cache_hit) in reports {
        let baseline = baseline_dir.join(format!("{}.report.json", entries[idx].name));
        entries[idx].wall_secs = Some(wall_secs);
        entries[idx].status = if update {
            let mut text = serde_json::to_string_pretty(&report).expect("reports always serialise");
            text.push('\n');
            std::fs::write(&baseline, text).map_err(|e| crate::error::io_error(&baseline, e))?;
            CorpusStatus::Updated
        } else {
            // Diff failures (unreadable baseline included) are recorded
            // per entry, never propagated: every scenario's verdict lands
            // in the summary even when an earlier baseline is broken.
            let status = diff_against_baseline(&baseline, &report);
            if opts.require_all_hits && !cache_hit && status == CorpusStatus::Match {
                // Right bytes, wrong provenance: the cache-differential
                // arm demanded this report be *served*, not simulated.
                CorpusStatus::CacheMiss
            } else {
                status
            }
        };
    }
    Ok(CorpusOutcome { entries })
}

/// Execute corpus scenarios through a [`SweepService`], each wrapped as
/// a one-point sweep (no axes, seed untouched), sequentially — campaign
/// isolation is the point here, not cross-scenario parallelism. Returns
/// `(entry index, report, wall seconds, served-from-cache)`.
fn run_via_service(
    runnable: Vec<(usize, Scenario)>,
    opts: &CorpusOptions,
) -> Result<Vec<(usize, Report, f64, bool)>, GridError> {
    let cache: Arc<dyn ReportCache> = opts
        .cache
        .clone()
        .unwrap_or_else(|| Arc::new(crate::cache::MemoryCache::new(runnable.len().max(1))));
    let service = SweepService::new(
        ServiceConfig {
            slice_len: 1,
            workers: 1,
            worker_cmd: None,
            queue_capacity: 1,
        },
        cache,
    );
    let mut out = Vec::with_capacity(runnable.len());
    for (idx, scenario) in runnable {
        let hits_before = service.cache_stats().hits;
        let started = std::time::Instant::now();
        let mut sweep = Sweep::new(scenario, Vec::new());
        // One grid point that IS the corpus scenario: no derived seed.
        sweep.derive_seeds = false;
        let id = service.submit(sweep, 1)?;
        let report = match service.wait(id) {
            CampaignState::Done { .. } => service
                .results(id)
                .expect("Done campaigns have results")
                .swap_remove(0),
            CampaignState::Failed { error } => {
                return Err(GridError::Corpus(format!(
                    "service campaign for corpus entry {idx} failed: {error}"
                )))
            }
            other => unreachable!("wait() returned non-terminal {other:?}"),
        };
        let cache_hit = service.cache_stats().hits > hits_before;
        out.push((idx, report, started.elapsed().as_secs_f64(), cache_hit));
    }
    Ok(out)
}

/// Outcome of one [`validate_corpus`] round-trip check.
#[derive(Clone, Debug, PartialEq)]
pub enum RoundTripStatus {
    /// The file is bit-exactly `Scenario::to_json` of what it parses to.
    Canonical,
    /// Rewritten to canonical form (fix mode).
    Fixed,
    /// The file does not parse / validate as a `Scenario`.
    Invalid {
        /// `file:line:column`-style description of the failure.
        message: String,
    },
    /// The file parses but is not in canonical form — hand-edited corpus
    /// drift that would survive a parse yet churn on the next `--update`.
    Drifted {
        /// 1-based line where the on-disk text first diverges from the
        /// canonical rendering.
        first_divergent_line: usize,
    },
}

/// Results of a whole [`validate_corpus`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundTripOutcome {
    /// Per-scenario `(stem, status)`, in file-name order.
    pub entries: Vec<(String, RoundTripStatus)>,
}

impl RoundTripOutcome {
    /// Whether every file is canonical (or was just fixed).
    pub fn passed(&self) -> bool {
        self.entries
            .iter()
            .all(|(_, s)| matches!(s, RoundTripStatus::Canonical | RoundTripStatus::Fixed))
    }

    /// One status line per entry.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, status) in &self.entries {
            let line = match status {
                RoundTripStatus::Canonical => format!("ok       {name}"),
                RoundTripStatus::Fixed => format!("fixed    {name}"),
                RoundTripStatus::Invalid { message } => format!("INVALID  {name}: {message}"),
                RoundTripStatus::Drifted {
                    first_divergent_line,
                } => format!(
                    "DRIFT    {name}: not canonical from line {first_divergent_line} \
                     (re-render with validate-corpus --fix)"
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Round-trip every scenario in `scenario_dir` through
/// `Scenario::from_json` / `Scenario::to_json` and flag any file that
/// parses but is not bit-exactly its own canonical rendering — the drift
/// a hand edit introduces silently (a non-canonical file still runs, but
/// churns spuriously on the next `--update` and can hide real diffs in
/// review). With `fix`, drifted files are rewritten canonically instead.
pub fn validate_corpus(scenario_dir: &Path, fix: bool) -> Result<RoundTripOutcome, GridError> {
    let files = scenario_files(scenario_dir)?;
    if files.is_empty() {
        return Err(GridError::Corpus(format!(
            "no scenario files (*.json) in {}",
            scenario_dir.display()
        )));
    }
    let mut entries = Vec::with_capacity(files.len());
    for path in &files {
        let name = path
            .file_stem()
            .expect("scenario_files yields *.json only")
            .to_string_lossy()
            .into_owned();
        entries.push((name, round_trip_file(path, fix)?));
    }
    Ok(RoundTripOutcome { entries })
}

fn round_trip_file(path: &Path, fix: bool) -> Result<RoundTripStatus, GridError> {
    let on_disk = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            return Ok(RoundTripStatus::Invalid {
                message: format!("{}: {e}", path.display()),
            })
        }
    };
    let scenario = match Scenario::from_json(&on_disk) {
        Ok(s) => s,
        Err(e) => {
            return Ok(RoundTripStatus::Invalid {
                message: format!("{}: {e}", path.display()),
            })
        }
    };
    let mut canonical = scenario.to_json();
    canonical.push('\n');
    if on_disk == canonical {
        return Ok(RoundTripStatus::Canonical);
    }
    if fix {
        std::fs::write(path, canonical).map_err(|e| crate::error::io_error(path, e))?;
        return Ok(RoundTripStatus::Fixed);
    }
    let first_divergent_line = on_disk
        .lines()
        .zip(canonical.lines())
        .position(|(a, b)| a != b)
        .map_or_else(
            || on_disk.lines().count().min(canonical.lines().count()) + 1,
            |i| i + 1,
        );
    Ok(RoundTripStatus::Drifted {
        first_divergent_line,
    })
}

/// The `*.json` files directly inside `dir`, name-sorted (subdirectories
/// — the baselines — are not descended into).
fn scenario_files(dir: &Path) -> Result<Vec<PathBuf>, GridError> {
    let entries = std::fs::read_dir(dir).map_err(|e| crate::error::io_error(dir, e))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| crate::error::io_error(dir, e))?;
        let path = entry.path();
        if path.is_file() && path.extension().is_some_and(|ext| ext == "json") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Apply the [`CorpusOptions::intra_workers`] override, re-running
/// validation so scenarios the sharding gate rejects report as
/// `Invalid` with the gate's own message.
fn reshard(mut s: Scenario, opts: &CorpusOptions, path: &Path) -> Result<Scenario, String> {
    if let Some(w) = opts.intra_workers {
        s.run.workers = Some(w);
        s.validate()
            .map_err(|e| format!("{}: workers={w} rejected: {e}", path.display()))?;
    }
    Ok(s)
}

/// Load one scenario file, rendering failures as `file:line:column:`
/// messages.
fn load_scenario(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Scenario::from_json(&text).map_err(|e| match &e {
        ScenarioFileError::Parse { line, column, .. } => {
            format!("{}:{line}:{column}: {e}", path.display())
        }
        ScenarioFileError::Invalid(_) => format!("{}: {e}", path.display()),
    })
}

/// Compare `report` against the stored baseline, summarising the first
/// difference found. Every failure mode — missing, unreadable, or
/// unparseable baseline — is a per-entry status, so the caller's loop
/// reaches every scenario.
fn diff_against_baseline(baseline: &Path, report: &Report) -> CorpusStatus {
    let text = match std::fs::read_to_string(baseline) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CorpusStatus::MissingBaseline,
        Err(e) => {
            return CorpusStatus::Error {
                message: format!("{}: {e}", baseline.display()),
            }
        }
    };
    let stored: Report = match serde_json::from_str(&text) {
        Ok(stored) => stored,
        Err(e) => {
            return CorpusStatus::Mismatch {
                detail: format!("baseline does not parse ({e}); regenerate with --update"),
            }
        }
    };
    if stored == *report {
        return CorpusStatus::Match;
    }
    CorpusStatus::Mismatch {
        detail: first_difference(&stored, report),
    }
}

/// A short human-oriented description of where two reports diverge.
fn first_difference(baseline: &Report, got: &Report) -> String {
    let pairs = [
        ("delay.mean", baseline.delay.mean, got.delay.mean),
        ("delay.p99", baseline.delay.p99, got.delay.p99),
        (
            "mean_in_system",
            baseline.mean_in_system,
            got.mean_in_system,
        ),
        ("throughput", baseline.throughput, got.throughput),
    ];
    for (field, b, g) in pairs {
        if b.to_bits() != g.to_bits() && !(b.is_nan() && g.is_nan()) {
            return format!("{field}: baseline {b} vs run {g}");
        }
    }
    if baseline.generated != got.generated {
        return format!(
            "generated: baseline {} vs run {}",
            baseline.generated, got.generated
        );
    }
    if baseline.events != got.events {
        return format!("events: baseline {} vs run {}", baseline.events, got.events);
    }
    "reports differ outside the headline fields (see the JSON diff)".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperroute_core::scenario::Topology;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hyperroute-corpus-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_scenario(dir: &Path, name: &str, seed: u64) {
        let s = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.9)
            .horizon(50.0)
            .warmup(10.0)
            .seed(seed)
            .build()
            .unwrap();
        std::fs::write(
            dir.join(format!("{name}.json")),
            format!("{}\n", s.to_json()),
        )
        .unwrap();
    }

    #[test]
    fn update_then_verify_round_trips() {
        let dir = temp_dir("roundtrip");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "a", 1);
        write_scenario(&dir, "b", 2);

        let updated = run_corpus(&dir, &baselines, 0, true).unwrap();
        assert!(updated.passed());
        assert!(updated
            .entries
            .iter()
            .all(|e| e.status == CorpusStatus::Updated));

        let verified = run_corpus(&dir, &baselines, 2, false).unwrap();
        assert!(verified.passed(), "{}", verified.summary());
        assert!(verified
            .entries
            .iter()
            .all(|e| e.status == CorpusStatus::Match));
        // Every executed scenario carries its wall time, and the summary
        // prints it.
        assert!(verified.entries.iter().all(|e| e.wall_secs.is_some()));
        assert!(verified.summary().contains("s]"), "{}", verified.summary());
        assert_eq!(verified.slowest(5).len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slowest_orders_by_wall_time_and_breaks_ties_by_name() {
        let entry = |name: &str, wall_secs: Option<f64>| CorpusEntry {
            name: name.into(),
            status: CorpusStatus::Match,
            wall_secs,
        };
        let outcome = CorpusOutcome {
            entries: vec![
                entry("quick", Some(0.5)),
                entry("never_ran", None),
                entry("slow_b", Some(2.0)),
                entry("slow_a", Some(2.0)),
                entry("glacial", Some(9.0)),
            ],
        };
        assert_eq!(
            outcome.slowest(3),
            vec![("glacial", 9.0), ("slow_a", 2.0), ("slow_b", 2.0)]
        );
        // n past the timed entries just returns them all.
        assert_eq!(outcome.slowest(10).len(), 4);
    }

    #[test]
    fn drifted_baseline_fails_the_gate() {
        let dir = temp_dir("drift");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "a", 1);
        run_corpus(&dir, &baselines, 0, true).unwrap();
        // Tamper with the stored baseline the way a regression would.
        let path = baselines.join("a.report.json");
        let tampered = std::fs::read_to_string(&path).unwrap().replacen(
            "\"generated\":",
            "\"generated\": 1, \"_x\":",
            1,
        );
        std::fs::write(&path, tampered).unwrap();
        let outcome = run_corpus(&dir, &baselines, 1, false).unwrap();
        assert!(!outcome.passed());
        assert!(matches!(
            outcome.entries[0].status,
            CorpusStatus::Mismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_scenario_reports_location() {
        let dir = temp_dir("invalid");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "good", 1);
        std::fs::write(dir.join("broken.json"), "{\n  \"topology\": nope\n}").unwrap();
        run_corpus(&dir, &baselines, 0, true).unwrap();
        let outcome = run_corpus(&dir, &baselines, 1, false).unwrap();
        assert!(!outcome.passed());
        let CorpusStatus::Invalid { message } = &outcome.entries[0].status else {
            panic!("expected Invalid, got {:?}", outcome.entries[0]);
        };
        assert!(message.contains("broken.json:2:15"), "{message}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_validation_failure_reports_file_path() {
        // Validation (`ConfigError`) failures — well-formed JSON naming an
        // impossible combination — must carry the offending file path in
        // the gate output, exactly like parse failures do (which also get
        // a line/column).
        let dir = temp_dir("invalid-combo");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "good", 1);
        let mut bad = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.9)
            .horizon(50.0)
            .warmup(10.0)
            .build()
            .unwrap();
        bad.workload.lambda = -1.0; // invalid, but serialisable
        std::fs::write(dir.join("bad_combo.json"), bad.to_json()).unwrap();
        run_corpus(&dir, &baselines, 0, true).unwrap();
        let outcome = run_corpus(&dir, &baselines, 1, false).unwrap();
        assert!(!outcome.passed());
        let CorpusStatus::Invalid { message } = &outcome.entries[0].status else {
            panic!("expected Invalid, got {:?}", outcome.entries[0]);
        };
        assert!(
            message.contains("bad_combo.json") && message.contains("invalid"),
            "validation failure lost its file path: {message}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_diffs_collected_when_multiple_baselines_break() {
        // One broken baseline must not mask the others: tamper with two
        // of three and check both verdicts (plus the pass) land in the
        // outcome and the summary.
        let dir = temp_dir("collect-all");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "a", 1);
        write_scenario(&dir, "b", 2);
        write_scenario(&dir, "c", 3);
        run_corpus(&dir, &baselines, 0, true).unwrap();
        for name in ["a", "c"] {
            let path = baselines.join(format!("{name}.report.json"));
            let tampered = std::fs::read_to_string(&path).unwrap().replacen(
                "\"generated\":",
                "\"generated\": 1, \"_x\":",
                1,
            );
            std::fs::write(&path, tampered).unwrap();
        }
        let outcome = run_corpus(&dir, &baselines, 1, false).unwrap();
        assert!(!outcome.passed());
        assert!(matches!(
            outcome.entries[0].status,
            CorpusStatus::Mismatch { .. }
        ));
        assert_eq!(outcome.entries[1].status, CorpusStatus::Match);
        assert!(matches!(
            outcome.entries[2].status,
            CorpusStatus::Mismatch { .. }
        ));
        let summary = outcome.summary();
        assert_eq!(summary.matches("DIFF").count(), 2, "{summary}");
        assert_eq!(summary.matches("ok").count(), 1, "{summary}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_baseline_is_a_per_entry_error() {
        // A baseline that exists but is a directory (read fails with a
        // non-NotFound error) must surface as that entry's status, not
        // abort the run before later entries are diffed.
        let dir = temp_dir("unreadable");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "a", 1);
        write_scenario(&dir, "b", 2);
        run_corpus(&dir, &baselines, 0, true).unwrap();
        std::fs::remove_file(baselines.join("a.report.json")).unwrap();
        std::fs::create_dir(baselines.join("a.report.json")).unwrap();
        let outcome = run_corpus(&dir, &baselines, 1, false).unwrap();
        assert!(!outcome.passed());
        assert!(
            matches!(outcome.entries[0].status, CorpusStatus::Error { .. }),
            "{:?}",
            outcome.entries[0]
        );
        assert_eq!(outcome.entries[1].status, CorpusStatus::Match);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn round_trip_validation_flags_and_fixes_drift() {
        let dir = temp_dir("roundtrip-validate");
        write_scenario(&dir, "canonical", 1);
        // Hand-edit: reorder nothing, just add harmless whitespace — the
        // file still parses to the same scenario but is not canonical.
        let path = dir.join("edited.json");
        let s = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.9)
            .horizon(50.0)
            .warmup(10.0)
            .seed(9)
            .build()
            .unwrap();
        std::fs::write(&path, format!("  {}\n", s.to_json())).unwrap();
        // And one file that does not parse at all.
        std::fs::write(dir.join("broken.json"), "{ nope }").unwrap();

        let outcome = validate_corpus(&dir, false).unwrap();
        assert!(!outcome.passed());
        let by_name = |n: &str| {
            outcome
                .entries
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, s)| s.clone())
                .unwrap()
        };
        assert!(matches!(by_name("broken"), RoundTripStatus::Invalid { .. }));
        assert_eq!(
            by_name("edited"),
            RoundTripStatus::Drifted {
                first_divergent_line: 1,
            }
        );
        assert_eq!(by_name("canonical"), RoundTripStatus::Canonical);

        // Fix mode rewrites the drifted file; broken stays invalid.
        let fixed = validate_corpus(&dir, true).unwrap();
        assert!(!fixed.passed(), "broken.json cannot be fixed");
        std::fs::remove_file(dir.join("broken.json")).unwrap();
        let clean = validate_corpus(&dir, false).unwrap();
        assert!(clean.passed(), "{}", clean.summary());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_arm_matches_single_threaded_baselines() {
        // Baselines written by single-threaded runs must verify
        // bit-exactly when re-run sharded (`--intra-workers 2`) — the
        // corpus is the end-to-end differential gate for the parallel
        // engine. `--only` narrows the arm and rejects typos.
        let dir = temp_dir("sharded-arm");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "a", 1);
        write_scenario(&dir, "b", 2);
        run_corpus(&dir, &baselines, 0, true).unwrap();

        let opts = CorpusOptions {
            intra_workers: std::num::NonZeroUsize::new(2),
            only: Some(vec!["a".into()]),
            ..CorpusOptions::default()
        };
        let outcome = run_corpus_with(&dir, &baselines, 1, false, &opts).unwrap();
        assert!(outcome.passed(), "{}", outcome.summary());
        assert_eq!(outcome.entries.len(), 1, "--only did not narrow the run");
        assert_eq!(outcome.entries[0].name, "a");

        let typo = CorpusOptions {
            only: Some(vec!["nope".into()]),
            ..CorpusOptions::default()
        };
        assert!(run_corpus_with(&dir, &baselines, 1, false, &typo).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gate_rejected_scenario_is_invalid_under_sharding() {
        // A scenario the workers>1 validation gate rejects must fail
        // the sharded arm loudly (Invalid), never run-and-diverge.
        let dir = temp_dir("sharded-gate");
        let baselines = dir.join("baselines");
        let mut s = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.9)
            .horizon(50.0)
            .warmup(10.0)
            .seed(5)
            .build()
            .unwrap();
        s.policy.contention = hyperroute_core::ContentionPolicy::Random;
        std::fs::write(dir.join("random.json"), format!("{}\n", s.to_json())).unwrap();
        run_corpus(&dir, &baselines, 0, true).unwrap();

        let opts = CorpusOptions {
            intra_workers: std::num::NonZeroUsize::new(2),
            ..CorpusOptions::default()
        };
        let outcome = run_corpus_with(&dir, &baselines, 1, false, &opts).unwrap();
        assert!(!outcome.passed());
        let CorpusStatus::Invalid { message } = &outcome.entries[0].status else {
            panic!("expected Invalid, got {:?}", outcome.entries[0]);
        };
        assert!(message.contains("workers=2"), "{message}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_differential_second_pass_is_all_hits() {
        use crate::cache::MemoryCache;
        let dir = temp_dir("cache-arm");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "a", 1);
        write_scenario(&dir, "b", 2);
        run_corpus(&dir, &baselines, 0, true).unwrap();

        let cache = Arc::new(MemoryCache::new(16));
        let first = CorpusOptions {
            cache: Some(cache.clone()),
            ..CorpusOptions::default()
        };
        // Pass 1 populates the cache and must still verify baselines.
        let outcome = run_corpus_with(&dir, &baselines, 1, false, &first).unwrap();
        assert!(outcome.passed(), "{}", outcome.summary());
        assert_eq!(cache.stats().inserts, 2);

        // Pass 2: 100% served from the cache, byte-identical baselines.
        let second = CorpusOptions {
            cache: Some(cache.clone()),
            require_all_hits: true,
            ..CorpusOptions::default()
        };
        let outcome = run_corpus_with(&dir, &baselines, 1, false, &second).unwrap();
        assert!(outcome.passed(), "{}", outcome.summary());
        assert_eq!(cache.stats().hits, 2, "second pass must be pure hits");
        assert_eq!(cache.stats().inserts, 2, "second pass inserted nothing");

        // A cold cache under require_all_hits fails loudly per entry.
        let cold = CorpusOptions {
            cache: Some(Arc::new(MemoryCache::new(16))),
            require_all_hits: true,
            ..CorpusOptions::default()
        };
        let outcome = run_corpus_with(&dir, &baselines, 1, false, &cold).unwrap();
        assert!(!outcome.passed());
        assert!(outcome
            .entries
            .iter()
            .all(|e| e.status == CorpusStatus::CacheMiss));
        assert!(
            outcome.summary().contains("UNCACHED"),
            "{}",
            outcome.summary()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn require_all_hits_without_a_cache_is_a_config_error() {
        let dir = temp_dir("cache-config");
        write_scenario(&dir, "a", 1);
        let opts = CorpusOptions {
            require_all_hits: true,
            ..CorpusOptions::default()
        };
        let err = run_corpus_with(&dir, &dir.join("baselines"), 1, false, &opts).unwrap_err();
        assert!(matches!(err, GridError::Corpus(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn service_route_matches_in_process_baselines_byte_for_byte() {
        use crate::cache::MemoryCache;
        let dir = temp_dir("via-service");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "a", 1);
        write_scenario(&dir, "b", 2);
        // Baselines come from the classic in-process route.
        run_corpus(&dir, &baselines, 0, true).unwrap();

        let cache = Arc::new(MemoryCache::new(16));
        let via = CorpusOptions {
            cache: Some(cache.clone()),
            via_service: true,
            ..CorpusOptions::default()
        };
        let outcome = run_corpus_with(&dir, &baselines, 1, false, &via).unwrap();
        assert!(outcome.passed(), "{}", outcome.summary());

        // The service's cache now holds both scenarios: a second
        // service-routed pass serves them without simulating.
        let again = CorpusOptions {
            cache: Some(cache.clone()),
            via_service: true,
            require_all_hits: true,
            ..CorpusOptions::default()
        };
        let outcome = run_corpus_with(&dir, &baselines, 1, false, &again).unwrap();
        assert!(outcome.passed(), "{}", outcome.summary());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_baseline_is_flagged() {
        let dir = temp_dir("missing");
        let baselines = dir.join("baselines");
        write_scenario(&dir, "a", 1);
        let outcome = run_corpus(&dir, &baselines, 1, false).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.entries[0].status, CorpusStatus::MissingBaseline);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
