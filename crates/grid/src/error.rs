//! The one error type every grid layer speaks.

use hyperroute_core::ConfigError;

/// Why a grid operation failed.
///
/// Worker-loss conditions (crash, timeout, garbled reply) are retried by
/// the subprocess backend and only surface as [`GridError::SliceLost`]
/// after the retry budget is spent; [`GridError::SliceFailed`] is a
/// *deterministic* failure reported by a healthy worker, which retrying
/// cannot fix.
#[derive(Clone, Debug, PartialEq)]
pub enum GridError {
    /// A scenario inside a slice failed validation.
    Config(ConfigError),
    /// Filesystem trouble (checkpoint directory, corpus files, output).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, stringified.
        error: String,
    },
    /// A worker process could not be started at all.
    Spawn {
        /// The command line that failed.
        cmd: String,
        /// The underlying error, stringified.
        error: String,
    },
    /// A slice was lost repeatedly to worker crashes or timeouts.
    SliceLost {
        /// Id of the slice that could not be completed.
        slice: u64,
        /// Attempts made (1 + retries).
        attempts: usize,
        /// The last observed failure.
        last_error: String,
    },
    /// A worker reported a deterministic failure for a slice.
    SliceFailed {
        /// Id of the failing slice.
        slice: u64,
        /// The worker's error message.
        message: String,
    },
    /// Slice results do not tile the grid (a dispatcher bug or a
    /// tampered checkpoint directory).
    Merge(String),
    /// The checkpoint directory belongs to a different campaign or is
    /// unreadable.
    Checkpoint(String),
    /// The scenario corpus is malformed (no files, unreadable directory).
    Corpus(String),
    /// The sweep service refused a request (submit queue full, service
    /// shut down, unknown campaign).
    Service(String),
}

impl From<ConfigError> for GridError {
    fn from(e: ConfigError) -> GridError {
        GridError::Config(e)
    }
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::Config(e) => write!(f, "invalid scenario in grid: {e}"),
            GridError::Io { path, error } => write!(f, "io error at {path}: {error}"),
            GridError::Spawn { cmd, error } => {
                write!(f, "could not spawn worker `{cmd}`: {error}")
            }
            GridError::SliceLost {
                slice,
                attempts,
                last_error,
            } => write!(
                f,
                "slice {slice} lost after {attempts} attempts; last error: {last_error}"
            ),
            GridError::SliceFailed { slice, message } => {
                write!(f, "slice {slice} failed deterministically: {message}")
            }
            GridError::Merge(msg) => write!(f, "cannot merge slice results: {msg}"),
            GridError::Checkpoint(msg) => write!(f, "checkpoint rejected: {msg}"),
            GridError::Corpus(msg) => write!(f, "corpus rejected: {msg}"),
            GridError::Service(msg) => write!(f, "service refused: {msg}"),
        }
    }
}

impl std::error::Error for GridError {}

/// Shorthand for filesystem failures tagged with their path.
pub(crate) fn io_error(path: &std::path::Path, error: impl std::fmt::Display) -> GridError {
    GridError::Io {
        path: path.display().to_string(),
        error: error.to_string(),
    }
}
