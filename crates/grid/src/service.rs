//! The persistent sweep service: submit campaigns, keep workers warm,
//! serve repeats from the report cache.
//!
//! [`SweepService`] is the long-running form of [`crate::Campaign`]: a
//! background runner thread consumes a **bounded** submit queue (the
//! backpressure boundary — a full queue rejects instead of buffering
//! without limit), executes each campaign through
//! [`Campaign::run_cached`] over the service's [`ReportCache`], and
//! keeps subprocess workers alive between campaigns in a
//! [`WorkerPool`]. Submitting the same sweep twice therefore performs
//! zero simulations the second time, and submitting different sweeps
//! back to back reuses the same warm worker fleet.
//!
//! [`serve`] is the daemon front: newline-delimited JSON requests in,
//! newline-delimited JSON replies out — the same NDJSON discipline as
//! the worker protocol, one framing for the whole stack. Run it over
//! stdio (`hyperroute-grid serve`) and bridge to a unix socket with any
//! stream relay (`socat UNIX-LISTEN:… EXEC:"hyperroute-grid serve"`)
//! when a filesystem endpoint is wanted.
//!
//! ```text
//! client → service:  {"Submit":{"sweep":{…},"slice_len":1}}\n
//! service → client:  {"Accepted":{"campaign":0}}\n
//! client → service:  {"Status":{"campaign":0}}\n
//! service → client:  {"Status":{"campaign":0,"state":"Running","cache":{…}}}\n
//! client → service:  {"Results":{"campaign":0}}\n                 (blocks until done)
//! service → client:  {"Report":{"campaign":0,"index":0,"report":{…}}}\n   (one per point)
//!                    {"ResultsDone":{"campaign":0,"points":6}}\n
//! client → service:  "Shutdown"\n
//! service → client:  "Bye"\n
//! ```
//!
//! Campaign output through the service is **byte-identical** to
//! `Sweep::run`: the cache serves the same pure function it memoises,
//! and warm workers execute the same pure slices — the differential
//! tests in `tests/grid_exec.rs` hold all three paths (in-process,
//! cold subprocess, warm cached service) to the same bytes.

use crate::backend::ThreadPoolBackend;
use crate::cache::{CacheStats, ReportCache};
use crate::campaign::Campaign;
use crate::error::GridError;
use crate::subprocess::SubprocessBackend;
use crate::warm::WorkerPool;
use hyperroute_core::scenario::{Report, Sweep};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Condvar, Mutex};

/// How a [`SweepService`] executes and queues campaigns.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Grid points per slice for submits that don't specify one
    /// (`slice_len == 0` in [`ServiceRequest::Submit`]). The default of
    /// 1 caches at exact per-point granularity, so overlapping sweeps
    /// reuse each other's points.
    pub slice_len: usize,
    /// Worker parallelism per campaign (`0` = hardware parallelism).
    pub workers: usize,
    /// Worker argv for subprocess execution; `None` executes campaigns
    /// in-process on a thread pool (no warm pool involved).
    pub worker_cmd: Option<Vec<String>>,
    /// Campaigns the submit queue holds before rejecting — the
    /// backpressure bound.
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            slice_len: 1,
            workers: 0,
            worker_cmd: None,
            queue_capacity: 16,
        }
    }
}

/// Where a submitted campaign is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CampaignState {
    /// Accepted, waiting for the runner.
    Queued,
    /// Executing now.
    Running,
    /// Finished; results are available.
    Done {
        /// Grid points in the result.
        points: usize,
    },
    /// Execution failed.
    Failed {
        /// The failure, stringified.
        error: String,
    },
    /// No campaign with that id was ever accepted.
    Unknown,
}

impl CampaignState {
    /// Whether the state can no longer change.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CampaignState::Done { .. } | CampaignState::Failed { .. } | CampaignState::Unknown
        )
    }
}

/// One request line of the service protocol.
// Wire enum: `Submit` carries the whole sweep by design; boxing would
// complicate the stable NDJSON framing for a transient value.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServiceRequest {
    /// Submit a campaign: answered by `Accepted` or `Rejected`.
    Submit {
        /// The parameter grid to execute.
        sweep: Sweep,
        /// Grid points per slice; `0` takes [`ServiceConfig::slice_len`].
        slice_len: usize,
    },
    /// Ask where a campaign is: answered by `Status`.
    Status {
        /// The id from `Accepted`.
        campaign: u64,
    },
    /// Stream a campaign's reports (blocks until it finishes): answered
    /// by one `Report` line per grid point, then `ResultsDone` — or
    /// `Error` for unknown/failed campaigns.
    Results {
        /// The id from `Accepted`.
        campaign: u64,
    },
    /// Stop serving: answered by `Bye`, then the connection closes.
    /// Queued campaigns still drain before the service object shuts
    /// down.
    Shutdown,
}

/// One reply line of the service protocol.
// Wire enum: `Report` dominates the size; see `ServiceRequest`.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServiceReply {
    /// The campaign is queued under this id.
    Accepted {
        /// Handle for `Status` / `Results`.
        campaign: u64,
    },
    /// The submit was refused (typically: queue full — retry later).
    Rejected {
        /// Why.
        reason: String,
    },
    /// Answer to `Status`.
    Status {
        /// The campaign asked about.
        campaign: u64,
        /// Its current state.
        state: CampaignState,
        /// The service cache's cumulative counters.
        cache: CacheStats,
    },
    /// One grid point of a finished campaign, in row-major order.
    Report {
        /// The campaign streamed.
        campaign: u64,
        /// Row-major index of this point.
        index: usize,
        /// The point's report — byte-identical to what `Sweep::run`
        /// would have produced.
        report: Report,
    },
    /// Terminator of a `Results` stream.
    ResultsDone {
        /// The campaign streamed.
        campaign: u64,
        /// Points streamed.
        points: usize,
    },
    /// A request failed (unparseable line, unknown campaign, failed
    /// campaign).
    Error {
        /// What went wrong.
        message: String,
    },
    /// Answer to `Shutdown`.
    Bye,
}

/// A submitted campaign travelling to the runner thread.
struct Job {
    id: u64,
    campaign: Campaign,
}

/// State shared between submitters, the runner, and waiters.
struct Shared {
    state: Mutex<ServiceState>,
    changed: Condvar,
}

struct ServiceState {
    campaigns: HashMap<u64, CampaignState>,
    results: HashMap<u64, Vec<Report>>,
    next_id: u64,
}

/// A persistent sweep service: warm workers, content-addressed report
/// cache, bounded submit queue. See the [module docs](self) for the
/// protocol and [`serve`] for the NDJSON front.
pub struct SweepService {
    config: ServiceConfig,
    cache: Arc<dyn ReportCache>,
    pool: Arc<WorkerPool>,
    shared: Arc<Shared>,
    submit_tx: Option<mpsc::SyncSender<Job>>,
    runner: Option<std::thread::JoinHandle<()>>,
}

impl SweepService {
    /// Start a service executing campaigns per `config`, memoising
    /// reports in `cache`.
    pub fn new(config: ServiceConfig, cache: Arc<dyn ReportCache>) -> SweepService {
        let pool = Arc::new(WorkerPool::new());
        let shared = Arc::new(Shared {
            state: Mutex::new(ServiceState {
                campaigns: HashMap::new(),
                results: HashMap::new(),
                next_id: 0,
            }),
            changed: Condvar::new(),
        });
        let (submit_tx, submit_rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let runner = {
            let shared = Arc::clone(&shared);
            let cache = Arc::clone(&cache);
            let pool = Arc::clone(&pool);
            let config = config.clone();
            std::thread::spawn(move || {
                for job in submit_rx {
                    Self::transition(&shared, job.id, CampaignState::Running, None);
                    let outcome = Self::execute(&config, &cache, &pool, &job.campaign);
                    match outcome {
                        Ok(reports) => {
                            let points = reports.len();
                            Self::transition(
                                &shared,
                                job.id,
                                CampaignState::Done { points },
                                Some(reports),
                            );
                        }
                        Err(e) => Self::transition(
                            &shared,
                            job.id,
                            CampaignState::Failed {
                                error: e.to_string(),
                            },
                            None,
                        ),
                    }
                }
            })
        };
        SweepService {
            config,
            cache,
            pool,
            shared,
            submit_tx: Some(submit_tx),
            runner: Some(runner),
        }
    }

    fn transition(shared: &Shared, id: u64, state: CampaignState, results: Option<Vec<Report>>) {
        let mut guard = shared.state.lock().expect("service state lock");
        guard.campaigns.insert(id, state);
        if let Some(reports) = results {
            guard.results.insert(id, reports);
        }
        shared.changed.notify_all();
    }

    fn execute(
        config: &ServiceConfig,
        cache: &Arc<dyn ReportCache>,
        pool: &Arc<WorkerPool>,
        campaign: &Campaign,
    ) -> Result<Vec<Report>, GridError> {
        match &config.worker_cmd {
            Some(cmd) => {
                let backend =
                    SubprocessBackend::new(cmd.clone(), config.workers).with_pool(Arc::clone(pool));
                campaign.run_cached(&backend, cache.as_ref())
            }
            None => campaign.run_cached(&ThreadPoolBackend::new(config.workers), cache.as_ref()),
        }
    }

    /// Queue a campaign; returns its id, or [`GridError::Service`] when
    /// the bounded queue is full (backpressure: the client retries).
    pub fn submit(&self, sweep: Sweep, slice_len: usize) -> Result<u64, GridError> {
        let slice_len = if slice_len == 0 {
            self.config.slice_len
        } else {
            slice_len
        };
        let tx = self
            .submit_tx
            .as_ref()
            .expect("submit queue lives as long as the service");
        let id = {
            let mut guard = self.shared.state.lock().expect("service state lock");
            let id = guard.next_id;
            guard.next_id += 1;
            guard.campaigns.insert(id, CampaignState::Queued);
            id
        };
        match tx.try_send(Job {
            id,
            campaign: Campaign::new(sweep, slice_len),
        }) {
            Ok(()) => Ok(id),
            Err(e) => {
                let reason = match e {
                    TrySendError::Full(_) => format!(
                        "submit queue full ({} campaigns pending); retry later",
                        self.config.queue_capacity
                    ),
                    TrySendError::Disconnected(_) => "service runner is gone".into(),
                };
                let mut guard = self.shared.state.lock().expect("service state lock");
                guard.campaigns.remove(&id);
                Err(GridError::Service(reason))
            }
        }
    }

    /// The campaign's current state ([`CampaignState::Unknown`] for an
    /// id never accepted).
    pub fn status(&self, campaign: u64) -> CampaignState {
        self.shared
            .state
            .lock()
            .expect("service state lock")
            .campaigns
            .get(&campaign)
            .cloned()
            .unwrap_or(CampaignState::Unknown)
    }

    /// Block until the campaign reaches a terminal state and return it.
    pub fn wait(&self, campaign: u64) -> CampaignState {
        let mut guard = self.shared.state.lock().expect("service state lock");
        loop {
            let state = guard
                .campaigns
                .get(&campaign)
                .cloned()
                .unwrap_or(CampaignState::Unknown);
            if state.is_terminal() {
                return state;
            }
            guard = self.shared.changed.wait(guard).expect("service state lock");
        }
    }

    /// The finished campaign's reports, if it completed.
    pub fn results(&self, campaign: u64) -> Option<Vec<Report>> {
        self.shared
            .state
            .lock()
            .expect("service state lock")
            .results
            .get(&campaign)
            .cloned()
    }

    /// The service cache's cumulative counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The warm worker pool (spawn/reuse telemetry; shared with every
    /// campaign's subprocess backend).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Drain the queue, stop the runner, retire pooled workers.
    /// Dropping the service does the same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.submit_tx.take()); // runner's queue iterator ends
        if let Some(runner) = self.runner.take() {
            let _ = runner.join();
        }
        self.pool.shutdown();
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Serve NDJSON requests from `input` against `service` until EOF or a
/// `Shutdown` request: one [`ServiceRequest`] per line in, one or more
/// [`ServiceReply`] lines out (flushed per line). `Results` blocks the
/// connection until the campaign finishes — submit first, stream later,
/// and use separate connections for concurrent clients.
pub fn serve(
    service: &SweepService,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    let mut emit = |reply: &ServiceReply| -> std::io::Result<()> {
        let text = serde_json::to_string(reply).expect("replies always serialise");
        writeln!(output, "{text}")?;
        output.flush()
    };
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<ServiceRequest>(&line) {
            Err(e) => emit(&ServiceReply::Error {
                message: format!("request line does not parse: {e}"),
            })?,
            Ok(ServiceRequest::Submit { sweep, slice_len }) => {
                match service.submit(sweep, slice_len) {
                    Ok(campaign) => emit(&ServiceReply::Accepted { campaign })?,
                    Err(e) => emit(&ServiceReply::Rejected {
                        reason: e.to_string(),
                    })?,
                }
            }
            Ok(ServiceRequest::Status { campaign }) => emit(&ServiceReply::Status {
                campaign,
                state: service.status(campaign),
                cache: service.cache_stats(),
            })?,
            Ok(ServiceRequest::Results { campaign }) => match service.wait(campaign) {
                CampaignState::Done { points } => {
                    let reports = service
                        .results(campaign)
                        .expect("Done campaigns have results");
                    for (index, report) in reports.into_iter().enumerate() {
                        emit(&ServiceReply::Report {
                            campaign,
                            index,
                            report,
                        })?;
                    }
                    emit(&ServiceReply::ResultsDone { campaign, points })?;
                }
                CampaignState::Failed { error } => emit(&ServiceReply::Error {
                    message: format!("campaign {campaign} failed: {error}"),
                })?,
                CampaignState::Unknown => emit(&ServiceReply::Error {
                    message: format!("campaign {campaign} was never accepted"),
                })?,
                CampaignState::Queued | CampaignState::Running => {
                    unreachable!("wait() only returns terminal states")
                }
            },
            Ok(ServiceRequest::Shutdown) => {
                emit(&ServiceReply::Bye)?;
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MemoryCache;
    use hyperroute_core::scenario::{Axis, Scenario, SweepParam, Topology};
    use std::io::Cursor;

    fn small_sweep() -> Sweep {
        let base = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.8)
            .p(0.5)
            .horizon(60.0)
            .warmup(10.0)
            .seed(5)
            .build()
            .unwrap();
        Sweep::new(base, vec![Axis::new(SweepParam::Lambda, vec![0.4, 0.8])])
    }

    fn in_process_service() -> SweepService {
        SweepService::new(ServiceConfig::default(), Arc::new(MemoryCache::new(256)))
    }

    #[test]
    fn submitted_campaign_matches_sweep_run_and_resubmit_hits_the_cache() {
        let sweep = small_sweep();
        let direct = sweep.run(1).unwrap();
        let service = in_process_service();
        let first = service.submit(sweep.clone(), 0).unwrap();
        assert_eq!(
            service.wait(first),
            CampaignState::Done { points: 2 },
            "first campaign completes"
        );
        assert_eq!(service.results(first).unwrap(), direct);
        let after_first = service.cache_stats();
        assert_eq!(after_first.inserts, 2);
        // Identical resubmit: all hits, no new inserts — zero simulations.
        let second = service.submit(sweep, 0).unwrap();
        service.wait(second);
        assert_eq!(service.results(second).unwrap(), direct);
        let after_second = service.cache_stats();
        assert_eq!(after_second.hits - after_first.hits, 2);
        assert_eq!(after_second.inserts, after_first.inserts);
        service.shutdown();
    }

    #[test]
    fn status_distinguishes_unknown_campaigns() {
        let service = in_process_service();
        assert_eq!(service.status(99), CampaignState::Unknown);
        assert_eq!(service.wait(99), CampaignState::Unknown);
        assert_eq!(service.results(99), None);
    }

    #[test]
    fn invalid_sweep_fails_the_campaign_without_killing_the_service() {
        let mut bad = small_sweep();
        // A negative arrival rate on the axis fails scenario validation
        // at execution time (the axis, not the base, decides λ).
        bad.axes = vec![Axis::new(SweepParam::Lambda, vec![-1.0])];
        let service = in_process_service();
        let id = service.submit(bad, 0).unwrap();
        let CampaignState::Failed { error } = service.wait(id) else {
            panic!("invalid sweep must fail");
        };
        assert!(!error.is_empty());
        // The service survives and runs the next campaign normally.
        let good = service.submit(small_sweep(), 0).unwrap();
        assert!(matches!(service.wait(good), CampaignState::Done { .. }));
    }

    #[test]
    fn full_queue_rejects_submits_with_backpressure() {
        // Capacity 1 and a runner kept busy by the first campaign: the
        // queue holds one more, and the next submit must be rejected.
        let config = ServiceConfig {
            queue_capacity: 1,
            ..ServiceConfig::default()
        };
        let service = SweepService::new(config, Arc::new(MemoryCache::new(256)));
        let mut submitted = 0usize;
        let mut rejected = None;
        for _ in 0..50 {
            match service.submit(small_sweep(), 0) {
                Ok(_) => submitted += 1,
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        let Some(GridError::Service(reason)) = rejected else {
            panic!("50 instant submits against a capacity-1 queue must trip backpressure");
        };
        assert!(reason.contains("queue full"), "{reason}");
        assert!(submitted >= 1);
    }

    #[test]
    fn ndjson_front_speaks_the_documented_protocol() {
        let sweep = small_sweep();
        let direct = sweep.run(1).unwrap();
        let service = in_process_service();
        let mut input = String::new();
        for request in [
            ServiceRequest::Submit {
                sweep,
                slice_len: 0,
            },
            ServiceRequest::Status { campaign: 0 },
            ServiceRequest::Results { campaign: 0 },
            ServiceRequest::Shutdown,
        ] {
            input.push_str(&serde_json::to_string(&request).unwrap());
            input.push('\n');
        }
        let mut output = Vec::new();
        serve(&service, Cursor::new(input), &mut output).unwrap();
        let replies: Vec<ServiceReply> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(replies[0], ServiceReply::Accepted { campaign: 0 });
        assert!(
            matches!(&replies[1], ServiceReply::Status { campaign: 0, .. }),
            "{:?}",
            replies[1]
        );
        // Results: one Report per point, row-major, then the terminator.
        let reports: Vec<&Report> = replies
            .iter()
            .filter_map(|r| match r {
                ServiceReply::Report { report, .. } => Some(report),
                _ => None,
            })
            .collect();
        assert_eq!(reports.len(), direct.len());
        for (streamed, expected) in reports.iter().zip(&direct) {
            assert_eq!(*streamed, expected);
        }
        assert_eq!(
            replies[replies.len() - 2],
            ServiceReply::ResultsDone {
                campaign: 0,
                points: direct.len()
            }
        );
        assert_eq!(replies[replies.len() - 1], ServiceReply::Bye);
    }

    #[test]
    fn garbage_request_lines_get_error_replies_not_disconnects() {
        let service = in_process_service();
        let shutdown = serde_json::to_string(&ServiceRequest::Shutdown).unwrap();
        let input = format!("not json\n{shutdown}\n");
        let mut output = Vec::new();
        serve(&service, Cursor::new(input), &mut output).unwrap();
        let replies: Vec<ServiceReply> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert!(
            matches!(&replies[0], ServiceReply::Error { .. }),
            "{:?}",
            replies[0]
        );
        assert_eq!(replies[1], ServiceReply::Bye);
    }
}
