//! Warm worker pools: keep subprocess workers alive between campaigns.
//!
//! A [`crate::SubprocessBackend`] without a pool spawns its worker fleet
//! at campaign start and kills it at campaign end — fine for one-shot
//! runs, wasteful for a sweep service executing many campaigns back to
//! back. A [`WorkerPool`] turns the fleet into a reusable resource:
//! at campaign end healthy workers are *drained* (protocol `Drain` →
//! `Drained`) and parked here, keyed by a hash of the worker argv, and
//! the next campaign with the same argv checks them out again (re-pinged
//! with `CampaignSubmit`, so a process that died while parked is
//! discarded, never trusted). Respawn becomes the exception: it happens
//! only on first use, after a worker loss, or when the pool ran dry.
//!
//! The pool also remembers each parked worker's measured throughput
//! (grid points per second), which seeds the dispatcher's
//! throughput-weighted scheduling on the next campaign — a worker that
//! proved slow yesterday starts today on the short slices.
//!
//! Pooling never changes campaign output: slices are pure functions of
//! their JSON, and the merge step is order-independent, so a warm fleet
//! produces bytes identical to a cold one.

use crate::subprocess::{WorkerProc, WorkerRequest};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How long [`WorkerPool::shutdown`] waits for a worker's `Bye` before
/// falling back to the kill-on-drop path.
const SHUTDOWN_TIMEOUT: Duration = Duration::from_secs(1);

/// Hash a worker argv into the pool key its idle workers are parked
/// under (FNV-1a 64 over NUL-joined args, folded with the protocol
/// version so a protocol bump can never resurrect stale workers).
pub(crate) fn pool_key(cmd: &[String]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut byte = |b: u8| {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for arg in cmd {
        for b in arg.as_bytes() {
            byte(*b);
        }
        byte(0);
    }
    for b in crate::subprocess::PROTOCOL_VERSION.to_le_bytes() {
        byte(b);
    }
    hash
}

/// A drained worker parked between campaigns.
#[derive(Debug)]
pub(crate) struct IdleWorker {
    /// The live, drained process.
    pub(crate) proc: WorkerProc,
    /// Its last measured throughput (grid points per second), used to
    /// seed weighted scheduling when it is next checked out.
    pub(crate) points_per_sec: Option<f64>,
}

/// A pool of drained subprocess workers, keyed by worker-argv hash,
/// shared across campaigns (and across backends — `Arc` it into every
/// [`crate::SubprocessBackend::with_pool`] that should reuse the fleet).
///
/// The pool is passive: it never spawns. Backends park workers here at
/// campaign end and check them out at campaign start; the pool's own job
/// is bookkeeping — idle storage with a per-key cap, spawn/reuse
/// counters for telemetry, and the campaign-scoped failure streak that
/// stretches respawn backoff while a fleet is struggling (and is wiped
/// at every campaign boundary, so one bad campaign never slows down the
/// next).
#[derive(Debug)]
pub struct WorkerPool {
    /// Idle workers by argv hash.
    idle: Mutex<HashMap<u64, Vec<IdleWorker>>>,
    /// Campaign sequence number, bumped by [`WorkerPool::begin_campaign`].
    campaigns: AtomicU64,
    /// Worker losses since the last campaign boundary.
    losses: AtomicUsize,
    /// Total processes ever spawned through this pool's backends.
    spawns: AtomicU64,
    /// Total successful warm checkouts.
    reuses: AtomicU64,
    /// Most idle workers kept per argv key; overflow check-ins are
    /// dropped (killed).
    max_idle_per_key: usize,
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// An empty pool keeping at most 32 idle workers per argv key.
    pub fn new() -> WorkerPool {
        WorkerPool::with_max_idle(32)
    }

    /// An empty pool keeping at most `max_idle_per_key` idle workers per
    /// argv key (0 disables parking entirely — every check-in kills).
    pub fn with_max_idle(max_idle_per_key: usize) -> WorkerPool {
        WorkerPool {
            idle: Mutex::new(HashMap::new()),
            campaigns: AtomicU64::new(0),
            losses: AtomicUsize::new(0),
            spawns: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            max_idle_per_key,
        }
    }

    /// Workers currently parked, across all keys.
    pub fn idle_workers(&self) -> usize {
        self.idle
            .lock()
            .map(|idle| idle.values().map(Vec::len).sum())
            .unwrap_or(0)
    }

    /// Processes spawned through this pool's backends so far. A steady
    /// value across campaigns is the signature of a warm fleet.
    pub fn spawns(&self) -> u64 {
        self.spawns.load(Ordering::Relaxed)
    }

    /// Successful warm checkouts so far.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Worker losses since the last campaign boundary (diagnostic; feeds
    /// the respawn-backoff stretch).
    pub fn loss_streak(&self) -> usize {
        self.losses.load(Ordering::Relaxed)
    }

    /// Mark a campaign boundary: wipe the failure streak — backoff state
    /// must never leak from one campaign into the next — and hand out
    /// the campaign's protocol tag.
    pub(crate) fn begin_campaign(&self) -> u64 {
        self.losses.store(0, Ordering::Relaxed);
        self.campaigns.fetch_add(1, Ordering::Relaxed)
    }

    /// Record a worker loss (crash / timeout / garbled reply).
    pub(crate) fn note_loss(&self) {
        self.losses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a fresh process spawn.
    pub(crate) fn note_spawn(&self) {
        self.spawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a successful warm checkout.
    pub(crate) fn note_reuse(&self) {
        self.reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Take one idle worker parked under `key`, if any. The caller must
    /// re-ping it (`CampaignSubmit`) before trusting it.
    pub(crate) fn check_out(&self, key: u64) -> Option<IdleWorker> {
        let mut idle = self.idle.lock().expect("pool lock");
        idle.get_mut(&key)?.pop()
    }

    /// Park a drained worker under `key`; dropped (killed) when the
    /// per-key cap is already reached.
    pub(crate) fn check_in(&self, key: u64, worker: IdleWorker) {
        let mut idle = self.idle.lock().expect("pool lock");
        let parked = idle.entry(key).or_default();
        if parked.len() < self.max_idle_per_key {
            parked.push(worker);
        }
        // else: drop kills the overflow worker
    }

    /// Retire every parked worker: best-effort `Shutdown` → `Bye`
    /// handshake for a clean exit, kill-on-drop as the backstop. The
    /// pool is empty afterwards but remains usable.
    pub fn shutdown(&self) {
        let drained: Vec<IdleWorker> = {
            // Poisoned lock (a panicking campaign thread) still holds
            // real workers; recover the map rather than leaking them.
            let mut idle = match self.idle.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            idle.drain().flat_map(|(_, workers)| workers).collect()
        };
        for mut worker in drained {
            let _ = worker
                .proc
                .control(&WorkerRequest::Shutdown, SHUTDOWN_TIMEOUT, |r| {
                    matches!(r, crate::subprocess::WorkerReply::Bye)
                });
            // drop kills if the worker ignored the handshake
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_key_depends_on_every_arg_and_on_arg_boundaries() {
        let a = pool_key(&["worker".into(), "--fast".into()]);
        let b = pool_key(&["worker".into(), "--slow".into()]);
        let c = pool_key(&["worker --fast".into()]);
        assert_ne!(a, b);
        // NUL joining keeps ["worker", "--fast"] distinct from
        // ["worker --fast"] even though their bytes agree.
        assert_ne!(a, c);
        assert_eq!(a, pool_key(&["worker".into(), "--fast".into()]));
    }

    #[test]
    fn campaign_boundary_resets_the_loss_streak() {
        // The regression this guards: backoff state leaking across
        // campaigns, so a campaign after a flaky one started with
        // already-stretched respawn delays.
        let pool = WorkerPool::new();
        pool.note_loss();
        pool.note_loss();
        pool.note_loss();
        assert_eq!(pool.loss_streak(), 3);
        let first = pool.begin_campaign();
        assert_eq!(pool.loss_streak(), 0, "new campaign starts clean");
        pool.note_loss();
        assert_eq!(pool.loss_streak(), 1);
        let second = pool.begin_campaign();
        assert_eq!(pool.loss_streak(), 0);
        assert!(second > first, "campaign tags are monotonic");
    }

    #[test]
    fn empty_pool_checks_out_nothing_and_shuts_down_quietly() {
        let pool = WorkerPool::new();
        assert!(pool.check_out(pool_key(&["x".into()])).is_none());
        assert_eq!(pool.idle_workers(), 0);
        pool.shutdown();
        assert_eq!((pool.spawns(), pool.reuses()), (0, 0));
    }
}
