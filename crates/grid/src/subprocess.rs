//! Out-of-process slice execution over a newline-delimited JSON protocol.
//!
//! # The worker protocol
//!
//! A worker is any process that reads **one JSON request per line** on
//! stdin and writes **one JSON [`WorkerReply`] per line** on stdout,
//! flushing after each reply, until stdin reaches EOF. `hyperroute-grid
//! worker` is exactly [`run_worker`] over locked stdio; anything else
//! (an ssh wrapper, a container entrypoint) can stand in as long as it
//! speaks the same lines, which is why the backend takes a plain argv
//! vector rather than a path.
//!
//! Two request framings coexist:
//!
//! * **v1 (legacy)** — a bare JSON [`GridSlice`] per line. This is what
//!   an unpooled [`SubprocessBackend`] still sends, so any stub that
//!   only understands slices keeps working.
//! * **v2 (session)** — a tagged [`WorkerRequest`] per line. The
//!   dispatcher opens the session with `Hello` (protocol version
//!   handshake), marks campaign boundaries with `CampaignSubmit`,
//!   parks an idle worker with `Drain`, and retires it with
//!   `Shutdown`. [`run_worker`] answers both framings on the same
//!   stdin, so one worker binary serves pooled and unpooled
//!   dispatchers alike.
//!
//! ```text
//! dispatcher → worker:  {"Hello":{"version":2}}\n
//! worker → dispatcher:  {"HelloOk":{"version":2}}\n
//! dispatcher → worker:  {"CampaignSubmit":{"campaign":7}}\n
//! worker → dispatcher:  {"CampaignAck":{"campaign":7}}\n
//! dispatcher → worker:  {"Slice":{"id":3,"sweep":{…},"start":12,"len":4}}\n
//! worker → dispatcher:  {"Progress":{"id":3,"done":2,"total":4,"rows_per_sec":1.7}}\n  (zero or more)
//!                       {"Ok":{"id":3,"start":12,"reports":[…]}}\n
//! dispatcher → worker:  "Drain"\n            (park in the warm pool)
//! worker → dispatcher:  "Drained"\n
//! dispatcher → worker:  "Shutdown"\n
//! worker → dispatcher:  "Bye"\n              (worker exits cleanly)
//! ```
//!
//! While a slice runs, the worker may interleave any number of
//! [`WorkerReply::Progress`] heartbeat lines (throttled to one per
//! [`DEFAULT_HEARTBEAT`]; see [`run_worker_with`]) before the single
//! terminal `Ok`/`Err` line. Each heartbeat restarts the dispatcher's
//! reply timeout, so [`SubprocessBackend::timeout`] bounds worker
//! *silence*, not slice duration — a slow slice on a live, heartbeating
//! worker never times out spuriously.
//!
//! # Warm pools and weighted scheduling
//!
//! Attach a [`crate::WorkerPool`] with [`SubprocessBackend::with_pool`]
//! and the backend switches to v2 framing: at campaign start it checks
//! idle workers out of the pool (re-pinging each with `CampaignSubmit`
//! and discarding any that died while parked) instead of spawning, and
//! at campaign end it parks healthy workers back with `Drain` instead
//! of killing them. Respawn becomes the exception, not the per-campaign
//! rule. The pool also carries each parked worker's measured throughput
//! (grid points per second, learned from round timings), which feeds the
//! dispatcher's **throughput-weighted queue**: pending slices are kept
//! sorted by length, and a worker whose measured rate is at or above the
//! fleet mean takes the longest pending slice while a slower worker
//! takes the shortest — classic longest-processing-time scheduling,
//! weighted by who is asking. Results still merge deterministically, so
//! scheduling policy can never change campaign output, only wall time.
//!
//! # Fault handling
//!
//! Workers hold no campaign state — a slice is a pure function of its
//! JSON — so every failure mode has the same cure: kill the process,
//! spawn a fresh one, hand the slice to someone else. The dispatcher
//! retries a slice after a crash (stdin/stdout closed), a reply timeout,
//! or a garbled reply, up to [`SubprocessBackend::max_retries`] times;
//! only then does the campaign abort with [`GridError::SliceLost`]. A
//! well-formed [`WorkerReply::Err`] is different: the worker is healthy
//! and the slice itself is bad, so it fails the campaign immediately
//! ([`GridError::SliceFailed`]) instead of burning retries. When a pool
//! is attached, worker losses also bump a pool-wide failure streak that
//! stretches the respawn backoff — and the streak is reset at every
//! campaign boundary, so one bad campaign can never slow down the next.

use crate::backend::ExecBackend;
use crate::error::GridError;
use crate::slice::{GridSlice, SliceResult};
use crate::warm::{pool_key, IdleWorker, WorkerPool};
use hyperroute_desim::splitmix64;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Version of the session (v2) framing spoken by this build. A
/// dispatcher opens every pooled worker with `Hello` and refuses to pool
/// a worker that answers with a different version.
pub const PROTOCOL_VERSION: u32 = 2;

/// One request line of the v2 worker protocol.
///
/// v1 dispatchers send a bare [`GridSlice`] instead; [`run_worker`]
/// accepts both framings on the same stream.
// Wire enum: boxing `Slice` would complicate the stable NDJSON framing
// for a transient, one-per-line value.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkerRequest {
    /// Protocol handshake: the dispatcher announces its version and the
    /// worker answers [`WorkerReply::HelloOk`] with its own.
    Hello {
        /// Dispatcher protocol version (see [`PROTOCOL_VERSION`]).
        version: u32,
    },
    /// Execute one slice (v2 framing of the v1 bare-slice line).
    Slice(GridSlice),
    /// The worker is now serving this campaign. Doubles as the liveness
    /// ping when a worker is checked out of a warm pool: a parked
    /// process that died answers nothing and is discarded.
    CampaignSubmit {
        /// Dispatcher-local campaign sequence number.
        campaign: u64,
    },
    /// Park: the campaign is over, confirm idleness with
    /// [`WorkerReply::Drained`] and await the next `CampaignSubmit`.
    Drain,
    /// Retire: answer [`WorkerReply::Bye`] and exit cleanly.
    Shutdown,
}

/// One reply line of the worker protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkerReply {
    /// The slice executed; here are its reports.
    Ok(SliceResult),
    /// The slice failed deterministically (malformed job, invalid
    /// scenario); retrying it elsewhere cannot help.
    Err {
        /// Id of the failing slice (`u64::MAX` when the job line itself
        /// did not parse).
        id: u64,
        /// What went wrong.
        message: String,
    },
    /// Heartbeat for the slice currently executing. A worker may emit
    /// any number of these before the terminal `Ok`/`Err` line; each
    /// one proves the worker is alive and restarts the dispatcher's
    /// reply timeout. Heartbeats never carry results.
    Progress {
        /// Id of the slice being executed.
        id: u64,
        /// Grid points finished so far.
        done: usize,
        /// Grid points in the slice.
        total: usize,
        /// Throughput since the slice started (grid points per wall
        /// second).
        rows_per_sec: f64,
    },
    /// Answer to [`WorkerRequest::Hello`]: the worker's own protocol
    /// version.
    HelloOk {
        /// Worker protocol version (see [`PROTOCOL_VERSION`]).
        version: u32,
    },
    /// Answer to [`WorkerRequest::CampaignSubmit`], echoing the campaign
    /// number.
    CampaignAck {
        /// The campaign the worker now serves.
        campaign: u64,
    },
    /// Answer to [`WorkerRequest::Drain`]: the worker is idle and
    /// parked.
    Drained,
    /// Answer to [`WorkerRequest::Shutdown`], sent just before exiting.
    Bye,
}

/// Minimum wall-clock gap between two [`WorkerReply::Progress`] lines
/// from [`run_worker`] — frequent enough to outrun any sane dispatcher
/// timeout, rare enough to stay invisible in fast campaigns.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_secs(5);

/// Ceiling on the timeout used for protocol control exchanges (Hello,
/// CampaignSubmit, Drain): a healthy idle worker answers these
/// instantly, so a long slice timeout must not stall pool checkout on a
/// corpse for minutes.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Parse one inbound line: v2 [`WorkerRequest`] first, then the v1 bare
/// [`GridSlice`] fallback.
fn parse_request(line: &str) -> Result<WorkerRequest, String> {
    if let Ok(req) = serde_json::from_str::<WorkerRequest>(line) {
        return Ok(req);
    }
    serde_json::from_str::<GridSlice>(line)
        .map(WorkerRequest::Slice)
        .map_err(|e| format!("job line does not parse: {e}"))
}

/// Serve the worker side of the protocol until `input` reaches EOF,
/// heartbeating at [`DEFAULT_HEARTBEAT`].
///
/// Every request line in is answered by exactly one **terminal** line
/// out (flushed), so a dispatcher can pipeline jobs without framing
/// ambiguity; long slices additionally interleave throttled
/// [`WorkerReply::Progress`] lines before the terminal reply. Both v1
/// (bare slice) and v2 ([`WorkerRequest`]) framings are accepted on the
/// same stream. IO errors on the streams end the loop — the dispatcher
/// treats a vanished worker as a retryable loss.
pub fn run_worker(input: impl BufRead, output: impl Write) -> std::io::Result<()> {
    run_worker_with(input, output, DEFAULT_HEARTBEAT)
}

/// [`run_worker`] with an explicit heartbeat interval: while a slice
/// executes, a [`WorkerReply::Progress`] line is emitted after any grid
/// point that completes at least `heartbeat` after the previous emission
/// (`Duration::ZERO` beats on every point). Heartbeats are best-effort —
/// a failed heartbeat write is dropped, and a genuinely broken pipe
/// still surfaces on the terminal reply.
pub fn run_worker_with(
    input: impl BufRead,
    mut output: impl Write,
    heartbeat: Duration,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut retire = false;
        let reply = match parse_request(&line) {
            Ok(WorkerRequest::Hello { version: _ }) => WorkerReply::HelloOk {
                version: PROTOCOL_VERSION,
            },
            Ok(WorkerRequest::CampaignSubmit { campaign }) => WorkerReply::CampaignAck { campaign },
            Ok(WorkerRequest::Drain) => WorkerReply::Drained,
            Ok(WorkerRequest::Shutdown) => {
                retire = true;
                WorkerReply::Bye
            }
            Ok(WorkerRequest::Slice(slice)) => {
                let id = slice.id;
                let started = Instant::now();
                let mut last_beat = started;
                let outcome = slice.execute_with(&mut |done, total| {
                    if last_beat.elapsed() < heartbeat {
                        return;
                    }
                    last_beat = Instant::now();
                    let secs = started.elapsed().as_secs_f64();
                    let beat = WorkerReply::Progress {
                        id,
                        done,
                        total,
                        rows_per_sec: if secs > 0.0 { done as f64 / secs } else { 0.0 },
                    };
                    let text = serde_json::to_string(&beat).expect("replies always serialise");
                    let _ = writeln!(output, "{text}").and_then(|()| output.flush());
                });
                match outcome {
                    Ok(result) => WorkerReply::Ok(result),
                    Err(e) => WorkerReply::Err {
                        id,
                        message: e.to_string(),
                    },
                }
            }
            Err(message) => WorkerReply::Err {
                id: u64::MAX,
                message,
            },
        };
        let text = serde_json::to_string(&reply).expect("replies always serialise");
        writeln!(output, "{text}")?;
        output.flush()?;
        if retire {
            break;
        }
    }
    Ok(())
}

/// Backend that fans slices out to subprocess workers.
///
/// Spawns up to [`SubprocessBackend::workers`] copies of
/// [`SubprocessBackend::worker_cmd`] and feeds each one slice at a time,
/// so grids scale across cores (or, with an ssh/container wrapper as the
/// command, across machines) without sharing memory. With a
/// [`WorkerPool`] attached ([`SubprocessBackend::with_pool`]), worker
/// processes outlive the campaign and are reused by the next one.
#[derive(Clone, Debug)]
pub struct SubprocessBackend {
    /// argv of the worker command (program first).
    pub worker_cmd: Vec<String>,
    /// Concurrent worker processes (`0` = hardware parallelism, like
    /// [`crate::ThreadPoolBackend`]; clamped to the job count).
    pub workers: usize,
    /// How long a worker may stay *silent* — no terminal reply, no
    /// [`WorkerReply::Progress`] heartbeat — before it is declared lost.
    /// Heartbeats restart this clock, so the bound is on liveness, not
    /// slice duration.
    pub timeout: Duration,
    /// How many times a slice is retried after losing a worker before
    /// the campaign aborts.
    pub max_retries: usize,
    /// First-retry respawn delay (doubles per attempt, jittered ±50%;
    /// see [`respawn_backoff`]). Zero disables the backoff sleep.
    pub backoff_base: Duration,
    /// Ceiling on the un-jittered respawn delay.
    pub backoff_cap: Duration,
    /// Warm pool that keeps workers alive between campaigns (v2
    /// protocol); `None` runs the classic spawn-per-campaign v1 path.
    pool: Option<Arc<WorkerPool>>,
}

impl SubprocessBackend {
    /// Backend running `worker_cmd` on `workers` processes, with a
    /// 10-minute per-slice timeout, 2 retries, and a 50 ms–2 s
    /// jittered-exponential respawn backoff.
    pub fn new(worker_cmd: Vec<String>, workers: usize) -> SubprocessBackend {
        SubprocessBackend {
            worker_cmd,
            workers,
            timeout: Duration::from_secs(600),
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            pool: None,
        }
    }

    /// Backend whose workers are `hyperroute-grid worker` subprocesses of
    /// the currently running binary — the zero-configuration multi-core
    /// path used by the CLI.
    pub fn self_workers(workers: usize) -> Result<SubprocessBackend, GridError> {
        let exe = std::env::current_exe().map_err(|e| GridError::Spawn {
            cmd: "<current_exe>".into(),
            error: e.to_string(),
        })?;
        Ok(SubprocessBackend::new(
            vec![exe.display().to_string(), "worker".into()],
            workers,
        ))
    }

    /// Per-slice timeout (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> SubprocessBackend {
        self.timeout = timeout;
        self
    }

    /// Retry budget per slice (builder style).
    pub fn with_max_retries(mut self, max_retries: usize) -> SubprocessBackend {
        self.max_retries = max_retries;
        self
    }

    /// Respawn backoff envelope (builder style); a zero `base` disables
    /// the sleep entirely.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> SubprocessBackend {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Keep workers warm in `pool` between campaigns (builder style).
    ///
    /// Switches the dispatcher to the v2 session protocol: fresh workers
    /// are version-handshaked with `Hello`, campaign boundaries are
    /// marked with `CampaignSubmit`, and at campaign end healthy workers
    /// are parked back into the pool with `Drain` instead of being
    /// killed. The worker command must therefore speak v2 —
    /// `hyperroute-grid worker` does; a v1-only stub will fail the
    /// handshake.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> SubprocessBackend {
        self.pool = Some(pool);
        self
    }

    /// Timeout for control exchanges: never longer than the slice
    /// timeout, never longer than [`HANDSHAKE_TIMEOUT`].
    fn handshake_timeout(&self) -> Duration {
        self.timeout.min(HANDSHAKE_TIMEOUT)
    }
}

/// Delay before respawning a worker for retry `attempt` (1-based) of the
/// slice with id `seed`: exponential `base · 2^(attempt-1)` capped at
/// `cap`, then jittered to 50–150% by a [`splitmix64`] draw of
/// `(seed, attempt)`.
///
/// The schedule is a pure function of its arguments — no clocks, no
/// global RNG — so a given slice retries on the same timetable in every
/// campaign run, while different slices (different seeds) spread their
/// respawns apart instead of stampeding a recovering machine together.
pub fn respawn_backoff(seed: u64, attempt: usize, base: Duration, cap: Duration) -> Duration {
    if base.is_zero() || attempt == 0 {
        return Duration::ZERO;
    }
    let doublings = (attempt - 1).min(31) as u32;
    let envelope = base.saturating_mul(1u32 << doublings).min(cap);
    // 53 uniform bits → [0, 1), mapped to a jitter factor in [0.5, 1.5).
    let u = (splitmix64(seed ^ attempt as u64) >> 11) as f64 / (1u64 << 53) as f64;
    envelope.mul_f64(0.5 + u)
}

/// A queue entry: which job, and how many times it has been attempted.
#[derive(Clone, Copy, Debug)]
struct Attempt {
    index: usize,
    attempts: usize,
}

/// What one job round on one worker produced.
enum RoundOutcome {
    /// The slice completed.
    Done(SliceResult),
    /// Unrecoverable (spawn failure, deterministic slice failure).
    Fatal(GridError),
    /// The worker was lost (crash / timeout / garbled reply); the slice
    /// should be retried on a fresh worker.
    Lost(String),
}

/// A live worker process: its stdin plus a channel of stdout lines fed
/// by a detached reader thread (the only way to read with a timeout
/// using std alone).
pub(crate) struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    lines: mpsc::Receiver<String>,
}

impl std::fmt::Debug for WorkerProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerProc")
            .field("pid", &self.child.id())
            .finish_non_exhaustive()
    }
}

impl WorkerProc {
    fn spawn(cmd: &[String]) -> Result<WorkerProc, GridError> {
        let spawn_err = |error: String| GridError::Spawn {
            cmd: cmd.join(" "),
            error,
        };
        let (program, args) = cmd
            .split_first()
            .ok_or_else(|| spawn_err("empty worker command".into()))?;
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| spawn_err(e.to_string()))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let (tx, lines) = mpsc::channel();
        // Detached on purpose: it parks in a blocking read and exits on
        // EOF, which killing the child guarantees.
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        Ok(WorkerProc {
            child,
            stdin,
            lines,
        })
    }

    /// Write one protocol line, flushed.
    pub(crate) fn send_line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.stdin, "{line}")
            .and_then(|()| self.stdin.flush())
            .map_err(|e| format!("worker stdin closed: {e}"))
    }

    /// Await the next reply line within `timeout` and parse it.
    pub(crate) fn recv(&self, timeout: Duration) -> Result<WorkerReply, String> {
        match self.lines.recv_timeout(timeout) {
            Ok(line) => {
                serde_json::from_str(&line).map_err(|e| format!("garbled worker reply: {e}"))
            }
            Err(RecvTimeoutError::Timeout) => {
                Err(format!("no reply within {:.1}s", timeout.as_secs_f64()))
            }
            Err(RecvTimeoutError::Disconnected) => Err("worker exited before replying".into()),
        }
    }

    /// One control round-trip: send `request`, require `expect(reply)`.
    pub(crate) fn control(
        &mut self,
        request: &WorkerRequest,
        timeout: Duration,
        expect: impl Fn(&WorkerReply) -> bool,
    ) -> Result<WorkerReply, String> {
        let line = serde_json::to_string(request).expect("requests always serialise");
        self.send_line(&line)?;
        let reply = self.recv(timeout)?;
        if expect(&reply) {
            Ok(reply)
        } else {
            Err(format!("unexpected reply to {request:?}: {reply:?}"))
        }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Shared per-campaign scheduling state: the pending queue, kept sorted
/// by slice length, plus the measured throughput of every manager.
///
/// The policy is longest-processing-time with a twist: a manager whose
/// measured rate (grid points per second) is at or above the mean of all
/// measured rates — or that has no measurement yet — takes the *longest*
/// pending slice, while a measurably slower manager takes the
/// *shortest*. Fast workers chew through the bulk; stragglers can never
/// strand a huge slice at the end of a campaign.
struct SchedQueue {
    inner: Mutex<SchedInner>,
}

struct SchedInner {
    /// Pending attempts, sorted ascending by `(slice length, Reverse(index))`
    /// so the back of the vector is the longest slice (lowest index among
    /// equals) and the front is the shortest.
    queue: Vec<Attempt>,
    /// Latest throughput estimate per manager (EWMA, points/sec).
    rates: Vec<Option<f64>>,
}

impl SchedQueue {
    fn sort_key(jobs: &[GridSlice], a: &Attempt) -> (usize, Reverse<usize>) {
        (jobs[a.index].len, Reverse(a.index))
    }

    fn new(jobs: &[GridSlice], managers: usize) -> SchedQueue {
        let mut queue: Vec<Attempt> = (0..jobs.len())
            .map(|index| Attempt { index, attempts: 0 })
            .collect();
        queue.sort_by_key(|a| Self::sort_key(jobs, a));
        SchedQueue {
            inner: Mutex::new(SchedInner {
                queue,
                rates: vec![None; managers],
            }),
        }
    }

    /// Pop the next attempt for `manager`, weighted by its measured
    /// throughput relative to the fleet.
    fn pop_for(&self, manager: usize, jobs: &[GridSlice]) -> Option<Attempt> {
        let mut inner = self.inner.lock().expect("sched lock");
        if inner.queue.is_empty() {
            return None;
        }
        let fast = match inner.rates.get(manager).copied().flatten() {
            None => true, // unmeasured: be optimistic, grab a big one
            Some(mine) => {
                let known: Vec<f64> = inner.rates.iter().filter_map(|r| *r).collect();
                let mean = known.iter().sum::<f64>() / known.len() as f64;
                mine >= mean
            }
        };
        if fast {
            inner.queue.pop()
        } else {
            Some(inner.queue.remove(0))
        }
        .inspect(|a| {
            debug_assert!(a.index < jobs.len());
        })
    }

    /// Requeue a lost slice for retry, keeping the length order.
    fn push_retry(&self, attempt: Attempt, jobs: &[GridSlice]) {
        let mut inner = self.inner.lock().expect("sched lock");
        let key = Self::sort_key(jobs, &attempt);
        let pos = inner
            .queue
            .partition_point(|b| Self::sort_key(jobs, b) <= key);
        inner.queue.insert(pos, attempt);
    }

    /// Record a fresh throughput estimate for `manager`.
    fn record(&self, manager: usize, points_per_sec: f64) {
        let mut inner = self.inner.lock().expect("sched lock");
        if let Some(slot) = inner.rates.get_mut(manager) {
            *slot = Some(points_per_sec);
        }
    }
}

impl SubprocessBackend {
    /// Obtain a worker for this campaign: checked out of the warm pool
    /// (re-pinged, stale corpses discarded) when one is available,
    /// freshly spawned (and, in pooled mode, version-handshaked)
    /// otherwise. Returns the worker plus its remembered throughput, if
    /// the pool knew one.
    fn acquire(&self, campaign: u64) -> Result<(WorkerProc, Option<f64>), RoundOutcome> {
        let Some(pool) = &self.pool else {
            let proc = WorkerProc::spawn(&self.worker_cmd).map_err(RoundOutcome::Fatal)?;
            return Ok((proc, None));
        };
        let key = pool_key(&self.worker_cmd);
        while let Some(mut idle) = pool.check_out(key) {
            // Liveness ping doubling as the campaign marker: a worker
            // that died while parked answers nothing and is discarded
            // (drop kills), falling through to the next idle one.
            let submit = WorkerRequest::CampaignSubmit { campaign };
            let ack = |r: &WorkerReply| matches!(r, WorkerReply::CampaignAck { campaign: c } if *c == campaign);
            if idle
                .proc
                .control(&submit, self.handshake_timeout(), ack)
                .is_ok()
            {
                pool.note_reuse();
                return Ok((idle.proc, idle.points_per_sec));
            }
        }
        let mut proc = WorkerProc::spawn(&self.worker_cmd).map_err(RoundOutcome::Fatal)?;
        pool.note_spawn();
        let hello = WorkerRequest::Hello {
            version: PROTOCOL_VERSION,
        };
        match proc.control(&hello, self.handshake_timeout(), |r| {
            matches!(r, WorkerReply::HelloOk { .. })
        }) {
            Ok(WorkerReply::HelloOk { version }) if version == PROTOCOL_VERSION => {}
            Ok(WorkerReply::HelloOk { version }) => {
                return Err(RoundOutcome::Lost(format!(
                    "protocol version mismatch: worker speaks v{version}, dispatcher v{PROTOCOL_VERSION}"
                )));
            }
            Ok(_) => unreachable!("control() filtered non-HelloOk replies"),
            Err(e) => {
                return Err(RoundOutcome::Lost(format!(
                    "protocol handshake failed: {e}"
                )))
            }
        }
        let submit = WorkerRequest::CampaignSubmit { campaign };
        proc.control(
            &submit,
            self.handshake_timeout(),
            |r| matches!(r, WorkerReply::CampaignAck { campaign: c } if *c == campaign),
        )
        .map_err(|e| RoundOutcome::Lost(format!("campaign submit failed: {e}")))?;
        Ok((proc, None))
    }

    /// Park a healthy worker back into the pool at campaign end (v2:
    /// `Drain` → `Drained`), or let drop kill it when unpooled, draining
    /// fails, or the campaign was cancelled.
    fn release(&self, proc: Option<WorkerProc>, points_per_sec: Option<f64>, cancelled: bool) {
        let Some(mut proc) = proc else { return };
        let Some(pool) = &self.pool else { return };
        if cancelled {
            return; // failed campaign: don't trust the worker's state
        }
        let drained = proc
            .control(&WorkerRequest::Drain, self.handshake_timeout(), |r| {
                matches!(r, WorkerReply::Drained)
            })
            .is_ok();
        if drained {
            pool.check_in(
                pool_key(&self.worker_cmd),
                IdleWorker {
                    proc,
                    points_per_sec,
                },
            );
        }
    }

    /// Send one job to (possibly fresh) `proc` and await its reply.
    /// On [`RoundOutcome::Lost`] the caller must discard `proc`.
    /// `adopted_rate` reports the pool's remembered throughput when a
    /// warm worker was checked out during this round.
    fn one_round(
        &self,
        slice: &GridSlice,
        proc: &mut Option<WorkerProc>,
        campaign: u64,
        adopted_rate: &mut Option<f64>,
    ) -> RoundOutcome {
        if proc.is_none() {
            match self.acquire(campaign) {
                Ok((p, rate)) => {
                    *proc = Some(p);
                    *adopted_rate = rate;
                }
                Err(outcome) => return outcome,
            }
        }
        let worker = proc.as_mut().expect("acquired above");
        // v2 sessions frame the slice as a tagged request; v1 sends the
        // bare slice so legacy stub workers keep parsing.
        let slice_json = serde_json::to_string(slice).expect("slices always serialise");
        let job_line = if self.pool.is_some() {
            format!("{{\"Slice\":{slice_json}}}")
        } else {
            slice_json
        };
        if let Err(e) = worker.send_line(&job_line) {
            return RoundOutcome::Lost(e);
        }
        // Heartbeats are keep-alives: each Progress line for the pending
        // slice restarts the timeout, so only true silence is a loss.
        loop {
            return match worker.lines.recv_timeout(self.timeout) {
                Ok(line) => match serde_json::from_str::<WorkerReply>(&line) {
                    Ok(WorkerReply::Progress { id, .. }) if id == slice.id => continue,
                    Ok(WorkerReply::Progress { id, .. }) => RoundOutcome::Lost(format!(
                        "worker heartbeat for slice {id} while slice {} was pending",
                        slice.id
                    )),
                    Ok(WorkerReply::Ok(result)) if result.id == slice.id => {
                        RoundOutcome::Done(result)
                    }
                    Ok(WorkerReply::Ok(result)) => RoundOutcome::Lost(format!(
                        "worker answered slice {} while slice {} was pending",
                        result.id, slice.id
                    )),
                    Ok(WorkerReply::Err { id, message }) => {
                        RoundOutcome::Fatal(GridError::SliceFailed {
                            slice: if id == u64::MAX { slice.id } else { id },
                            message,
                        })
                    }
                    Ok(other) => RoundOutcome::Lost(format!(
                        "unexpected control reply while slice {} was pending: {other:?}",
                        slice.id
                    )),
                    Err(e) => RoundOutcome::Lost(format!("garbled worker reply: {e}")),
                },
                Err(RecvTimeoutError::Timeout) => RoundOutcome::Lost(format!(
                    "no reply or heartbeat within {:.1}s",
                    self.timeout.as_secs_f64()
                )),
                Err(RecvTimeoutError::Disconnected) => {
                    RoundOutcome::Lost("worker exited before replying".into())
                }
            };
        }
    }

    /// One manager loop: own a worker process, pull jobs off the shared
    /// weighted queue, retry lost slices (back onto the queue, so
    /// another manager may pick them up) until the queue drains or the
    /// campaign cancels; then park the worker in the warm pool, if any.
    fn manage_worker(
        &self,
        jobs: &[GridSlice],
        sched: &SchedQueue,
        cancelled: &AtomicBool,
        tx: &mpsc::Sender<Result<SliceResult, GridError>>,
        campaign: u64,
        manager: usize,
    ) {
        let mut proc: Option<WorkerProc> = None;
        // This manager's throughput estimate: seeded from the pool's
        // memory of the adopted worker, then EWMA-updated per round.
        let mut rate: Option<f64> = None;
        loop {
            if cancelled.load(Ordering::Relaxed) {
                break;
            }
            let Some(job) = sched.pop_for(manager, jobs) else {
                break;
            };
            let started = Instant::now();
            let mut adopted_rate = None;
            let outcome = self.one_round(&jobs[job.index], &mut proc, campaign, &mut adopted_rate);
            if let (Some(seed), None) = (adopted_rate, rate) {
                rate = Some(seed);
                sched.record(manager, seed);
            }
            match outcome {
                RoundOutcome::Done(result) => {
                    let secs = started.elapsed().as_secs_f64();
                    if secs > 0.0 {
                        let measured = jobs[job.index].len as f64 / secs;
                        let blended = match rate {
                            Some(old) => 0.5 * old + 0.5 * measured,
                            None => measured,
                        };
                        rate = Some(blended);
                        sched.record(manager, blended);
                    }
                    if tx.send(Ok(result)).is_err() {
                        break;
                    }
                }
                RoundOutcome::Fatal(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
                RoundOutcome::Lost(reason) => {
                    proc = None; // drop kills the stale process
                    let attempts = job.attempts + 1;
                    if attempts > self.max_retries {
                        let _ = tx.send(Err(GridError::SliceLost {
                            slice: jobs[job.index].id,
                            attempts,
                            last_error: reason,
                        }));
                        break;
                    }
                    // Back off before the retry reaches a fresh process —
                    // a worker command that dies on startup would
                    // otherwise respawn in a tight fork loop. A pool-wide
                    // failure streak (reset each campaign) stretches the
                    // envelope when the whole fleet is struggling.
                    let streak = self.pool.as_ref().map_or(0, |p| {
                        p.note_loss();
                        p.loss_streak().min(8)
                    });
                    std::thread::sleep(respawn_backoff(
                        jobs[job.index].id,
                        attempts + streak,
                        self.backoff_base,
                        self.backoff_cap,
                    ));
                    sched.push_retry(
                        Attempt {
                            index: job.index,
                            attempts,
                        },
                        jobs,
                    );
                }
            }
        }
        self.release(proc.take(), rate, cancelled.load(Ordering::Relaxed));
    }
}

impl ExecBackend for SubprocessBackend {
    fn execute(
        &self,
        jobs: &[GridSlice],
        on_result: &mut dyn FnMut(SliceResult) -> Result<(), GridError>,
    ) -> Result<(), GridError> {
        if jobs.is_empty() {
            return Ok(());
        }
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = if self.workers == 0 { hw } else { self.workers }
            .min(jobs.len())
            .max(1);
        // Campaign boundary: tag the campaign for the v2 protocol and
        // wipe the pool-wide failure streak so this campaign's backoff
        // starts from a clean slate.
        let campaign = self.pool.as_ref().map_or(0, |pool| pool.begin_campaign());
        let sched = SchedQueue::new(jobs, workers);
        let cancelled = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<Result<SliceResult, GridError>>();
        std::thread::scope(|scope| -> Result<(), GridError> {
            for manager in 0..workers {
                let tx = tx.clone();
                let sched = &sched;
                let cancelled = &cancelled;
                scope.spawn(move || {
                    self.manage_worker(jobs, sched, cancelled, &tx, campaign, manager)
                });
            }
            drop(tx);
            let mut received = 0usize;
            for outcome in rx {
                let result = match outcome {
                    Ok(result) => result,
                    Err(e) => {
                        cancelled.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                };
                if let Err(e) = on_result(result) {
                    cancelled.store(true, Ordering::Relaxed);
                    return Err(e);
                }
                received += 1;
                if received == jobs.len() {
                    break;
                }
            }
            if received == jobs.len() {
                Ok(())
            } else {
                // Every manager exited without delivering the full batch
                // (all of them hit fatal sends racing the cancel flag, or
                // the queue drained into failures).
                Err(GridError::Merge(format!(
                    "workers delivered {received} of {} slices",
                    jobs.len()
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::partition;
    use hyperroute_core::scenario::{Axis, Scenario, Sweep, SweepParam, Topology};
    use std::io::Cursor;

    fn small_sweep() -> Sweep {
        let base = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.8)
            .p(0.5)
            .horizon(60.0)
            .warmup(10.0)
            .seed(5)
            .build()
            .unwrap();
        Sweep::new(base, vec![Axis::new(SweepParam::Lambda, vec![0.4, 0.8])])
    }

    #[test]
    fn worker_answers_each_job_line() {
        let slices = partition(&small_sweep(), 1);
        let mut input = String::new();
        for s in &slices {
            input.push_str(&serde_json::to_string(s).unwrap());
            input.push('\n');
        }
        let mut output = Vec::new();
        run_worker(Cursor::new(input), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        // Heartbeats are a side channel; only terminal replies frame jobs.
        let replies: Vec<WorkerReply> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|r| !matches!(r, WorkerReply::Progress { .. }))
            .collect();
        assert_eq!(replies.len(), slices.len());
        for (reply, slice) in replies.iter().zip(&slices) {
            let WorkerReply::Ok(result) = reply else {
                panic!("worker failed a valid slice: {reply:?}");
            };
            assert_eq!(result, &slice.execute().unwrap());
        }
    }

    #[test]
    fn worker_speaks_the_v2_session_protocol() {
        let slices = partition(&small_sweep(), 1);
        let slice = &slices[0];
        let mut input = String::new();
        for request in [
            WorkerRequest::Hello {
                version: PROTOCOL_VERSION,
            },
            WorkerRequest::CampaignSubmit { campaign: 7 },
            WorkerRequest::Slice(slice.clone()),
            WorkerRequest::Drain,
            WorkerRequest::Shutdown,
        ] {
            input.push_str(&serde_json::to_string(&request).unwrap());
            input.push('\n');
        }
        let mut output = Vec::new();
        run_worker(Cursor::new(input), &mut output).unwrap();
        let replies: Vec<WorkerReply> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|r| !matches!(r, WorkerReply::Progress { .. }))
            .collect();
        assert_eq!(
            replies,
            vec![
                WorkerReply::HelloOk {
                    version: PROTOCOL_VERSION
                },
                WorkerReply::CampaignAck { campaign: 7 },
                WorkerReply::Ok(slice.execute().unwrap()),
                WorkerReply::Drained,
                WorkerReply::Bye,
            ]
        );
    }

    #[test]
    fn worker_exits_cleanly_after_shutdown_ignoring_later_lines() {
        let shutdown = serde_json::to_string(&WorkerRequest::Shutdown).unwrap();
        let input = format!("{shutdown}\nnot json and never read\n");
        let mut output = Vec::new();
        run_worker(Cursor::new(input), &mut output).unwrap();
        let replies: Vec<WorkerReply> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(replies, vec![WorkerReply::Bye]);
    }

    #[test]
    fn v2_framed_slice_and_v1_bare_slice_produce_identical_results() {
        let slices = partition(&small_sweep(), 1);
        let slice = &slices[0];
        let bare = format!("{}\n", serde_json::to_string(slice).unwrap());
        let framed = format!(
            "{}\n",
            serde_json::to_string(&WorkerRequest::Slice(slice.clone())).unwrap()
        );
        let run = |input: String| -> WorkerReply {
            let mut output = Vec::new();
            run_worker(Cursor::new(input), &mut output).unwrap();
            let text = String::from_utf8(output).unwrap();
            text.lines()
                .map(|l| serde_json::from_str(l).unwrap())
                .find(|r| !matches!(r, WorkerReply::Progress { .. }))
                .unwrap()
        };
        assert_eq!(run(bare), run(framed));
    }

    #[test]
    fn zero_interval_worker_heartbeats_every_row_before_the_terminal_reply() {
        let slices = partition(&small_sweep(), 100); // one slice, 2 points
        assert_eq!(slices.len(), 1);
        let slice = &slices[0];
        let input = format!("{}\n", serde_json::to_string(slice).unwrap());
        let mut output = Vec::new();
        run_worker_with(Cursor::new(input), &mut output, Duration::ZERO).unwrap();
        let replies: Vec<WorkerReply> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // One heartbeat per grid point, then the terminal Ok — in order.
        let (beats, terminal) = replies.split_at(replies.len() - 1);
        assert_eq!(beats.len(), slice.len);
        for (i, beat) in beats.iter().enumerate() {
            let WorkerReply::Progress {
                id,
                done,
                total,
                rows_per_sec,
            } = beat
            else {
                panic!("expected a heartbeat, got {beat:?}");
            };
            assert_eq!(*id, slice.id);
            assert_eq!(*done, i + 1);
            assert_eq!(*total, slice.len);
            assert!(rows_per_sec.is_finite() && *rows_per_sec >= 0.0);
        }
        let WorkerReply::Ok(result) = &terminal[0] else {
            panic!("expected the terminal Ok, got {:?}", terminal[0]);
        };
        assert_eq!(result, &slice.execute().unwrap());
    }

    #[test]
    fn heartbeats_keep_a_slow_worker_alive_past_the_silence_timeout() {
        // A hand-rolled worker whose slice takes ~1.2s of wall time —
        // twice the 600ms silence timeout — but heartbeats every 300ms
        // through it: each heartbeat restarts the clock, so the
        // dispatcher must wait for the terminal reply instead of
        // declaring the worker lost (retries are disabled, so a spurious
        // timeout would fail the whole batch).
        let script = concat!(
            "read line; ",
            r#"for i in 1 2 3 4; do "#,
            r#"echo "{\"Progress\":{\"id\":0,\"done\":$i,\"total\":4,\"rows_per_sec\":1.0}}"; "#,
            "sleep 0.3; done; ",
            r#"echo '{"Ok":{"id":0,"start":0,"reports":[]}}'"#,
        );
        let backend = SubprocessBackend::new(vec!["sh".into(), "-c".into(), script.into()], 1)
            .with_timeout(Duration::from_millis(600))
            .with_max_retries(0);
        let jobs = partition(&small_sweep(), 100);
        let mut results = Vec::new();
        backend
            .execute(&jobs, &mut |r| {
                results.push(r);
                Ok(())
            })
            .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, 0);
    }

    #[test]
    fn worker_reports_malformed_and_invalid_jobs_without_dying() {
        let input = "not json\n".to_string();
        let mut output = Vec::new();
        run_worker(Cursor::new(input), &mut output).unwrap();
        let reply: WorkerReply =
            serde_json::from_str(String::from_utf8(output).unwrap().trim()).unwrap();
        let WorkerReply::Err { id, .. } = reply else {
            panic!("malformed job must produce an Err reply");
        };
        assert_eq!(id, u64::MAX);
    }

    #[test]
    fn respawn_backoff_schedule_is_deterministic_per_retry_budget() {
        let (base, cap) = (Duration::from_millis(50), Duration::from_secs(2));
        // The schedule for a retry budget is a pure function of the
        // slice id: recomputing it gives the identical delays.
        let schedule = |seed: u64, budget: usize| -> Vec<Duration> {
            (1..=budget)
                .map(|attempt| respawn_backoff(seed, attempt, base, cap))
                .collect()
        };
        assert_eq!(schedule(42, 6), schedule(42, 6));
        // Every delay sits inside the jitter band of its attempt's
        // capped exponential envelope.
        for seed in [0u64, 42, u64::MAX] {
            for (i, delay) in schedule(seed, 10).iter().enumerate() {
                let envelope = base.saturating_mul(1 << i.min(31)).min(cap);
                assert!(
                    *delay >= envelope / 2 && *delay < envelope.mul_f64(1.5),
                    "seed {seed} attempt {}: {delay:?} outside [{:?}, {:?})",
                    i + 1,
                    envelope / 2,
                    envelope.mul_f64(1.5),
                );
            }
        }
        // The cap binds: deep retries stop growing.
        assert!(respawn_backoff(7, 30, base, cap) < cap.mul_f64(1.5));
        // Different slices jitter apart (anti-stampede), same envelope.
        assert_ne!(schedule(1, 4), schedule(2, 4));
        // Zero base disables the sleep for every attempt.
        assert_eq!(respawn_backoff(9, 3, Duration::ZERO, cap), Duration::ZERO);
    }

    #[test]
    fn empty_worker_command_is_a_spawn_error() {
        let backend = SubprocessBackend::new(vec![], 1);
        let jobs = partition(&small_sweep(), 1);
        let err = backend.execute(&jobs, &mut |_| Ok(())).unwrap_err();
        assert!(matches!(err, GridError::Spawn { .. }), "{err}");
    }

    /// Slices with the given lengths, for scheduling tests (never
    /// executed, so start offsets are immaterial).
    fn sched_jobs(lens: &[usize]) -> Vec<GridSlice> {
        let sweep = small_sweep();
        lens.iter()
            .enumerate()
            .map(|(i, &len)| GridSlice {
                id: i as u64,
                sweep: sweep.clone(),
                start: 0,
                len,
            })
            .collect()
    }

    #[test]
    fn weighted_queue_gives_long_slices_to_fast_workers_and_short_to_slow() {
        let jobs = sched_jobs(&[2, 9, 4, 1]);
        let sched = SchedQueue::new(&jobs, 2);
        sched.record(0, 10.0); // fast: at/above the mean of {10, 1}
        sched.record(1, 1.0); // slow: below the mean
        assert_eq!(sched.pop_for(0, &jobs).unwrap().index, 1); // len 9
        assert_eq!(sched.pop_for(1, &jobs).unwrap().index, 3); // len 1
        assert_eq!(sched.pop_for(0, &jobs).unwrap().index, 2); // len 4
        assert_eq!(sched.pop_for(1, &jobs).unwrap().index, 0); // len 2
        assert!(sched.pop_for(0, &jobs).is_none());
    }

    #[test]
    fn unmeasured_workers_take_the_longest_pending_slice() {
        // No measurements at all: everyone drains longest-first (LPT),
        // with index order breaking length ties deterministically.
        let jobs = sched_jobs(&[3, 3, 3, 7]);
        let sched = SchedQueue::new(&jobs, 2);
        let order: Vec<usize> = (0..4)
            .map(|i| sched.pop_for(i % 2, &jobs).unwrap().index)
            .collect();
        assert_eq!(order, vec![3, 0, 1, 2]);
    }

    #[test]
    fn retried_slices_reenter_the_queue_in_length_order() {
        let jobs = sched_jobs(&[5, 2]);
        let sched = SchedQueue::new(&jobs, 1);
        let first = sched.pop_for(0, &jobs).unwrap();
        assert_eq!(first.index, 0);
        sched.push_retry(
            Attempt {
                index: first.index,
                attempts: 1,
            },
            &jobs,
        );
        // The retried len-5 slice outranks the pending len-2 slice again.
        let again = sched.pop_for(0, &jobs).unwrap();
        assert_eq!((again.index, again.attempts), (0, 1));
        assert_eq!(sched.pop_for(0, &jobs).unwrap().index, 1);
        assert!(sched.pop_for(0, &jobs).is_none());
    }

    #[test]
    fn v1_only_stub_fails_the_pooled_handshake_and_never_enters_the_pool() {
        // Warm reuse with the real binary is covered in
        // tests/grid_exec.rs (CARGO_BIN_EXE is integration-test only);
        // here: a v1-only stub cannot pass the v2 handshake, so the
        // slice burns its retries and the stub is never parked.
        let pool = Arc::new(WorkerPool::new());
        let script = r#"read line; echo '{"Err":{"id":18446744073709551615,"message":"v1 stub"}}'"#;
        let backend = SubprocessBackend::new(vec!["sh".into(), "-c".into(), script.into()], 1)
            .with_backoff(Duration::ZERO, Duration::ZERO)
            .with_timeout(Duration::from_secs(5))
            .with_max_retries(0)
            .with_pool(Arc::clone(&pool));
        let jobs = partition(&small_sweep(), 1);
        let err = backend.execute(&jobs, &mut |_| Ok(())).unwrap_err();
        assert!(matches!(err, GridError::SliceLost { .. }), "{err}");
        // The failed handshake never parks the stub in the pool.
        assert_eq!(pool.idle_workers(), 0);
        assert!(pool.spawns() >= 1);
        assert_eq!(pool.reuses(), 0);
    }
}
