//! Out-of-process slice execution over a newline-delimited JSON protocol.
//!
//! # The worker protocol
//!
//! A worker is any process that reads **one JSON [`GridSlice`] per line**
//! on stdin and writes **one JSON [`WorkerReply`] per line** on stdout,
//! flushing after each reply, until stdin reaches EOF. `hyperroute-grid
//! worker` is exactly [`run_worker`] over locked stdio; anything else
//! (an ssh wrapper, a container entrypoint) can stand in as long as it
//! speaks the same lines, which is why the backend takes a plain argv
//! vector rather than a path.
//!
//! ```text
//! dispatcher → worker:  {"id":3,"sweep":{…},"start":12,"len":4}\n
//! worker → dispatcher:  {"Progress":{"id":3,"done":2,"total":4,"rows_per_sec":1.7}}\n  (zero or more)
//!                       {"Ok":{"id":3,"start":12,"reports":[…]}}\n
//!                       {"Err":{"id":3,"message":"…"}}\n
//! ```
//!
//! While a slice runs, the worker may interleave any number of
//! [`WorkerReply::Progress`] heartbeat lines (throttled to one per
//! [`DEFAULT_HEARTBEAT`]; see [`run_worker_with`]) before the single
//! terminal `Ok`/`Err` line. Each heartbeat restarts the dispatcher's
//! reply timeout, so [`SubprocessBackend::timeout`] bounds worker
//! *silence*, not slice duration — a slow slice on a live, heartbeating
//! worker never times out spuriously.
//!
//! # Fault handling
//!
//! Workers hold no campaign state — a slice is a pure function of its
//! JSON — so every failure mode has the same cure: kill the process,
//! spawn a fresh one, hand the slice to someone else. The dispatcher
//! retries a slice after a crash (stdin/stdout closed), a reply timeout,
//! or a garbled reply, up to [`SubprocessBackend::max_retries`] times;
//! only then does the campaign abort with [`GridError::SliceLost`]. A
//! well-formed [`WorkerReply::Err`] is different: the worker is healthy
//! and the slice itself is bad, so it fails the campaign immediately
//! ([`GridError::SliceFailed`]) instead of burning retries.

use crate::backend::ExecBackend;
use crate::error::GridError;
use crate::slice::{GridSlice, SliceResult};
use hyperroute_desim::splitmix64;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One reply line of the worker protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkerReply {
    /// The slice executed; here are its reports.
    Ok(SliceResult),
    /// The slice failed deterministically (malformed job, invalid
    /// scenario); retrying it elsewhere cannot help.
    Err {
        /// Id of the failing slice (`u64::MAX` when the job line itself
        /// did not parse).
        id: u64,
        /// What went wrong.
        message: String,
    },
    /// Heartbeat for the slice currently executing. A worker may emit
    /// any number of these before the terminal `Ok`/`Err` line; each
    /// one proves the worker is alive and restarts the dispatcher's
    /// reply timeout. Heartbeats never carry results.
    Progress {
        /// Id of the slice being executed.
        id: u64,
        /// Grid points finished so far.
        done: usize,
        /// Grid points in the slice.
        total: usize,
        /// Throughput since the slice started (grid points per wall
        /// second).
        rows_per_sec: f64,
    },
}

/// Minimum wall-clock gap between two [`WorkerReply::Progress`] lines
/// from [`run_worker`] — frequent enough to outrun any sane dispatcher
/// timeout, rare enough to stay invisible in fast campaigns.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_secs(5);

/// Serve the worker side of the protocol until `input` reaches EOF,
/// heartbeating at [`DEFAULT_HEARTBEAT`].
///
/// Every job line in is answered by exactly one **terminal** line out
/// (flushed), so a dispatcher can pipeline jobs without framing
/// ambiguity; long slices additionally interleave throttled
/// [`WorkerReply::Progress`] lines before the terminal reply. IO errors
/// on the streams end the loop — the dispatcher treats a vanished worker
/// as a retryable loss.
pub fn run_worker(input: impl BufRead, output: impl Write) -> std::io::Result<()> {
    run_worker_with(input, output, DEFAULT_HEARTBEAT)
}

/// [`run_worker`] with an explicit heartbeat interval: while a slice
/// executes, a [`WorkerReply::Progress`] line is emitted after any grid
/// point that completes at least `heartbeat` after the previous emission
/// (`Duration::ZERO` beats on every point). Heartbeats are best-effort —
/// a failed heartbeat write is dropped, and a genuinely broken pipe
/// still surfaces on the terminal reply.
pub fn run_worker_with(
    input: impl BufRead,
    mut output: impl Write,
    heartbeat: Duration,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<GridSlice>(&line) {
            Ok(slice) => {
                let id = slice.id;
                let started = Instant::now();
                let mut last_beat = started;
                let outcome = slice.execute_with(&mut |done, total| {
                    if last_beat.elapsed() < heartbeat {
                        return;
                    }
                    last_beat = Instant::now();
                    let secs = started.elapsed().as_secs_f64();
                    let beat = WorkerReply::Progress {
                        id,
                        done,
                        total,
                        rows_per_sec: if secs > 0.0 { done as f64 / secs } else { 0.0 },
                    };
                    let text = serde_json::to_string(&beat).expect("replies always serialise");
                    let _ = writeln!(output, "{text}").and_then(|()| output.flush());
                });
                match outcome {
                    Ok(result) => WorkerReply::Ok(result),
                    Err(e) => WorkerReply::Err {
                        id,
                        message: e.to_string(),
                    },
                }
            }
            Err(e) => WorkerReply::Err {
                id: u64::MAX,
                message: format!("job line does not parse: {e}"),
            },
        };
        let text = serde_json::to_string(&reply).expect("replies always serialise");
        writeln!(output, "{text}")?;
        output.flush()?;
    }
    Ok(())
}

/// Backend that fans slices out to subprocess workers.
///
/// Spawns up to [`SubprocessBackend::workers`] copies of
/// [`SubprocessBackend::worker_cmd`] and feeds each one slice at a time,
/// so grids scale across cores (or, with an ssh/container wrapper as the
/// command, across machines) without sharing memory.
#[derive(Clone, Debug)]
pub struct SubprocessBackend {
    /// argv of the worker command (program first).
    pub worker_cmd: Vec<String>,
    /// Concurrent worker processes (`0` = hardware parallelism, like
    /// [`crate::ThreadPoolBackend`]; clamped to the job count).
    pub workers: usize,
    /// How long a worker may stay *silent* — no terminal reply, no
    /// [`WorkerReply::Progress`] heartbeat — before it is declared lost.
    /// Heartbeats restart this clock, so the bound is on liveness, not
    /// slice duration.
    pub timeout: Duration,
    /// How many times a slice is retried after losing a worker before
    /// the campaign aborts.
    pub max_retries: usize,
    /// First-retry respawn delay (doubles per attempt, jittered ±50%;
    /// see [`respawn_backoff`]). Zero disables the backoff sleep.
    pub backoff_base: Duration,
    /// Ceiling on the un-jittered respawn delay.
    pub backoff_cap: Duration,
}

impl SubprocessBackend {
    /// Backend running `worker_cmd` on `workers` processes, with a
    /// 10-minute per-slice timeout, 2 retries, and a 50 ms–2 s
    /// jittered-exponential respawn backoff.
    pub fn new(worker_cmd: Vec<String>, workers: usize) -> SubprocessBackend {
        SubprocessBackend {
            worker_cmd,
            workers,
            timeout: Duration::from_secs(600),
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }

    /// Backend whose workers are `hyperroute-grid worker` subprocesses of
    /// the currently running binary — the zero-configuration multi-core
    /// path used by the CLI.
    pub fn self_workers(workers: usize) -> Result<SubprocessBackend, GridError> {
        let exe = std::env::current_exe().map_err(|e| GridError::Spawn {
            cmd: "<current_exe>".into(),
            error: e.to_string(),
        })?;
        Ok(SubprocessBackend::new(
            vec![exe.display().to_string(), "worker".into()],
            workers,
        ))
    }

    /// Per-slice timeout (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> SubprocessBackend {
        self.timeout = timeout;
        self
    }

    /// Retry budget per slice (builder style).
    pub fn with_max_retries(mut self, max_retries: usize) -> SubprocessBackend {
        self.max_retries = max_retries;
        self
    }

    /// Respawn backoff envelope (builder style); a zero `base` disables
    /// the sleep entirely.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> SubprocessBackend {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }
}

/// Delay before respawning a worker for retry `attempt` (1-based) of the
/// slice with id `seed`: exponential `base · 2^(attempt-1)` capped at
/// `cap`, then jittered to 50–150% by a [`splitmix64`] draw of
/// `(seed, attempt)`.
///
/// The schedule is a pure function of its arguments — no clocks, no
/// global RNG — so a given slice retries on the same timetable in every
/// campaign run, while different slices (different seeds) spread their
/// respawns apart instead of stampeding a recovering machine together.
pub fn respawn_backoff(seed: u64, attempt: usize, base: Duration, cap: Duration) -> Duration {
    if base.is_zero() || attempt == 0 {
        return Duration::ZERO;
    }
    let doublings = (attempt - 1).min(31) as u32;
    let envelope = base.saturating_mul(1u32 << doublings).min(cap);
    // 53 uniform bits → [0, 1), mapped to a jitter factor in [0.5, 1.5).
    let u = (splitmix64(seed ^ attempt as u64) >> 11) as f64 / (1u64 << 53) as f64;
    envelope.mul_f64(0.5 + u)
}

/// A queue entry: which job, and how many times it has been attempted.
#[derive(Clone, Copy, Debug)]
struct Attempt {
    index: usize,
    attempts: usize,
}

/// What one job round on one worker produced.
enum RoundOutcome {
    /// The slice completed.
    Done(SliceResult),
    /// Unrecoverable (spawn failure, deterministic slice failure).
    Fatal(GridError),
    /// The worker was lost (crash / timeout / garbled reply); the slice
    /// should be retried on a fresh worker.
    Lost(String),
}

/// A live worker process: its stdin plus a channel of stdout lines fed
/// by a detached reader thread (the only way to read with a timeout
/// using std alone).
struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    lines: mpsc::Receiver<String>,
}

impl WorkerProc {
    fn spawn(cmd: &[String]) -> Result<WorkerProc, GridError> {
        let spawn_err = |error: String| GridError::Spawn {
            cmd: cmd.join(" "),
            error,
        };
        let (program, args) = cmd
            .split_first()
            .ok_or_else(|| spawn_err("empty worker command".into()))?;
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| spawn_err(e.to_string()))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let (tx, lines) = mpsc::channel();
        // Detached on purpose: it parks in a blocking read and exits on
        // EOF, which killing the child guarantees.
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        Ok(WorkerProc {
            child,
            stdin,
            lines,
        })
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl SubprocessBackend {
    /// Send one job to (possibly fresh) `proc` and await its reply.
    /// On [`RoundOutcome::Lost`] the caller must discard `proc`.
    fn one_round(&self, slice: &GridSlice, proc: &mut Option<WorkerProc>) -> RoundOutcome {
        if proc.is_none() {
            match WorkerProc::spawn(&self.worker_cmd) {
                Ok(p) => *proc = Some(p),
                Err(e) => return RoundOutcome::Fatal(e),
            }
        }
        let worker = proc.as_mut().expect("spawned above");
        let job_line = serde_json::to_string(slice).expect("slices always serialise");
        if let Err(e) = writeln!(worker.stdin, "{job_line}").and_then(|()| worker.stdin.flush()) {
            return RoundOutcome::Lost(format!("worker stdin closed: {e}"));
        }
        // Heartbeats are keep-alives: each Progress line for the pending
        // slice restarts the timeout, so only true silence is a loss.
        loop {
            return match worker.lines.recv_timeout(self.timeout) {
                Ok(line) => match serde_json::from_str::<WorkerReply>(&line) {
                    Ok(WorkerReply::Progress { id, .. }) if id == slice.id => continue,
                    Ok(WorkerReply::Progress { id, .. }) => RoundOutcome::Lost(format!(
                        "worker heartbeat for slice {id} while slice {} was pending",
                        slice.id
                    )),
                    Ok(WorkerReply::Ok(result)) if result.id == slice.id => {
                        RoundOutcome::Done(result)
                    }
                    Ok(WorkerReply::Ok(result)) => RoundOutcome::Lost(format!(
                        "worker answered slice {} while slice {} was pending",
                        result.id, slice.id
                    )),
                    Ok(WorkerReply::Err { id, message }) => {
                        RoundOutcome::Fatal(GridError::SliceFailed {
                            slice: if id == u64::MAX { slice.id } else { id },
                            message,
                        })
                    }
                    Err(e) => RoundOutcome::Lost(format!("garbled worker reply: {e}")),
                },
                Err(RecvTimeoutError::Timeout) => RoundOutcome::Lost(format!(
                    "no reply or heartbeat within {:.1}s",
                    self.timeout.as_secs_f64()
                )),
                Err(RecvTimeoutError::Disconnected) => {
                    RoundOutcome::Lost("worker exited before replying".into())
                }
            };
        }
    }

    /// One manager loop: own a worker process, pull jobs off the shared
    /// queue, retry lost slices (back onto the queue, so another manager
    /// may pick them up) until the queue drains or the campaign cancels.
    fn manage_worker(
        &self,
        jobs: &[GridSlice],
        queue: &Mutex<Vec<Attempt>>,
        cancelled: &AtomicBool,
        tx: &mpsc::Sender<Result<SliceResult, GridError>>,
    ) {
        let mut proc: Option<WorkerProc> = None;
        loop {
            if cancelled.load(Ordering::Relaxed) {
                break;
            }
            let Some(job) = queue.lock().expect("queue lock").pop() else {
                break;
            };
            match self.one_round(&jobs[job.index], &mut proc) {
                RoundOutcome::Done(result) => {
                    if tx.send(Ok(result)).is_err() {
                        break;
                    }
                }
                RoundOutcome::Fatal(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
                RoundOutcome::Lost(reason) => {
                    proc = None; // drop kills the stale process
                    let attempts = job.attempts + 1;
                    if attempts > self.max_retries {
                        let _ = tx.send(Err(GridError::SliceLost {
                            slice: jobs[job.index].id,
                            attempts,
                            last_error: reason,
                        }));
                        break;
                    }
                    // Back off before the retry reaches a fresh process —
                    // a worker command that dies on startup would
                    // otherwise respawn in a tight fork loop.
                    std::thread::sleep(respawn_backoff(
                        jobs[job.index].id,
                        attempts,
                        self.backoff_base,
                        self.backoff_cap,
                    ));
                    queue.lock().expect("queue lock").push(Attempt {
                        index: job.index,
                        attempts,
                    });
                }
            }
        }
    }
}

impl ExecBackend for SubprocessBackend {
    fn execute(
        &self,
        jobs: &[GridSlice],
        on_result: &mut dyn FnMut(SliceResult) -> Result<(), GridError>,
    ) -> Result<(), GridError> {
        if jobs.is_empty() {
            return Ok(());
        }
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = if self.workers == 0 { hw } else { self.workers }
            .min(jobs.len())
            .max(1);
        let queue = Mutex::new(
            (0..jobs.len())
                .rev() // pop() takes from the back; serve jobs in order
                .map(|index| Attempt { index, attempts: 0 })
                .collect::<Vec<_>>(),
        );
        let cancelled = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<Result<SliceResult, GridError>>();
        std::thread::scope(|scope| -> Result<(), GridError> {
            for _ in 0..workers {
                let tx = tx.clone();
                let queue = &queue;
                let cancelled = &cancelled;
                scope.spawn(move || self.manage_worker(jobs, queue, cancelled, &tx));
            }
            drop(tx);
            let mut received = 0usize;
            for outcome in rx {
                let result = match outcome {
                    Ok(result) => result,
                    Err(e) => {
                        cancelled.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                };
                if let Err(e) = on_result(result) {
                    cancelled.store(true, Ordering::Relaxed);
                    return Err(e);
                }
                received += 1;
                if received == jobs.len() {
                    break;
                }
            }
            if received == jobs.len() {
                Ok(())
            } else {
                // Every manager exited without delivering the full batch
                // (all of them hit fatal sends racing the cancel flag, or
                // the queue drained into failures).
                Err(GridError::Merge(format!(
                    "workers delivered {received} of {} slices",
                    jobs.len()
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::partition;
    use hyperroute_core::scenario::{Axis, Scenario, Sweep, SweepParam, Topology};
    use std::io::Cursor;

    fn small_sweep() -> Sweep {
        let base = Scenario::builder(Topology::Hypercube { dim: 3 })
            .lambda(0.8)
            .p(0.5)
            .horizon(60.0)
            .warmup(10.0)
            .seed(5)
            .build()
            .unwrap();
        Sweep::new(base, vec![Axis::new(SweepParam::Lambda, vec![0.4, 0.8])])
    }

    #[test]
    fn worker_answers_each_job_line() {
        let slices = partition(&small_sweep(), 1);
        let mut input = String::new();
        for s in &slices {
            input.push_str(&serde_json::to_string(s).unwrap());
            input.push('\n');
        }
        let mut output = Vec::new();
        run_worker(Cursor::new(input), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        // Heartbeats are a side channel; only terminal replies frame jobs.
        let replies: Vec<WorkerReply> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|r| !matches!(r, WorkerReply::Progress { .. }))
            .collect();
        assert_eq!(replies.len(), slices.len());
        for (reply, slice) in replies.iter().zip(&slices) {
            let WorkerReply::Ok(result) = reply else {
                panic!("worker failed a valid slice: {reply:?}");
            };
            assert_eq!(result, &slice.execute().unwrap());
        }
    }

    #[test]
    fn zero_interval_worker_heartbeats_every_row_before_the_terminal_reply() {
        let slices = partition(&small_sweep(), 100); // one slice, 2 points
        assert_eq!(slices.len(), 1);
        let slice = &slices[0];
        let input = format!("{}\n", serde_json::to_string(slice).unwrap());
        let mut output = Vec::new();
        run_worker_with(Cursor::new(input), &mut output, Duration::ZERO).unwrap();
        let replies: Vec<WorkerReply> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // One heartbeat per grid point, then the terminal Ok — in order.
        let (beats, terminal) = replies.split_at(replies.len() - 1);
        assert_eq!(beats.len(), slice.len);
        for (i, beat) in beats.iter().enumerate() {
            let WorkerReply::Progress {
                id,
                done,
                total,
                rows_per_sec,
            } = beat
            else {
                panic!("expected a heartbeat, got {beat:?}");
            };
            assert_eq!(*id, slice.id);
            assert_eq!(*done, i + 1);
            assert_eq!(*total, slice.len);
            assert!(rows_per_sec.is_finite() && *rows_per_sec >= 0.0);
        }
        let WorkerReply::Ok(result) = &terminal[0] else {
            panic!("expected the terminal Ok, got {:?}", terminal[0]);
        };
        assert_eq!(result, &slice.execute().unwrap());
    }

    #[test]
    fn heartbeats_keep_a_slow_worker_alive_past_the_silence_timeout() {
        // A hand-rolled worker whose slice takes ~1.2s of wall time —
        // twice the 600ms silence timeout — but heartbeats every 300ms
        // through it: each heartbeat restarts the clock, so the
        // dispatcher must wait for the terminal reply instead of
        // declaring the worker lost (retries are disabled, so a spurious
        // timeout would fail the whole batch).
        let script = concat!(
            "read line; ",
            r#"for i in 1 2 3 4; do "#,
            r#"echo "{\"Progress\":{\"id\":0,\"done\":$i,\"total\":4,\"rows_per_sec\":1.0}}"; "#,
            "sleep 0.3; done; ",
            r#"echo '{"Ok":{"id":0,"start":0,"reports":[]}}'"#,
        );
        let backend = SubprocessBackend::new(vec!["sh".into(), "-c".into(), script.into()], 1)
            .with_timeout(Duration::from_millis(600))
            .with_max_retries(0);
        let jobs = partition(&small_sweep(), 100);
        let mut results = Vec::new();
        backend
            .execute(&jobs, &mut |r| {
                results.push(r);
                Ok(())
            })
            .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, 0);
    }

    #[test]
    fn worker_reports_malformed_and_invalid_jobs_without_dying() {
        let input = "not json\n".to_string();
        let mut output = Vec::new();
        run_worker(Cursor::new(input), &mut output).unwrap();
        let reply: WorkerReply =
            serde_json::from_str(String::from_utf8(output).unwrap().trim()).unwrap();
        let WorkerReply::Err { id, .. } = reply else {
            panic!("malformed job must produce an Err reply");
        };
        assert_eq!(id, u64::MAX);
    }

    #[test]
    fn respawn_backoff_schedule_is_deterministic_per_retry_budget() {
        let (base, cap) = (Duration::from_millis(50), Duration::from_secs(2));
        // The schedule for a retry budget is a pure function of the
        // slice id: recomputing it gives the identical delays.
        let schedule = |seed: u64, budget: usize| -> Vec<Duration> {
            (1..=budget)
                .map(|attempt| respawn_backoff(seed, attempt, base, cap))
                .collect()
        };
        assert_eq!(schedule(42, 6), schedule(42, 6));
        // Every delay sits inside the jitter band of its attempt's
        // capped exponential envelope.
        for seed in [0u64, 42, u64::MAX] {
            for (i, delay) in schedule(seed, 10).iter().enumerate() {
                let envelope = base.saturating_mul(1 << i.min(31)).min(cap);
                assert!(
                    *delay >= envelope / 2 && *delay < envelope.mul_f64(1.5),
                    "seed {seed} attempt {}: {delay:?} outside [{:?}, {:?})",
                    i + 1,
                    envelope / 2,
                    envelope.mul_f64(1.5),
                );
            }
        }
        // The cap binds: deep retries stop growing.
        assert!(respawn_backoff(7, 30, base, cap) < cap.mul_f64(1.5));
        // Different slices jitter apart (anti-stampede), same envelope.
        assert_ne!(schedule(1, 4), schedule(2, 4));
        // Zero base disables the sleep for every attempt.
        assert_eq!(respawn_backoff(9, 3, Duration::ZERO, cap), Duration::ZERO);
    }

    #[test]
    fn empty_worker_command_is_a_spawn_error() {
        let backend = SubprocessBackend::new(vec![], 1);
        let jobs = partition(&small_sweep(), 1);
        let err = backend.execute(&jobs, &mut |_| Ok(())).unwrap_err();
        assert!(matches!(err, GridError::Spawn { .. }), "{err}");
    }
}
