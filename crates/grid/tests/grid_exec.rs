//! End-to-end tests of the sharded execution engine.
//!
//! The load-bearing guarantees proved here:
//!
//! * **Differential**: thread-pool and subprocess backends, at any worker
//!   count and slice length, produce a `Vec<Report>` *byte-identical*
//!   (compared as serialised JSON, on top of the bit-exact `PartialEq`)
//!   to in-process `Sweep::run`.
//! * **Kill and resume**: a campaign aborted mid-flight resumes from its
//!   checkpoint directory recomputing only the unfinished slices.
//! * **Fault handling**: a crashed worker's slice is retried on a fresh
//!   process; an unresponsive worker times out and, once the retry
//!   budget is spent, fails the campaign instead of hanging it.
//! * **Sweep edge cases**: empty axes and single-point grids behave
//!   identically across every execution path.

use hyperroute_core::scenario::{Axis, Report, Scenario, Sweep, SweepParam, Topology};
use hyperroute_grid::{
    partition, Campaign, ExecBackend, GridError, GridSlice, MemoryCache, ReportCache, ServiceReply,
    ServiceRequest, SliceResult, SubprocessBackend, ThreadPoolBackend, WorkerPool,
};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Path of the real worker binary Cargo built for this test run.
fn grid_bin() -> String {
    env!("CARGO_BIN_EXE_hyperroute-grid").to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hyperroute-grid-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn hypercube_sweep() -> Sweep {
    let base = Scenario::builder(Topology::Hypercube { dim: 3 })
        .lambda(0.8)
        .p(0.5)
        .horizon(80.0)
        .warmup(20.0)
        .seed(41)
        .build()
        .unwrap();
    Sweep::new(
        base,
        vec![
            Axis::new(SweepParam::Lambda, vec![0.5, 1.0, 1.5]),
            Axis::new(SweepParam::P, vec![0.25, 0.75]),
        ],
    )
}

fn butterfly_sweep() -> Sweep {
    let base = Scenario::builder(Topology::Butterfly { dim: 3 })
        .lambda(0.6)
        .horizon(80.0)
        .warmup(20.0)
        .seed(17)
        .build()
        .unwrap();
    Sweep::new(
        base,
        vec![Axis::new(SweepParam::Lambda, vec![0.4, 0.8, 1.2])],
    )
}

/// The fifth topology through the same machinery: a Dim axis on a ring
/// sweeps its node count.
fn ring_sweep() -> Sweep {
    let base = Scenario::builder(Topology::Ring {
        nodes: 8,
        bidirectional: true,
    })
    .lambda(0.12)
    .horizon(80.0)
    .warmup(20.0)
    .seed(53)
    .build()
    .unwrap();
    Sweep::new(
        base,
        vec![
            Axis::new(SweepParam::Dim, vec![8.0, 12.0]),
            Axis::new(SweepParam::Lambda, vec![0.08, 0.16]),
        ],
    )
}

/// Byte-level report comparison: JSON text equality is stricter than any
/// tolerance and exactly what the corpus gate stores.
fn as_json(reports: &[Report]) -> String {
    serde_json::to_string(&reports.to_vec()).unwrap()
}

#[test]
fn thread_pool_byte_identical_to_sweep_run_for_1_2_8_workers() {
    for sweep in [hypercube_sweep(), butterfly_sweep(), ring_sweep()] {
        let direct = sweep.run(1).unwrap();
        for workers in [1, 2, 8] {
            for slice_len in [1, 4] {
                let got = Campaign::new(sweep.clone(), slice_len)
                    .run(&ThreadPoolBackend::new(workers))
                    .unwrap();
                assert_eq!(got, direct, "workers={workers} slice_len={slice_len}");
                assert_eq!(
                    as_json(&got),
                    as_json(&direct),
                    "JSON bytes differ at workers={workers} slice_len={slice_len}"
                );
            }
        }
    }
}

#[test]
fn subprocess_byte_identical_to_sweep_run_for_1_2_8_workers() {
    let sweep = hypercube_sweep();
    let direct = sweep.run(1).unwrap();
    for workers in [1, 2, 8] {
        let backend = SubprocessBackend::new(vec![grid_bin(), "worker".into()], workers);
        let got = Campaign::new(sweep.clone(), 2).run(&backend).unwrap();
        assert_eq!(got, direct, "workers={workers}");
        assert_eq!(as_json(&got), as_json(&direct), "workers={workers}");
    }
}

#[test]
fn subprocess_byte_identical_for_ring_sweep() {
    // The new topology crosses the process boundary (scenario JSON in,
    // report JSON out) bit-exactly, like the paper's topologies.
    let sweep = ring_sweep();
    let direct = sweep.run(1).unwrap();
    let backend = SubprocessBackend::new(vec![grid_bin(), "worker".into()], 2);
    let got = Campaign::new(sweep, 2).run(&backend).unwrap();
    assert_eq!(got, direct);
    assert_eq!(as_json(&got), as_json(&direct));
}

/// Backend adapter that delivers `limit` results and then reports the
/// process as dead — the observable behaviour of a kill arriving between
/// two checkpoint writes.
struct AbortAfter<B> {
    inner: B,
    limit: usize,
}

impl<B: ExecBackend> ExecBackend for AbortAfter<B> {
    fn execute(
        &self,
        jobs: &[GridSlice],
        on_result: &mut dyn FnMut(SliceResult) -> Result<(), GridError>,
    ) -> Result<(), GridError> {
        let mut delivered = 0usize;
        self.inner.execute(jobs, &mut |result| {
            if delivered == self.limit {
                return Err(GridError::Merge("simulated kill".into()));
            }
            on_result(result)?;
            delivered += 1;
            Ok(())
        })
    }
}

/// Backend adapter counting how many slices the campaign actually hands
/// to the executor.
struct Counting<'a, B> {
    inner: B,
    executed: &'a AtomicUsize,
}

impl<B: ExecBackend> ExecBackend for Counting<'_, B> {
    fn execute(
        &self,
        jobs: &[GridSlice],
        on_result: &mut dyn FnMut(SliceResult) -> Result<(), GridError>,
    ) -> Result<(), GridError> {
        self.executed.fetch_add(jobs.len(), Ordering::Relaxed);
        self.inner.execute(jobs, on_result)
    }
}

#[test]
fn kill_and_resume_recomputes_only_unfinished_slices() {
    let sweep = hypercube_sweep(); // 6 points → 6 slices at slice_len 1
    let direct = sweep.run(1).unwrap();
    let dir = temp_dir("kill-resume");
    let campaign = Campaign::new(sweep, 1).with_checkpoint(&dir);

    // Phase 1: die after 2 checkpointed slices.
    let err = campaign
        .run(&AbortAfter {
            inner: ThreadPoolBackend::new(1),
            limit: 2,
        })
        .unwrap_err();
    assert!(matches!(err, GridError::Merge(_)));
    let checkpointed = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            let name = e.as_ref().unwrap().file_name();
            name.to_string_lossy().starts_with("slice_")
        })
        .count();
    assert_eq!(checkpointed, 2, "exactly the delivered slices persist");

    // Phase 2: resume — only the 4 unfinished slices may execute.
    let executed = AtomicUsize::new(0);
    let got = campaign
        .run(&Counting {
            inner: ThreadPoolBackend::new(2),
            executed: &executed,
        })
        .unwrap();
    assert_eq!(executed.load(Ordering::Relaxed), 4);
    assert_eq!(got, direct);
    assert_eq!(as_json(&got), as_json(&direct));

    // Phase 3: a fully-checkpointed campaign recomputes nothing, even on
    // the subprocess backend.
    let executed = AtomicUsize::new(0);
    let again = campaign
        .run(&Counting {
            inner: SubprocessBackend::new(vec![grid_bin(), "worker".into()], 2),
            executed: &executed,
        })
        .unwrap();
    assert_eq!(executed.load(Ordering::Relaxed), 0);
    assert_eq!(again, direct);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crashed_worker_slice_is_retried_on_a_fresh_process() {
    // First spawn: consume one job and exit without replying (a crash).
    // Every later spawn: the real worker. The campaign must still produce
    // byte-identical output.
    let dir = temp_dir("flaky");
    let marker = dir.join("crashed-once");
    let script = format!(
        "if [ ! -e {m} ]; then : > {m}; head -n 1 > /dev/null; exit 0; fi; exec {bin} worker",
        m = marker.display(),
        bin = grid_bin()
    );
    let sweep = hypercube_sweep();
    let direct = sweep.run(1).unwrap();
    let backend =
        SubprocessBackend::new(vec!["sh".into(), "-c".into(), script], 1).with_max_retries(2);
    let got = Campaign::new(sweep, 3).run(&backend).unwrap();
    assert!(marker.exists(), "the flaky first worker did run");
    assert_eq!(got, direct);
    assert_eq!(as_json(&got), as_json(&direct));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unresponsive_worker_times_out_and_exhausts_retries() {
    // A worker that swallows jobs forever: every attempt times out, and
    // after the retry budget the campaign aborts with SliceLost instead
    // of hanging.
    let sweep = Sweep::new(
        Scenario::builder(Topology::Hypercube { dim: 3 })
            .horizon(40.0)
            .warmup(10.0)
            .build()
            .unwrap(),
        vec![Axis::new(SweepParam::Lambda, vec![0.5])],
    );
    let backend =
        SubprocessBackend::new(vec!["sh".into(), "-c".into(), "cat > /dev/null".into()], 1)
            .with_timeout(Duration::from_millis(150))
            .with_max_retries(1);
    let err = Campaign::new(sweep, 1).run(&backend).unwrap_err();
    let GridError::SliceLost {
        slice, attempts, ..
    } = err
    else {
        panic!("expected SliceLost, got {err:?}");
    };
    assert_eq!(slice, 0);
    assert_eq!(attempts, 2, "one original attempt + one retry");
}

// ---------------------------------------------------------------------
// Sweep edge cases under the new backends.
// ---------------------------------------------------------------------

#[test]
fn empty_axis_yields_empty_grid_on_every_path() {
    let base = hypercube_sweep().base;
    let sweep = Sweep::new(
        base,
        vec![
            Axis::new(SweepParam::Lambda, vec![0.5, 1.0]),
            Axis::new(SweepParam::P, vec![]), // empties the whole grid
        ],
    );
    assert!(sweep.is_empty());
    assert_eq!(sweep.len(), 0);
    assert!(sweep.run(4).unwrap().is_empty());
    assert!(partition(&sweep, 3).is_empty());
    assert!(Campaign::new(sweep.clone(), 3)
        .run(&ThreadPoolBackend::new(4))
        .unwrap()
        .is_empty());
    assert!(Campaign::new(sweep, 3)
        .run(&SubprocessBackend::new(
            vec![grid_bin(), "worker".into()],
            2
        ))
        .unwrap()
        .is_empty());
}

#[test]
fn single_point_grid_is_identical_on_every_path() {
    let base = hypercube_sweep().base;
    let sweep = Sweep::new(base, vec![Axis::new(SweepParam::Lambda, vec![1.1])]);
    assert_eq!(sweep.len(), 1);
    let direct = sweep.run(1).unwrap();
    // The single point still gets a derived (not base) seed.
    assert_eq!(sweep.scenario_at(0).unwrap().run.seed, sweep.seed_for(0));
    for workers in [1, 2, 8] {
        let threads = Campaign::new(sweep.clone(), 5)
            .run(&ThreadPoolBackend::new(workers))
            .unwrap();
        assert_eq!(threads, direct);
        let sub = Campaign::new(sweep.clone(), 5)
            .run(&SubprocessBackend::new(
                vec![grid_bin(), "worker".into()],
                workers,
            ))
            .unwrap();
        assert_eq!(sub, direct);
        assert_eq!(as_json(&sub), as_json(&direct));
    }
}

// ---------------------------------------------------------------------
// Grid v2: warm worker pools and the content-addressed report cache.
// ---------------------------------------------------------------------

#[test]
fn cold_warm_and_cached_paths_byte_identical_at_1_2_8_workers() {
    // The three execution paths a campaign can take under the sweep
    // service — cold subprocess, warm-pooled subprocess, and cache-backed
    // — must all reproduce in-process `Sweep::run` to the byte.
    let sweep = hypercube_sweep();
    let direct = sweep.run(1).unwrap();
    for workers in [1, 2, 8] {
        // Cold: fresh processes per campaign (the pre-v2 behaviour).
        let cold = Campaign::new(sweep.clone(), 2)
            .run(&SubprocessBackend::new(
                vec![grid_bin(), "worker".into()],
                workers,
            ))
            .unwrap();
        assert_eq!(as_json(&cold), as_json(&direct), "cold workers={workers}");

        // Warm: same campaign through a worker pool (protocol v2).
        let pool = Arc::new(WorkerPool::new());
        let warm_backend = SubprocessBackend::new(vec![grid_bin(), "worker".into()], workers)
            .with_pool(Arc::clone(&pool));
        let warm = Campaign::new(sweep.clone(), 2).run(&warm_backend).unwrap();
        assert_eq!(as_json(&warm), as_json(&direct), "warm workers={workers}");

        // Cached: run the pooled campaign again through a cache, twice.
        let cache = MemoryCache::new(64);
        let first = Campaign::new(sweep.clone(), 2)
            .run_cached(&warm_backend, &cache)
            .unwrap();
        let second = Campaign::new(sweep.clone(), 2)
            .run_cached(&warm_backend, &cache)
            .unwrap();
        assert_eq!(as_json(&first), as_json(&direct), "cache-miss pass");
        assert_eq!(as_json(&second), as_json(&direct), "cache-hit pass");
        let stats = cache.stats();
        assert_eq!(
            stats.hits as usize,
            sweep.len(),
            "second pass must be all hits (workers={workers}): {stats:?}"
        );
        pool.shutdown();
    }
}

#[test]
fn warm_pool_reuses_real_workers_across_campaigns() {
    // Two campaigns against one pool: the second must be served by the
    // processes the first spawned, not by new ones.
    let sweep = hypercube_sweep();
    let direct = sweep.run(1).unwrap();
    let pool = Arc::new(WorkerPool::new());
    let backend =
        SubprocessBackend::new(vec![grid_bin(), "worker".into()], 2).with_pool(Arc::clone(&pool));

    let first = Campaign::new(sweep.clone(), 2).run(&backend).unwrap();
    assert_eq!(as_json(&first), as_json(&direct));
    let spawned = pool.spawns();
    assert!(spawned >= 1, "first campaign must spawn workers");
    assert!(pool.idle_workers() >= 1, "workers must park, not die");

    let second = Campaign::new(sweep, 2).run(&backend).unwrap();
    assert_eq!(as_json(&second), as_json(&direct));
    assert!(
        pool.reuses() >= 1,
        "second campaign must reuse parked workers (spawns {spawned} -> {})",
        pool.spawns()
    );
    pool.shutdown();
    assert_eq!(pool.idle_workers(), 0, "shutdown drains the pool");
}

// ---------------------------------------------------------------------
// CLI surface.
// ---------------------------------------------------------------------

#[test]
fn cli_run_executes_a_sweep_file_with_checkpoints() {
    let dir = temp_dir("cli-run");
    let sweep = butterfly_sweep();
    let direct = sweep.run(1).unwrap();
    let sweep_path = dir.join("sweep.json");
    std::fs::write(&sweep_path, serde_json::to_string_pretty(&sweep).unwrap()).unwrap();
    let out_path = dir.join("reports.json");
    let status = std::process::Command::new(grid_bin())
        .args([
            "run",
            "--sweep",
            sweep_path.to_str().unwrap(),
            "--backend",
            "subprocess",
            "--workers",
            "2",
            "--slice-len",
            "2",
            "--checkpoint",
            dir.join("ckpt").to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());
    let reports: Vec<Report> =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert_eq!(reports, direct);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cli_serve_streams_reports_and_caches_resubmission() {
    // The full service loop over the real binary: submit a campaign as
    // one NDJSON line, stream its reports back, resubmit the identical
    // campaign, and require that the second submission is served
    // entirely from the report cache (zero new simulations).
    let sweep = butterfly_sweep();
    let direct = sweep.run(1).unwrap();
    let mut child = std::process::Command::new(grid_bin())
        .args(["serve", "--backend", "subprocess", "--workers", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut ask = |req: &ServiceRequest| {
        let mut line = serde_json::to_string(req).unwrap();
        line.push('\n');
        stdin.write_all(line.as_bytes()).unwrap();
        stdin.flush().unwrap();
    };
    fn collect_results(
        lines: &mut impl Iterator<Item = std::io::Result<String>>,
        campaign: u64,
    ) -> Vec<Report> {
        let mut reports: Vec<Report> = Vec::new();
        loop {
            let line = lines.next().expect("service closed mid-stream").unwrap();
            match serde_json::from_str::<ServiceReply>(&line).unwrap() {
                ServiceReply::Report {
                    campaign: c,
                    index,
                    report,
                } => {
                    assert_eq!(c, campaign);
                    assert_eq!(index, reports.len(), "reports stream in grid order");
                    reports.push(report);
                }
                ServiceReply::ResultsDone {
                    campaign: c,
                    points,
                } => {
                    assert_eq!(c, campaign);
                    assert_eq!(points, reports.len());
                    return reports;
                }
                other => panic!("unexpected reply in result stream: {other:?}"),
            }
        }
    }

    for pass in 0..2u64 {
        ask(&ServiceRequest::Submit {
            sweep: sweep.clone(),
            slice_len: 0,
        });
        let line = lines.next().unwrap().unwrap();
        let ServiceReply::Accepted { campaign } = serde_json::from_str(&line).unwrap() else {
            panic!("expected Accepted, got {line}");
        };
        assert_eq!(campaign, pass);
        ask(&ServiceRequest::Results { campaign });
        let reports = collect_results(&mut lines, campaign);
        assert_eq!(as_json(&reports), as_json(&direct), "pass {pass}");
    }

    ask(&ServiceRequest::Shutdown);
    let line = lines.next().unwrap().unwrap();
    assert_eq!(
        serde_json::from_str::<ServiceReply>(&line).unwrap(),
        ServiceReply::Bye
    );
    drop(stdin);
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success());
    // The service's exit summary proves the second pass was pure cache:
    // one miss+insert per grid point, then one hit per grid point.
    let stderr = String::from_utf8_lossy(&output.stderr);
    let expect = format!("cache {n} hits / {n} misses / {n} inserts", n = sweep.len());
    assert!(
        stderr.contains(&expect),
        "expected `{expect}` in serve summary:\n{stderr}"
    );
}

#[test]
fn cli_checked_in_corpus_matches_baselines() {
    // The regression gate itself: the repository's scenario corpus must
    // reproduce its checked-in baselines bit-exactly.
    let repo_scenarios = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let output = std::process::Command::new(grid_bin())
        .args(["run-corpus", "--scenarios", repo_scenarios])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "corpus gate failed:\n{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}
