//! Property tests of the content-addressed cache key: **representation
//! never matters, semantics always do**.
//!
//! The report cache's whole correctness argument is that
//! [`CacheKey::for_scenario`] hashes the scenario's *canonical* form —
//! so two JSON files that spell the same simulation differently (field
//! order, explicit `null` optionals, float formatting) must collide on
//! one key, while any change that could alter a single report byte
//! (λ, p, seed, horizon, topology size, intra-run `workers`, …) must
//! produce a different key. A false split only costs a re-simulation;
//! a false merge silently serves the wrong report, which is why the
//! separating direction gets a per-field sweep.

use hyperroute_core::scenario::{Scenario, Topology};
use hyperroute_grid::CacheKey;
use proptest::prelude::*;
use serde_json::Value;
use std::num::NonZeroUsize;

/// A valid scenario drawn from the sampled knobs (hypercube keeps every
/// field below meaningful — butterflies ignore `scheme`, say).
fn scenario(
    dim: usize,
    lambda: f64,
    p: f64,
    horizon: f64,
    warmup_frac: f64,
    seed: u64,
    workers: usize,
) -> Scenario {
    let mut s = Scenario::builder(Topology::Hypercube { dim })
        .lambda(lambda)
        .p(p)
        .horizon(horizon)
        .warmup(horizon * warmup_frac)
        .seed(seed)
        .build()
        .expect("sampled scenario must validate");
    s.run.workers = NonZeroUsize::new(workers).filter(|w| w.get() > 1);
    s
}

fn key(s: &Scenario) -> CacheKey {
    CacheKey::for_scenario(s)
}

/// Render `value` as JSON text with every object's fields in *reverse*
/// order — same document, different bytes. Floats use Rust's shortest
/// round-tripping `Display`, deliberately not the canonical writer's
/// formatting, so number spelling varies too.
fn render_reversed(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&x.to_string()),
        Value::String(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_reversed(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (name, field)) in fields.iter().rev().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(name);
                out.push_str("\":");
                render_reversed(field, out);
            }
            out.push('}');
        }
    }
}

/// Push an explicit `"name": null` onto the named top-level section.
fn add_null_field(doc: &mut Value, section: &str, name: &str) {
    let Value::Object(top) = doc else {
        panic!("scenario JSON must be an object")
    };
    let sec = top
        .iter_mut()
        .find(|(k, _)| k == section)
        .unwrap_or_else(|| panic!("no `{section}` section"));
    let Value::Object(fields) = &mut sec.1 else {
        panic!("`{section}` must be an object")
    };
    assert!(
        !fields.iter().any(|(k, _)| k == name),
        "`{section}.{name}` unexpectedly present; pick an absent optional"
    );
    fields.push((name.to_string(), Value::Null));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reversed field order + non-canonical number spelling: same key.
    #[test]
    fn json_field_order_and_number_spelling_never_change_the_key(
        dim in 2usize..9,
        lambda in 0.05f64..1.2,
        p in 0.05f64..0.95,
        horizon in 50.0f64..500.0,
        warmup_frac in 0.0f64..0.5,
        seed in any::<u64>(),
        workers in 1usize..5,
    ) {
        let s = scenario(dim, lambda, p, horizon, warmup_frac, seed, workers);
        let canonical = s.to_json();
        let doc = serde_json::parse(&canonical).expect("canonical JSON parses");

        let mut scrambled = String::new();
        render_reversed(&doc, &mut scrambled);
        prop_assert_ne!(
            &scrambled, &canonical,
            "reversal should produce different bytes"
        );

        let reparsed = Scenario::from_json(&scrambled)
            .expect("scrambled spelling still parses");
        prop_assert_eq!(key(&reparsed), key(&s));
    }

    /// `"workers": null` / `"stretch": null` spell the same scenario as
    /// leaving the keys out entirely; the key must not see the difference.
    #[test]
    fn explicit_null_optionals_hash_like_absent_ones(
        dim in 2usize..9,
        lambda in 0.05f64..1.2,
        seed in any::<u64>(),
    ) {
        let s = scenario(dim, lambda, 0.5, 100.0, 0.2, seed, 1);
        let mut doc = serde_json::parse(&s.to_json()).unwrap();
        add_null_field(&mut doc, "run", "workers");
        add_null_field(&mut doc, "workload", "stretch");
        let mut text = String::new();
        render_reversed(&doc, &mut text);
        let reparsed = Scenario::from_json(&text).unwrap();
        prop_assert_eq!(key(&reparsed), key(&s));
    }

    /// Every semantic knob separates: change exactly one field, get a
    /// new key. `workers` is on the list on purpose — sharding is
    /// byte-identical by design, but the fingerprint treats it as part
    /// of the contract under test, never to be assumed.
    #[test]
    fn any_single_semantic_change_changes_the_key(
        dim in 2usize..8,
        lambda in 0.05f64..1.0,
        p in 0.1f64..0.9,
        horizon in 50.0f64..400.0,
        seed in any::<u64>(),
        workers in 1usize..4,
    ) {
        let base = scenario(dim, lambda, p, horizon, 0.25, seed, workers);
        let k0 = key(&base);

        let mutations: Vec<(&str, Scenario)> = vec![
            ("dim", scenario(dim + 1, lambda, p, horizon, 0.25, seed, workers)),
            ("lambda", scenario(dim, lambda + 0.01, p, horizon, 0.25, seed, workers)),
            ("p", scenario(dim, lambda, p + 0.01, horizon, 0.25, seed, workers)),
            ("horizon", scenario(dim, lambda, p, horizon + 1.0, 0.25, seed, workers)),
            ("seed", scenario(dim, lambda, p, horizon, 0.25, seed ^ 1, workers)),
            ("workers", scenario(dim, lambda, p, horizon, 0.25, seed, workers + 1)),
            ("drain", {
                let mut s = base.clone();
                s.run.drain = !s.run.drain;
                s
            }),
            ("warmup", {
                let mut s = base.clone();
                s.run.warmup += 1.0;
                s
            }),
        ];
        for (what, mutated) in &mutations {
            prop_assert_ne!(
                key(mutated), k0,
                "changing `{}` left the cache key unchanged", what
            );
        }

        // And the keys of distinct mutations are themselves distinct —
        // the hash is not collapsing everything onto two values.
        let mut keys: Vec<u128> = mutations.iter().map(|(_, m)| key(m).0 .0).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), mutations.len());
    }
}
