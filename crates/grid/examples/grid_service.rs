//! A resident sweep service fed three campaigns, exercising every Grid
//! v2 surface: warm subprocess workers, the content-addressed report
//! cache, and the submit/status/results API.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p hyperroute-grid --example grid_service
//! ```
//!
//! The example submits a hypercube delay-vs-λ sweep, an overlapping
//! wider sweep (partial cache hits), and then the first sweep again
//! (pure cache hits, zero simulation), printing the cache and pool
//! counters after each campaign. The same protocol is available over
//! stdio NDJSON via `hyperroute-grid serve`.

use hyperroute_core::scenario::{Axis, Scenario, Sweep, SweepParam, Topology};
use hyperroute_grid::{CampaignState, MemoryCache, ServiceConfig, SweepService};
use std::sync::Arc;

fn sweep(lambdas: &[f64]) -> Sweep {
    let base = Scenario::builder(Topology::Hypercube { dim: 6 })
        .lambda(0.8)
        .p(0.5)
        .horizon(150.0)
        .warmup(30.0)
        .seed(97)
        .build()
        .expect("base scenario validates");
    Sweep::new(base, vec![Axis::new(SweepParam::Lambda, lambdas.to_vec())])
}

fn main() {
    // One point per slice gives exact per-point caching; workers: 0
    // sizes the fleet to the host. Swap `worker_cmd` for
    // `Some(vec!["ssh".into(), "box".into(), "hyperroute-grid".into(),
    // "worker".into()])` to run the same campaigns on a remote fleet.
    let service = SweepService::new(
        ServiceConfig {
            slice_len: 1,
            workers: 0,
            worker_cmd: None,
            queue_capacity: 8,
        },
        Arc::new(MemoryCache::new(1024)),
    );

    let campaigns: [(&str, &[f64]); 3] = [
        ("delay vs λ", &[0.4, 0.8, 1.2]),
        ("wider grid (overlaps)", &[0.4, 0.6, 0.8, 1.0, 1.2]),
        ("resubmitted (all cached)", &[0.4, 0.8, 1.2]),
    ];
    for (label, lambdas) in campaigns {
        let before = service.cache_stats();
        let id = service.submit(sweep(lambdas), 0).expect("queue has room");
        match service.wait(id) {
            CampaignState::Done { points } => {
                let reports = service.results(id).expect("done campaign has results");
                let stats = service.cache_stats();
                println!(
                    "campaign {id} ({label}): {points} points, \
                     {hits} served from cache, {sims} simulated",
                    hits = stats.hits - before.hits,
                    sims = stats.misses - before.misses,
                );
                for (report, lambda) in reports.iter().zip(lambdas) {
                    println!("  λ={lambda:<4} mean delay {:.3}", report.delay.mean);
                }
            }
            state => panic!("campaign {id} did not finish: {state:?}"),
        }
    }

    let stats = service.cache_stats();
    println!(
        "totals: {} hits / {} misses / {} inserts — the third campaign \
         simulated nothing",
        stats.hits, stats.misses, stats.inserts
    );
    service.shutdown();
}
