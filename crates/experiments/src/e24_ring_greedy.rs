//! E24 — beyond the paper: greedy routing in rings (the *Papillon*
//! direction), as the proof that the simulation core is topology-generic.
//!
//! The ring's analogue of the paper's program: uniform destinations give
//! mean greedy path `(n-1)/2` (clockwise-only) or `≈ n/4` (bidirectional),
//! the per-arc load factor is `ρ_ring = λ·E[hops per direction]`, and the
//! system is stable exactly while `ρ_ring < 1` — measured here with the
//! same engine, sweep machinery and stability probes as E01–E23, via a
//! `Sweep` whose `Dim` axis varies the ring size.

use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::scenario::{Axis, Sweep, SweepParam};
use hyperroute_core::stability::probe_ring;
use hyperroute_core::{Scenario, Topology};

/// Delay and mean-hops vs ring size (both variants), plus the stability
/// frontier at the ring's capacity bound.
pub fn run(scale: Scale) -> Table {
    let sizes: Vec<f64> = match scale {
        Scale::Quick => vec![8.0, 16.0],
        Scale::Full => vec![8.0, 16.0, 32.0, 64.0],
    };
    let horizon = scale.horizon(6_000.0);

    let mut t = Table::new(
        "E24 (beyond the paper) — greedy routing in rings: delay, hops, and the ρ_ring < 1 frontier",
        &[
            "n",
            "variant",
            "rho_ring",
            "E[hops]",
            "hops_meas",
            "delay",
            "stable@rho",
            "unstable@1.2rho",
        ],
    );

    for bidirectional in [false, true] {
        // One declarative sweep per variant: the Dim axis is the ring
        // size, every point at a fixed per-arc load of ~0.7.
        let base = Scenario::builder(Topology::Ring {
            nodes: 8,
            bidirectional,
        })
        .lambda(0.1) // placeholder; per-point λ set below via rho target
        .horizon(horizon)
        .warmup(horizon * 0.15)
        .seed(0xE24)
        .build()
        .expect("valid scenario");
        let sweep = Sweep::new(base, vec![Axis::new(SweepParam::Dim, sizes.clone())]);
        for (i, mut scenario) in sweep
            .scenarios()
            .expect("valid grid")
            .into_iter()
            .enumerate()
        {
            let Topology::Ring { nodes, .. } = scenario.topology else {
                unreachable!("ring sweep");
            };
            let ring = hyperroute_topology::Ring::new(nodes, bidirectional);
            // λ chosen so the busiest direction sees per-arc load 0.7.
            let lambda = 0.7 / (ring.load_factor(1.0));
            scenario.workload.lambda = lambda;
            let report = scenario.run().expect("scenario runs");
            let ext = report.ring().expect("ring extension");
            let stable = probe_ring(
                nodes,
                bidirectional,
                lambda,
                horizon / 2.0,
                0xE2400 + i as u64,
            );
            let unstable = probe_ring(
                nodes,
                bidirectional,
                lambda * 1.2 / 0.7, // per-arc load 1.2
                horizon / 2.0,
                0xE2450 + i as u64,
            );
            t.row(vec![
                nodes.to_string(),
                if bidirectional { "bidir" } else { "cw" }.to_string(),
                f4(ext.rho),
                f4(ring.mean_path_length()),
                f4(ext.mean_hops),
                f4(report.delay.mean),
                yn(stable.stable),
                yn(!unstable.stable),
            ]);
        }
    }
    t.note(
        "rho_ring = λ·E[hops in the busier direction]; capacity requires rho_ring < 1 \
         (the ring analogue of ρ = λp < 1, Prop. 6)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_match_theory_and_frontier_is_sharp() {
        let t = run(Scale::Quick);
        let (eh, mh) = (t.col("E[hops]"), t.col("hops_meas"));
        let (st, un) = (t.col("stable@rho"), t.col("unstable@1.2rho"));
        for row in &t.rows {
            let expect: f64 = row[eh].parse().unwrap();
            let measured: f64 = row[mh].parse().unwrap();
            assert!(
                (measured - expect).abs() < expect * 0.1 + 0.05,
                "hops {measured} vs theory {expect}: {row:?}"
            );
            assert_eq!(row[st], "yes", "{row:?}");
            assert_eq!(row[un], "yes", "{row:?}");
        }
        // Both variants present.
        let v = t.col("variant");
        assert!(t.rows.iter().any(|r| r[v] == "cw"));
        assert!(t.rows.iter().any(|r| r[v] == "bidir"));
    }
}
