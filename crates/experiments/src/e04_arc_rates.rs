//! E04 — Prop. 5: under greedy routing every hypercube arc carries total
//! arrival rate exactly `ρ = λp`, uniformly across dimensions — even though
//! the *external* rates `λp(1-p)^i` are wildly asymmetric.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::{Scenario, Topology};

/// Measure per-dimension per-arc arrival rates for symmetric and skewed p.
pub fn run(scale: Scale) -> Table {
    let d = scale.dim(8);
    let horizon = scale.horizon(8_000.0);
    let cases = vec![(1.2f64, 0.5f64), (1.0, 0.3)];

    let reports = parallel_map(cases, 0, |(lambda, p)| {
        let report = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE04 ^ (p * 100.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (lambda, p, report)
    });

    let mut t = Table::new(
        format!("E04 Prop.5 — per-arc arrival rate equals ρ in every dimension (d={d})"),
        &["lambda", "p", "dim", "rate_meas", "rho", "rel_err", "ok"],
    );
    for (lambda, p, r) in reports {
        let rho = lambda * p;
        let ext = r.hypercube().expect("hypercube report");
        for (dim, &rate) in ext.per_dim_arc_rate.iter().enumerate() {
            let rel = (rate - rho).abs() / rho;
            t.row(vec![
                f4(lambda),
                f4(p),
                dim.to_string(),
                f4(rate),
                f4(rho),
                f4(rel),
                yn(rel < 0.05),
            ]);
        }
    }
    t.note("external rates differ by (1-p)^i per dimension; internal traffic equalises them to ρ");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dimensions_at_rho() {
        let t = run(Scale::Quick);
        let ok = t.col("ok");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
