//! E07 — Prop. 13: greedy delay satisfies `T ≥ dp + pρ/(2(1-ρ))`.

use crate::runner::parallel_map;
use crate::sweep::{cartesian, rho_grid_standard};
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::hypercube_bounds;
use hyperroute_core::{Scenario, Topology};

/// Delay sweep against the Prop. 13 lower bound.
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![3, 5],
        Scale::Full => vec![4, 6, 8, 10],
    };
    let rhos = rho_grid_standard();
    let horizon = scale.horizon(10_000.0);
    let p = 0.5;

    let rows = parallel_map(cartesian(&dims, &rhos), 0, |(d, rho)| {
        let lambda = rho / p;
        let r = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE07 ^ (d as u64) << 8 ^ (rho * 1000.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (d, rho, r.delay.mean)
    });

    let mut t = Table::new(
        format!("E07 Prop.13 — T >= dp + p*rho/(2(1-rho)) (p={p})"),
        &["d", "rho", "T_meas", "LB", "T/LB", "T>=LB"],
    );
    for (d, rho, tm) in rows {
        let lambda = rho / p;
        let lb = hypercube_bounds::greedy_lower_bound(d, lambda, p);
        t.row(vec![
            d.to_string(),
            f4(rho),
            f4(tm),
            f4(lb),
            f4(tm / lb),
            yn(tm >= lb * 0.97),
        ]);
    }
    t.note("tight at p=1 (disjoint paths); sharper than Prop. 3 by at most a factor 2");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_holds_everywhere() {
        let t = run(Scale::Quick);
        let ok = t.col("T>=LB");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
