//! E02 — Prop. 2: the universal delay lower bound
//! `T ≥ max{dp, p·D(2^d; ρ)}` holds for the measured greedy delay (it must
//! — it holds for *any* scheme).
//!
//! Both forms are reported: the provably valid workload bound and the
//! paper-printed heavy-traffic form (see `hyperroute_queueing::mds`).

use crate::runner::parallel_map;
use crate::sweep::cartesian;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::hypercube_bounds;
use hyperroute_core::{Scenario, Topology};

/// Measure T across (d, ρ) and compare with Prop. 2.
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![3, 5],
        Scale::Full => vec![4, 6, 8],
    };
    let rhos = [0.3, 0.6, 0.9];
    let horizon = scale.horizon(8_000.0);
    let p = 0.5;

    let rows = parallel_map(cartesian(&dims, &rhos), 0, |(d, rho)| {
        let lambda = rho / p;
        let r = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE02 ^ (d as u64) << 8 ^ (rho * 100.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (d, rho, r.delay.mean, r.delay.ci95)
    });

    let mut t = Table::new(
        format!("E02 Prop.2 — universal lower bound (p={p})"),
        &[
            "d", "rho", "T_meas", "ci95", "LB_valid", "LB_paper", "T>=LB",
        ],
    );
    for (d, rho, tm, ci) in rows {
        let lambda = rho / p;
        let lb = hypercube_bounds::universal_lower_bound(d, lambda, p);
        let lbp = hypercube_bounds::universal_lower_bound_paper_form(d, lambda, p);
        t.row(vec![
            d.to_string(),
            f4(rho),
            f4(tm),
            f4(ci),
            f4(lb),
            f4(lbp),
            yn(tm >= lb * 0.97),
        ]);
    }
    t.note(
        "LB_valid: workload-derived bound (provable); LB_paper: printed form, exact only as ρ→1",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_never_violated() {
        let t = run(Scale::Quick);
        let ok = t.col("T>=LB");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
