//! E21 — §2.2 generalisation: for any translation-invariant destination
//! distribution the necessary stability condition becomes
//! `ρ_gen = λ·max_j p_j < 1`, where `p_j` is the flip probability of
//! dimension `j`. A skewed distribution therefore loses capacity to its
//! bottleneck dimension — and the frontier sits exactly where the
//! generalised load factor says.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::load::dimension_load_factors;
use hyperroute_core::config::DestinationSpec;
use hyperroute_core::stability::probe_scenario;
use hyperroute_core::{Scenario, Topology};

/// Sweep λ across the *generalised* stability frontier of a skewed
/// destination distribution (dimension 0 always flips).
pub fn run(scale: Scale) -> Table {
    let d = 4usize;
    let horizon = scale.horizon(6_000.0);
    // Dimension 0 flips always, the rest rarely: p_j = (1, .2, .2, .2).
    let per_dim = [1.0, 0.2, 0.2, 0.2];
    let spec = DestinationSpec::product_of_flips(&per_dim);
    let DestinationSpec::MaskPmf(pmf) = spec.clone() else {
        unreachable!()
    };
    let lambdas = vec![0.5, 0.8, 0.95, 1.1, 1.3];

    let rows = parallel_map(lambdas, 0, |lambda| {
        let loads = dimension_load_factors(d, lambda, &|mask| pmf[mask as usize]);
        let rho_gen = loads.iter().copied().fold(0.0, f64::max);
        let scenario = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .dest(spec.clone())
            .horizon(horizon)
            .seed(0xE21 ^ (lambda * 100.0) as u64)
            .build()
            .expect("valid scenario");
        let v = probe_scenario(&scenario).expect("scenario probes");
        (lambda, rho_gen, v)
    });

    let mut t = Table::new(
        format!(
            "E21 §2.2 — generalised stability rho_gen = lambda*max_j p_j (d={d}, p=(1,.2,.2,.2))"
        ),
        &["lambda", "rho_gen", "drift", "stable", "paper", "agree"],
    );
    for (lambda, rho_gen, v) in rows {
        let paper_stable = rho_gen < 1.0;
        t.row(vec![
            f4(lambda),
            f4(rho_gen),
            f4(v.normalized_drift),
            yn(v.stable),
            yn(paper_stable),
            yn(v.stable == paper_stable),
        ]);
    }
    t.note("bottleneck is dimension 0 (always flipped): capacity caps at λ = 1 despite mean distance 1.6 < d/2");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generalised_frontier_matches() {
        let t = run(Scale::Quick);
        let agree = t.col("agree");
        for row in &t.rows {
            assert_eq!(row[agree], "yes", "{row:?}");
        }
        // The frontier must flip within the λ sweep.
        let st = t.col("stable");
        assert_eq!(t.rows.first().unwrap()[st], "yes");
        assert_eq!(t.rows.last().unwrap()[st], "NO");
    }
}
