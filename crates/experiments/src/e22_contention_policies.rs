//! E22 — contention-rule ablation: the paper fixes FIFO priority ("the one
//! that arrived first"). Because all three candidate rules are
//! non-preemptive and work-conserving and ignore service times, the *mean*
//! delay is insensitive to the choice — but the delay distribution is not:
//! LIFO fattens the tail dramatically. FIFO is thus the right default for
//! a delay-bound guarantee, and the paper's mean-delay results are robust
//! to the rule.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::config::ContentionPolicy;
use hyperroute_core::{Scenario, Topology};

/// Mean and tail delay for each contention policy at moderate/high load.
pub fn run(scale: Scale) -> Table {
    let d = scale.dim(8);
    let horizon = scale.horizon(10_000.0);
    let p = 0.5;
    let policies = [
        ContentionPolicy::Fifo,
        ContentionPolicy::Lifo,
        ContentionPolicy::Random,
    ];
    let rhos = [0.6, 0.85];

    let cases: Vec<(ContentionPolicy, f64)> = policies
        .iter()
        .flat_map(|&c| rhos.iter().map(move |&r| (c, r)))
        .collect();

    let rows = parallel_map(cases, 0, |(contention, rho)| {
        let report = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(rho / p)
            .p(p)
            .contention(contention)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE22 ^ (rho * 100.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (contention, rho, report)
    });

    // FIFO means per rho for the comparison column.
    let fifo_means: Vec<(f64, f64)> = rows
        .iter()
        .filter(|(c, _, _)| *c == ContentionPolicy::Fifo)
        .map(|(_, rho, r)| (*rho, r.delay.mean))
        .collect();

    let mut t = Table::new(
        format!("E22 ablation — contention rules (d={d}, p={p})"),
        &[
            "policy", "rho", "T_mean", "T/T_fifo", "p50", "p99", "mean_ok",
        ],
    );
    for (contention, rho, r) in rows {
        let fifo_mean = fifo_means
            .iter()
            .find(|(fr, _)| *fr == rho)
            .map(|(_, m)| *m)
            .expect("fifo baseline present");
        let ratio = r.delay.mean / fifo_mean;
        t.row(vec![
            contention.to_string(),
            f4(rho),
            f4(r.delay.mean),
            f4(ratio),
            f4(r.delay.p50),
            f4(r.delay.p99),
            yn((ratio - 1.0).abs() < 0.08),
        ]);
    }
    t.note("work conservation keeps means aligned; compare the p99 spread (LIFO ≫ FIFO)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_insensitive_tails_not() {
        let t = run(Scale::Quick);
        let ok = t.col("mean_ok");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
        // LIFO p99 above FIFO p99 at the higher load.
        let (pol, rho, p99) = (t.col("policy"), t.col("rho"), t.col("p99"));
        let find = |name: &str| {
            t.rows
                .iter()
                .find(|r| r[pol] == name && r[rho] == "0.8500")
                .map(|r| r[p99].parse::<f64>().unwrap())
                .expect("row present")
        };
        assert!(
            find("lifo") > find("fifo") * 1.3,
            "LIFO tail not fatter: {} vs {}",
            find("lifo"),
            find("fifo")
        );
    }
}
