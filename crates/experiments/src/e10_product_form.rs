//! E10 — the product form of the PS comparison network Q̄ (\[Wal88\] as used
//! in §3.3): per-server occupancy is geometric(ρ) and
//! `N̄ = d·2^d·ρ/(1-ρ)`.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::equivalent_network::Discipline;
use hyperroute_core::scenario::EqNetSpec;
use hyperroute_core::{Scenario, Topology};

/// PS-network occupancy distribution vs geometric(ρ), plus the total mean.
pub fn run(scale: Scale) -> Table {
    let d = 3usize;
    let horizon = scale.horizon(30_000.0);
    let p = 0.5;
    let rhos = [0.5, 0.8];

    let runs = parallel_map(rhos.to_vec(), 0, |rho| {
        let lambda = rho / p;
        let report = Scenario::builder(Topology::EqNet {
            net: EqNetSpec::HypercubeQ { dim: d },
            record_departures: false,
            occupancy_cap: 8,
        })
        .lambda(lambda)
        .p(p)
        .discipline(Discipline::Ps)
        .horizon(horizon)
        .warmup(horizon * 0.15)
        .seed(0xE10 ^ (rho * 10.0) as u64)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs");
        (rho, report)
    });

    let mut t = Table::new(
        format!("E10 product form of Q-bar (d={d}, p={p}) — geometric occupancy"),
        &["rho", "n", "frac_meas", "geometric", "abs_err", "ok"],
    );
    for (rho, r) in runs {
        let occupancy = &r.eqnet().expect("eqnet report").occupancy_fractions;
        let servers = occupancy.len() as f64;
        for n in 0..5usize {
            let avg: f64 = occupancy.iter().map(|f| f[n]).sum::<f64>() / servers;
            let geo = (1.0 - rho) * rho.powi(n as i32);
            let err = (avg - geo).abs();
            t.row(vec![
                f4(rho),
                n.to_string(),
                f4(avg),
                f4(geo),
                f4(err),
                yn(err < 0.02),
            ]);
        }
        // Total-mean row (n column marked "total").
        let expect = d as f64 * 8.0 * rho / (1.0 - rho);
        let err = (r.mean_in_system - expect).abs() / expect;
        t.row(vec![
            f4(rho),
            "total".into(),
            f4(r.mean_in_system),
            f4(expect),
            f4(err),
            yn(err < 0.08),
        ]);
    }
    t.note("'total' rows compare N̄ against d·2^d·ρ/(1-ρ) with relative error");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_everywhere() {
        let t = run(Scale::Quick);
        let ok = t.col("ok");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
