//! E09 — Lemmas 9/10 and Prop. 11: on coupled sample paths, switching every
//! server of a levelled network from FIFO to PS only delays the departure
//! process (`B(t) ≥ B̄(t)` for all `t`) and hence inflates the number in
//! system. Checked on the Fig. 2 network and on equivalent networks `Q` of
//! small hypercubes.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::equivalent_network::Discipline;
use hyperroute_core::scenario::EqNetSpec;
use hyperroute_core::{Scenario, Topology};
use hyperroute_queueing::sample_path::counting_dominates;

/// Run coupled FIFO/PS pairs and verify dominance.
pub fn run(scale: Scale) -> Table {
    let horizon = scale.horizon(3_000.0);
    let seeds: Vec<u64> = match scale {
        Scale::Quick => vec![1, 2, 3],
        Scale::Full => vec![1, 2, 3, 4, 5, 6, 7, 8],
    };

    // (name, network) cases: Fig. 2 plus Q(d) for small d.
    let mut cases: Vec<(String, EqNetSpec)> = vec![(
        "fig2(G)".into(),
        EqNetSpec::Fig2 {
            rate1: 0.5,
            rate2: 0.5,
            rate3: 0.3,
            q1: 0.6,
            q2: 0.6,
        },
    )];
    for d in 2..=3usize {
        cases.push((format!("Q(d={d})"), EqNetSpec::HypercubeQ { dim: d }));
    }

    let jobs: Vec<(String, EqNetSpec, u64)> = cases
        .into_iter()
        .flat_map(|(name, net)| {
            seeds
                .iter()
                .map(move |&s| (name.clone(), net.clone(), s))
                .collect::<Vec<_>>()
        })
        .collect();

    let rows = parallel_map(jobs, 0, |(name, net, seed)| {
        let mk = |discipline| {
            Scenario::builder(Topology::EqNet {
                net: net.clone(),
                record_departures: true,
                occupancy_cap: 0,
            })
            .lambda(1.2)
            .p(0.5)
            .discipline(discipline)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE09 ^ seed)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs")
        };
        let fifo = mk(Discipline::Fifo);
        let ps = mk(Discipline::Ps);
        let dominates = counting_dominates(
            &fifo.eqnet().expect("eqnet report").departures,
            &ps.eqnet().expect("eqnet report").departures,
            1e-7,
        );
        (
            name,
            seed,
            fifo.delivered,
            dominates,
            fifo.mean_in_system,
            ps.mean_in_system,
        )
    });

    let mut t = Table::new(
        "E09 Lem.9/10, Prop.11 — coupled FIFO/PS dominance on levelled networks",
        &[
            "network",
            "seed",
            "departures",
            "B>=B_ps",
            "N_fifo",
            "N_ps",
            "N<=N_ps",
        ],
    );
    for (name, seed, deps, dom, nf, np) in rows {
        t.row(vec![
            name,
            seed.to_string(),
            deps.to_string(),
            yn(dom),
            f4(nf),
            f4(np),
            yn(nf <= np * 1.05),
        ]);
    }
    t.note("coupling: identical per-server arrival streams and positional routing decisions");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_on_every_sample_path() {
        let t = run(Scale::Quick);
        let (b, n) = (t.col("B>=B_ps"), t.col("N<=N_ps"));
        for row in &t.rows {
            assert_eq!(row[b], "yes", "{row:?}");
            assert_eq!(row[n], "yes", "{row:?}");
        }
    }
}
