//! E18 — Prop. 17: butterfly greedy delay satisfies
//! `T ≤ dp/(1-λp) + d(1-p)/(1-λ(1-p))`.

use crate::runner::parallel_map;
use crate::sweep::cartesian;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::butterfly_bounds;
use hyperroute_core::{Scenario, Topology};

/// Butterfly delay vs the Prop. 17 bound across (d, λ, p).
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![3, 5],
        Scale::Full => vec![4, 6, 8],
    };
    let loads = [0.4f64, 0.7, 0.9];
    let horizon = scale.horizon(8_000.0);
    let p = 0.5f64;

    let rows = parallel_map(cartesian(&dims, &loads), 0, |(d, rho_bf)| {
        let lambda = rho_bf / p.max(1.0 - p);
        let r = Scenario::builder(Topology::Butterfly { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE18 ^ (d as u64) << 8 ^ (rho_bf * 100.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (d, lambda, r.delay.mean)
    });

    let mut t = Table::new(
        format!("E18 Prop.17 — butterfly upper bound (p={p})"),
        &["d", "lambda", "T_meas", "UB", "T/UB", "T<=UB"],
    );
    for (d, lambda, tm) in rows {
        let ub = butterfly_bounds::greedy_upper_bound(d, lambda, p);
        t.row(vec![
            d.to_string(),
            f4(lambda),
            f4(tm),
            f4(ub),
            f4(tm / ub),
            yn(tm <= ub * 1.03),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_holds() {
        let t = run(Scale::Quick);
        let ok = t.col("T<=UB");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
