//! E05 — Prop. 6: greedy routing is stable for **every** `ρ < 1`; queues
//! stay bounded even at ρ = 0.95–0.98, and the mean backlog respects the
//! product-form comparison `N ≤ d·2^d·ρ/(1-ρ)` (Eq. (13)).

use crate::runner::parallel_map;
use crate::sweep::cartesian;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::hypercube_bounds;
use hyperroute_core::stability::probe_hypercube;
use hyperroute_core::Scheme;

/// High-load stability probes plus backlog-vs-bound comparison.
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![4, 5],
        Scale::Full => vec![6, 8, 10],
    };
    let rhos = match scale {
        Scale::Quick => vec![0.9, 0.95],
        Scale::Full => vec![0.9, 0.95, 0.98],
    };
    let horizon = scale.horizon(20_000.0);
    let p = 0.5;

    let rows = parallel_map(cartesian(&dims, &rhos), 0, |(d, rho)| {
        let lambda = rho / p;
        let v = probe_hypercube(d, lambda, p, Scheme::Greedy, horizon, 0xE05 ^ d as u64);
        let bound = hypercube_bounds::product_form_mean_total(d, lambda, p);
        (d, rho, v, bound)
    });

    let mut t = Table::new(
        "E05 Prop.6 — greedy is stable throughout ρ < 1 (N vs Eq.(13) bound)",
        &[
            "d", "rho", "drift", "stable", "N_mean", "N_bound", "N<=bound",
        ],
    );
    for (d, rho, v, bound) in rows {
        t.row(vec![
            d.to_string(),
            f4(rho),
            f4(v.normalized_drift),
            yn(v.stable),
            f4(v.mean_in_system),
            f4(bound),
            yn(v.mean_in_system <= bound * 1.1),
        ]);
    }
    t.note("N_bound = d·2^d·ρ/(1-ρ), the product-form network mean (Prop. 11/12 machinery)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_bounded_everywhere() {
        let t = run(Scale::Quick);
        let (st, nb) = (t.col("stable"), t.col("N<=bound"));
        for row in &t.rows {
            assert_eq!(row[st], "yes", "{row:?}");
            assert_eq!(row[nb], "yes", "{row:?}");
        }
    }
}
