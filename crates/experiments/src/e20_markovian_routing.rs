//! E20 — Lemmas 1 and 4: the destination law's bit-flips are independent,
//! so the greedy walk is Markovian with hop probability
//! `P[next dim = j | crossed i] = p(1-p)^(j-i-1)` and exit probability
//! `(1-p)^(d-1-i)` (0-based dimensions).

use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::packet::sample_flip_mask;
use hyperroute_desim::SimRng;

/// Empirical transition frequencies of the greedy dimension walk.
#[allow(clippy::needless_range_loop)] // 2-D transition counts read clearest indexed
pub fn run(scale: Scale) -> Table {
    let d = 5usize;
    let p = 0.35;
    let samples = match scale {
        Scale::Quick => 300_000usize,
        Scale::Full => 3_000_000,
    };

    // counts[i][j]: packets that crossed dim i and next crossed dim j;
    // counts[i][d]: packets that crossed dim i and then exited.
    let mut counts = vec![vec![0u64; d + 1]; d];
    let mut crossed = vec![0u64; d];
    let mut rng = SimRng::new(0xE20);
    for _ in 0..samples {
        let mask = sample_flip_mask(&mut rng, d, p);
        let dims: Vec<usize> = (0..d).filter(|&i| mask >> i & 1 == 1).collect();
        for (k, &i) in dims.iter().enumerate() {
            crossed[i] += 1;
            match dims.get(k + 1) {
                Some(&j) => counts[i][j] += 1,
                None => counts[i][d] += 1,
            }
        }
    }

    let mut t = Table::new(
        format!("E20 Lem.1/4 — Markovian routing law (d={d}, p={p}, n={samples})"),
        &["from_i", "to", "freq_meas", "freq_pred", "abs_err", "ok"],
    );
    for i in 0..d {
        if crossed[i] == 0 {
            continue;
        }
        for j in (i + 1)..d {
            let meas = counts[i][j] as f64 / crossed[i] as f64;
            let pred = p * (1.0 - p).powi((j - i - 1) as i32);
            let err = (meas - pred).abs();
            t.row(vec![
                i.to_string(),
                j.to_string(),
                f4(meas),
                f4(pred),
                f4(err),
                yn(err < 0.01),
            ]);
        }
        let meas = counts[i][d] as f64 / crossed[i] as f64;
        let pred = (1.0 - p).powi((d - 1 - i) as i32);
        let err = (meas - pred).abs();
        t.row(vec![
            i.to_string(),
            "exit".into(),
            f4(meas),
            f4(pred),
            f4(err),
            yn(err < 0.01),
        ]);
    }
    t.note("hop prob p(1-p)^(j-i-1), exit prob (1-p)^(d-1-i): Property C of the network Q");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn law_matches_lemma_4() {
        let t = run(Scale::Quick);
        let ok = t.col("ok");
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }

    #[test]
    fn rows_cover_all_transitions() {
        let t = run(Scale::Quick);
        // d=5: transitions (i<j) = 10, exits = 5.
        assert_eq!(t.rows.len(), 15);
    }
}
