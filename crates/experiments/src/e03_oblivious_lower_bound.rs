//! E03 — Prop. 3: the sharper lower bound for oblivious schemes
//! `T ≥ max{dp, p(1 + ρ/(2(1-ρ)))}`. Greedy routing is oblivious, so its
//! measured delay must respect it.

use crate::runner::parallel_map;
use crate::sweep::cartesian;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::hypercube_bounds;
use hyperroute_core::{Scenario, Topology};

/// Measure T across (d, ρ) and compare with Prop. 3.
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![3, 5],
        Scale::Full => vec![4, 6, 8],
    };
    let rhos = [0.3, 0.6, 0.9];
    let horizon = scale.horizon(8_000.0);
    let p = 0.5;

    let rows = parallel_map(cartesian(&dims, &rhos), 0, |(d, rho)| {
        let lambda = rho / p;
        let r = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE03 ^ (d as u64) << 8 ^ (rho * 100.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (d, rho, r.delay.mean)
    });

    let mut t = Table::new(
        format!("E03 Prop.3 — oblivious lower bound (p={p})"),
        &["d", "rho", "T_meas", "LB_oblivious", "LB/T", "T>=LB"],
    );
    for (d, rho, tm) in rows {
        let lambda = rho / p;
        let lb = hypercube_bounds::oblivious_lower_bound(d, lambda, p);
        t.row(vec![
            d.to_string(),
            f4(rho),
            f4(tm),
            f4(lb),
            f4(lb / tm),
            yn(tm >= lb * 0.97),
        ]);
    }
    t.note("greedy is oblivious and time-independent, so Prop. 3 applies to it");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_never_violated() {
        let t = run(Scale::Quick);
        let ok = t.col("T>=LB");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
