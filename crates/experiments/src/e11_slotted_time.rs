//! E11 — §3.4 slotted time: with slot length `r` and per-slot Poisson
//! batches the delay satisfies `T_slot ≤ dp/(1-ρ) + r`.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::hypercube_bounds;
use hyperroute_core::{ArrivalModel, Scenario, Topology};

/// Slotted-vs-continuous comparison across slot lengths.
pub fn run(scale: Scale) -> Table {
    let d = scale.dim(6);
    let horizon = scale.horizon(10_000.0);
    let (lambda, p) = (1.4, 0.5); // ρ = 0.7
    let cases: Vec<Option<u32>> = vec![None, Some(1), Some(2), Some(4)];

    let rows = parallel_map(cases, 0, |slots| {
        let report = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .arrivals(match slots {
                None => ArrivalModel::Poisson,
                Some(m) => ArrivalModel::Slotted { slots_per_unit: m },
            })
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE11 ^ slots.unwrap_or(0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (slots, report)
    });

    let mut t = Table::new(
        format!("E11 §3.4 — slotted time: T <= dp/(1-rho) + r (d={d}, rho=0.7)"),
        &["model", "r", "T_meas", "bound", "T<=bound"],
    );
    for (slots, r) in rows {
        let (name, slot_len, bound) = match slots {
            None => (
                "continuous".to_string(),
                0.0,
                hypercube_bounds::greedy_upper_bound(d, lambda, p),
            ),
            Some(m) => {
                let sl = 1.0 / m as f64;
                (
                    format!("slotted 1/{m}"),
                    sl,
                    hypercube_bounds::slotted_upper_bound(d, lambda, p, sl),
                )
            }
        };
        t.row(vec![
            name,
            f4(slot_len),
            f4(r.delay.mean),
            f4(bound),
            yn(r.delay.mean <= bound * 1.03),
        ]);
    }
    t.note("batch arrivals make slotted delay slightly above continuous; the +r covers it");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotted_bound_holds() {
        let t = run(Scale::Quick);
        let ok = t.col("T<=bound");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }

    #[test]
    fn coarser_slots_no_faster_than_continuous() {
        let t = run(Scale::Quick);
        let tm = t.col("T_meas");
        let continuous = t.cell_f64(0, tm);
        let slotted_full = t.cell_f64(1, tm); // r = 1
        assert!(
            slotted_full >= continuous * 0.98,
            "slotted r=1 ({slotted_full}) unexpectedly beats continuous ({continuous})"
        );
    }
}
