//! E26 — beyond the paper: greedy routing under arc-failure masks
//! (Angel et al., *Routing Complexity of Faulty Networks*).
//!
//! A seeded fraction of directed arcs is dead; a packet whose greedy arc
//! is dead either **detours** (first live alternative arc that still
//! makes strict shortest-path progress) or **drops**. This experiment
//! sweeps the fault fraction over three graph topologies — hypercube,
//! torus and de Bruijn, all on the blanket `GraphSpec` — and measures
//! the delivery rate under both fallbacks.
//!
//! The headline the table shows: richly-connected topologies (hypercube,
//! torus) recover most dead-greedy-arc encounters through one-hop
//! detours, while the degree-2 de Bruijn graph has almost no alternative
//! arcs with progress, so its detour curve hugs its drop curve — routing
//! redundancy, not raw connectivity, buys fault tolerance.

use crate::table::{f4, Table};
use crate::Scale;
use hyperroute_core::config::{FaultFallback, FaultMode, FaultSpec};
use hyperroute_core::{Scenario, Topology};

/// Delivery rate vs dead-arc fraction, per topology × fallback.
pub fn run(scale: Scale) -> Table {
    let fractions: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 0.1, 0.25],
        Scale::Full => vec![0.0, 0.05, 0.1, 0.2, 0.3],
    };
    let horizon = scale.horizon(4_000.0);
    let topologies: Vec<(&str, Topology, f64)> = vec![
        ("hypercube", Topology::Hypercube { dim: 4 }, 0.8),
        ("torus", Topology::Torus { radix: 5, dim: 2 }, 0.4),
        ("debruijn", Topology::DeBruijn { dim: 6 }, 0.12),
    ];

    let mut t = Table::new(
        "E26 (beyond the paper) — delivery rate vs arc-fault fraction under detour/drop fallbacks",
        &[
            "topology",
            "fault_frac",
            "dead_arcs",
            "fallback",
            "delivered_frac",
            "dropped",
            "hops_meas",
        ],
    );

    for (name, topology, lambda) in &topologies {
        for &fraction in &fractions {
            for fallback in [FaultFallback::Detour, FaultFallback::Drop] {
                let scenario = Scenario::builder(topology.clone())
                    .lambda(*lambda)
                    .horizon(horizon)
                    .warmup(horizon * 0.15)
                    .seed(0xE26)
                    .faults(Some(FaultSpec {
                        mode: FaultMode::Seeded {
                            fraction,
                            seed: 0xFA017 + (fraction * 100.0) as u64,
                        },
                        fallback,
                        dynamics: None,
                    }))
                    .build()
                    .expect("valid scenario");
                let report = scenario.run().expect("scenario runs");
                let ext = report.graph().expect("graph extension");
                assert_eq!(
                    report.generated,
                    report.delivered + ext.dropped,
                    "conservation"
                );
                t.row(vec![
                    name.to_string(),
                    f4(fraction),
                    ext.dead_arcs.to_string(),
                    match fallback {
                        FaultFallback::Detour => "detour",
                        _ => "drop",
                    }
                    .to_string(),
                    f4(ext.delivery_fraction),
                    ext.dropped.to_string(),
                    f4(ext.mean_hops),
                ]);
            }
        }
    }
    t.note(
        "seeded fault masks are a function of the fault seed alone; detour = first \
         live arc with strict progress (deterministic scan), drop = give up at the \
         first dead greedy arc. The degree-2 de Bruijn graph rarely has a detour \
         with progress, so both fallbacks converge there",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_degrades_with_faults_and_detour_dominates_drop() {
        let t = run(Scale::Quick);
        let (topo, frac, fb, del) = (
            t.col("topology"),
            t.col("fault_frac"),
            t.col("fallback"),
            t.col("delivered_frac"),
        );
        let get = |topology: &str, fraction: &str, fallback: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[topo] == topology && r[frac] == fraction && r[fb] == fallback)
                .unwrap_or_else(|| panic!("row {topology}/{fraction}/{fallback}"))[del]
                .parse()
                .unwrap()
        };
        for topology in ["hypercube", "torus", "debruijn"] {
            // No faults → full delivery under either fallback.
            assert_eq!(get(topology, "0", "detour"), 1.0, "{topology}");
            assert_eq!(get(topology, "0", "drop"), 1.0, "{topology}");
            for fraction in ["0.1000", "0.2500"] {
                let detour = get(topology, fraction, "detour");
                let drop = get(topology, fraction, "drop");
                assert!(drop < 1.0, "{topology}@{fraction}: faults but no drops");
                assert!(
                    detour >= drop,
                    "{topology}@{fraction}: detour {detour} below drop {drop}"
                );
            }
            // More faults, fewer deliveries (drop fallback is monotone).
            assert!(get(topology, "0.1000", "drop") > get(topology, "0.2500", "drop"));
        }
        // The redundancy story: hypercube detours recover far more than
        // the degree-2 de Bruijn graph at the same fault fraction.
        let cube_gain = get("hypercube", "0.2500", "detour") - get("hypercube", "0.2500", "drop");
        let db_gain = get("debruijn", "0.2500", "detour") - get("debruijn", "0.2500", "drop");
        assert!(
            cube_gain > db_gain + 0.05,
            "hypercube detour gain {cube_gain} vs de Bruijn {db_gain}"
        );
    }
}
