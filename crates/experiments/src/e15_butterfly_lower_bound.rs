//! E15 — Prop. 14: the butterfly universal lower bound
//! `T ≥ d + λp²/(2(1-λp)) + λ(1-p)²/(2(1-λ(1-p)))`.

use crate::runner::parallel_map;
use crate::sweep::cartesian;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::butterfly_bounds;
use hyperroute_core::{Scenario, Topology};

/// Butterfly delay vs the Prop. 14 bound across (d, p).
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![3, 5],
        Scale::Full => vec![4, 8],
    };
    let ps = [0.3f64, 0.5, 0.7];
    let horizon = scale.horizon(8_000.0);
    let rho_bf = 0.7;

    let rows = parallel_map(cartesian(&dims, &ps), 0, |(d, p)| {
        let lambda = rho_bf / p.max(1.0 - p);
        let r = Scenario::builder(Topology::Butterfly { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE15 ^ (d as u64) << 8 ^ (p * 100.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (d, lambda, p, r.delay.mean)
    });

    let mut t = Table::new(
        format!("E15 Prop.14 — butterfly universal lower bound (rho_bf={rho_bf})"),
        &["d", "lambda", "p", "T_meas", "LB", "T>=LB"],
    );
    for (d, lambda, p, tm) in rows {
        let lb = butterfly_bounds::universal_lower_bound(d, lambda, p);
        t.row(vec![
            d.to_string(),
            f4(lambda),
            f4(p),
            f4(tm),
            f4(lb),
            yn(tm >= lb * 0.97),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_never_violated() {
        let t = run(Scale::Quick);
        let ok = t.col("T>=LB");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
