//! E13 — §3.3 end: for `p = 1` canonical paths from different origins are
//! arc-disjoint and the delay is exactly `T = d + ρ/(2(1-ρ))` — the one
//! point where the Prop. 13 lower bound is tight.

use crate::runner::parallel_map;
use crate::sweep::cartesian;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::hypercube_bounds;
use hyperroute_core::{Scenario, Topology};

/// Compare measured delay against the exact closed form at p = 1.
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![3, 5],
        Scale::Full => vec![4, 8],
    };
    let rhos = [0.5, 0.8];
    let horizon = scale.horizon(12_000.0);

    let rows = parallel_map(cartesian(&dims, &rhos), 0, |(d, rho)| {
        let r = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(rho) // p = 1 ⇒ ρ = λ
            .p(1.0)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE13 ^ (d as u64) << 8 ^ (rho * 10.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (d, rho, r.delay.mean)
    });

    let mut t = Table::new(
        "E13 §3.3 — p=1 exact delay T = d + rho/(2(1-rho))",
        &["d", "rho", "T_meas", "T_exact", "rel_err", "ok"],
    );
    for (d, rho, tm) in rows {
        let exact = hypercube_bounds::p_one_exact_delay(d, rho);
        let err = (tm - exact).abs() / exact;
        t.row(vec![
            d.to_string(),
            f4(rho),
            f4(tm),
            f4(exact),
            f4(err),
            yn(err < 0.03),
        ]);
    }
    t.note("disjoint paths: only the first arc queues (M/D/1); downstream arcs never do");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_formula_matches() {
        let t = run(Scale::Quick);
        let ok = t.col("ok");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
