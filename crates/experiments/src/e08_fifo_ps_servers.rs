//! E08 — Lemmas 7 and 8, checked on single-server sample paths:
//! * Lemma 7: a deterministic PS server never beats the FIFO server fed by
//!   the same arrivals (`D̄_i ≥ D_i` pointwise);
//! * Lemma 8: delaying every arrival delays every FIFO departure.

use crate::table::{f4, Table};
use crate::Scale;
use hyperroute_desim::SimRng;
use hyperroute_queueing::sample_path::first_violation;
use hyperroute_queueing::{fifo_departures, ps_departures};

/// Random and adversarial arrival paths through both disciplines.
pub fn run(scale: Scale) -> Table {
    let jobs = match scale {
        Scale::Quick => 2_000usize,
        Scale::Full => 20_000,
    };
    let utils = [0.5, 0.8, 0.95];

    let mut t = Table::new(
        "E08 Lemmas 7/8 — deterministic FIFO vs PS sample paths",
        &[
            "util",
            "jobs",
            "fifo_T",
            "ps_T",
            "lem7_violations",
            "lem8_violations",
        ],
    );
    for (i, &util) in utils.iter().enumerate() {
        let mut rng = SimRng::new(0xE08 + i as u64);
        let mut now = 0.0;
        let arrivals: Vec<f64> = (0..jobs)
            .map(|_| {
                now += rng.exp(util);
                now
            })
            .collect();
        let fifo = fifo_departures(&arrivals, 1.0);
        let ps = ps_departures(&arrivals, 1.0);

        // Lemma 7: ps[i] >= fifo[i] for all i.
        let lem7 = first_violation(&fifo, &ps, 1e-9).map_or(0, |_| 1)
            + fifo
                .iter()
                .zip(&ps)
                .filter(|(f, p)| *p < &(**f - 1e-9))
                .count();

        // Lemma 8: delay each arrival by an extra random gap; departures
        // must be pointwise later.
        let delayed: Vec<f64> = {
            let mut extra = 0.0;
            arrivals
                .iter()
                .map(|&a| {
                    extra += rng.exp(10.0); // cumulative shifts keep order
                    a + extra
                })
                .collect()
        };
        let fifo_delayed = fifo_departures(&delayed, 1.0);
        let lem8 = fifo
            .iter()
            .zip(&fifo_delayed)
            .filter(|(orig, del)| *del < &(**orig - 1e-9))
            .count();

        let mean = |xs: &[f64]| -> f64 {
            xs.iter().zip(&arrivals).map(|(d, a)| d - a).sum::<f64>() / xs.len() as f64
        };
        t.row(vec![
            f4(util),
            jobs.to_string(),
            f4(mean(&fifo)),
            f4(mean(&ps)),
            lem7.to_string(),
            lem8.to_string(),
        ]);
    }
    t.note("violations count pointwise departure-order breaches; the paper proves zero");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_and_ps_slower() {
        let t = run(Scale::Quick);
        let (v7, v8) = (t.col("lem7_violations"), t.col("lem8_violations"));
        let (ft, pt) = (t.col("fifo_T"), t.col("ps_T"));
        for (i, row) in t.rows.iter().enumerate() {
            assert_eq!(row[v7], "0", "row {i}");
            assert_eq!(row[v8], "0", "row {i}");
            assert!(
                t.cell_f64(i, pt) >= t.cell_f64(i, ft),
                "PS mean below FIFO in row {i}"
            );
        }
    }
}
