//! Parallel execution of independent simulation points.
//!
//! The implementation moved to `hyperroute_core::runner` so that
//! [`hyperroute_core::scenario::Sweep`] can fan scenario grids out without
//! depending on this crate; this module re-exports it for existing
//! callers.

pub use hyperroute_core::runner::parallel_map;
