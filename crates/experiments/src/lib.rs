//! Experiment harnesses reproducing every claim of the paper.
//!
//! Each `eNN_*` module regenerates one row of the experiment index in
//! DESIGN.md §4: it sweeps the relevant parameters, runs the exact
//! simulators from `hyperroute-core`, puts the measured values next to the
//! paper's closed-form predictions from `hyperroute-analysis`, and returns
//! a [`table::Table`]. The bench harness (`crates/bench`) prints these
//! tables; EXPERIMENTS.md archives them.
//!
//! Every experiment takes a [`Scale`]: `Quick` keeps runtimes test-friendly
//! (small `d`, short horizons), `Full` is the bench/EXPERIMENTS.md setting.
//! Both run the same code path — only grids and horizons change.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod runner;
pub mod sweep;
pub mod table;

pub mod e01_stability_necessary;
pub mod e02_universal_lower_bound;
pub mod e03_oblivious_lower_bound;
pub mod e04_arc_rates;
pub mod e05_greedy_stability;
pub mod e06_delay_upper_bound;
pub mod e07_greedy_lower_bound;
pub mod e08_fifo_ps_servers;
pub mod e09_ps_dominance;
pub mod e10_product_form;
pub mod e11_slotted_time;
pub mod e12_pipelined_instability;
pub mod e13_p1_exact;
pub mod e14_heavy_traffic;
pub mod e15_butterfly_lower_bound;
pub mod e16_butterfly_arc_rates;
pub mod e17_butterfly_stability;
pub mod e18_butterfly_upper_bound;
pub mod e19_scheme_ablation;
pub mod e20_markovian_routing;
pub mod e21_general_destinations;
pub mod e22_contention_policies;
pub mod e23_dimension_occupancy;
pub mod e24_ring_greedy;
pub mod e25_torus_greedy;
pub mod e26_fault_tolerance;
pub mod e27_multipath;
pub mod e28_smallworld;
pub mod e29_hyperbolic;
pub mod figures;

pub use table::Table;

/// Experiment size: `Quick` for tests, `Full` for the bench harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small grids and horizons (seconds, debug-build friendly).
    Quick,
    /// The EXPERIMENTS.md setting (longer horizons, bigger `d`).
    Full,
}

impl Scale {
    /// Scale a horizon: `Full` uses the given value, `Quick` a fraction.
    pub fn horizon(self, full: f64) -> f64 {
        match self {
            Scale::Quick => (full / 6.0).max(400.0),
            Scale::Full => full,
        }
    }

    /// Cap a dimension for quick runs.
    pub fn dim(self, full: usize) -> usize {
        match self {
            Scale::Quick => full.min(5),
            Scale::Full => full,
        }
    }
}

/// One registered experiment: `(id, harness entry point)`.
pub type ExperimentEntry = (&'static str, fn(Scale) -> Table);

/// Every experiment in index order, for harnesses that run them all.
pub fn all_experiments() -> Vec<ExperimentEntry> {
    vec![
        ("E01", e01_stability_necessary::run),
        ("E02", e02_universal_lower_bound::run),
        ("E03", e03_oblivious_lower_bound::run),
        ("E04", e04_arc_rates::run),
        ("E05", e05_greedy_stability::run),
        ("E06", e06_delay_upper_bound::run),
        ("E07", e07_greedy_lower_bound::run),
        ("E08", e08_fifo_ps_servers::run),
        ("E09", e09_ps_dominance::run),
        ("E10", e10_product_form::run),
        ("E11", e11_slotted_time::run),
        ("E12", e12_pipelined_instability::run),
        ("E13", e13_p1_exact::run),
        ("E14", e14_heavy_traffic::run),
        ("E15", e15_butterfly_lower_bound::run),
        ("E16", e16_butterfly_arc_rates::run),
        ("E17", e17_butterfly_stability::run),
        ("E18", e18_butterfly_upper_bound::run),
        ("E19", e19_scheme_ablation::run),
        ("E20", e20_markovian_routing::run),
        ("E21", e21_general_destinations::run),
        ("E22", e22_contention_policies::run),
        ("E23", e23_dimension_occupancy::run),
        ("E24", e24_ring_greedy::run),
        ("E25", e25_torus_greedy::run),
        ("E26", e26_fault_tolerance::run),
        ("E27", e27_multipath::run),
        ("E28", e28_smallworld::run),
        ("E29", e29_hyperbolic::run),
    ]
}
