//! E27 — beyond the paper: multipath and retry routing make faults
//! survivable on unique-path topologies.
//!
//! E26 showed the detour fallback's limit: it only helps where the
//! topology offers a *same-kind* arc with strict shortest-path progress,
//! so the degree-2 de Bruijn graph and the unique-path butterfly get
//! almost nothing from it. This experiment re-runs E26's
//! delivery-vs-fault-fraction curves under the ranked-alternate
//! fallbacks of the multipath contract (`RoutingTopology::alternate_arcs`):
//!
//! * **Multipath** consults the topology's ranked alternate arcs —
//!   including deliberately-regressing ones like the de Bruijn sibling
//!   shift or the butterfly's fresh-pass back-route — before dropping.
//! * **Retry { budget }** pays for recoveries out of a per-packet
//!   deflection budget carried in the packet's spare header bytes.
//!
//! The headline: on the topologies where detour ≈ drop (de Bruijn) or is
//! rejected outright (butterfly — unique paths have no same-kind
//! alternative), the alternate-arc fallbacks recover most encounters
//! with dead arcs, at the price of a bounded number of extra hops.

use crate::table::{f4, Table};
use crate::Scale;
use hyperroute_core::config::{FaultFallback, FaultMode, FaultSpec};
use hyperroute_core::graph_sim::{graph_ext, GraphDestination, GraphSim};
use hyperroute_core::{Report, Scenario, Topology};
use hyperroute_topology::Butterfly;

/// The fallbacks E27 compares, with table labels.
fn fallbacks_for(topology: &Topology) -> Vec<(&'static str, FaultFallback)> {
    let mut out = vec![
        ("drop", FaultFallback::Drop),
        ("retry8", FaultFallback::Retry { budget: 8 }),
        ("multipath", FaultFallback::Multipath),
    ];
    // The butterfly rejects Detour (greedy paths are unique, so there is
    // never a same-kind arc with progress); everywhere else it is the
    // E26 baseline the new fallbacks must beat.
    if !matches!(topology, Topology::Butterfly { .. }) {
        out.insert(1, ("detour", FaultFallback::Detour));
    }
    // The expander routes greedily on the circular node-id metric, which
    // stalls at metric local minima even fault-free — exactly what the
    // GOAFR-style escape walk recovers and the ranked-alternate
    // fallbacks cannot (there is no strictly-improving alternate at a
    // local minimum).
    if matches!(topology, Topology::Expander { .. }) {
        out.push(("escape16", FaultFallback::Escape { ttl: 16 }));
    }
    out
}

/// The butterfly's drop baseline: validate the scenario with `Multipath`
/// (the user-facing way to run a faulty butterfly), then swap the
/// fallback to `Drop` and drive the graph engine directly. Identical
/// seeds, mask, and workload — only the dead-greedy-arc policy differs.
fn butterfly_counterfactual(
    build: impl Fn(FaultSpec) -> Scenario,
    spec: FaultSpec,
    dim: usize,
) -> Report {
    let mut s = build(FaultSpec {
        fallback: FaultFallback::Multipath,
        ..spec.clone()
    });
    s.workload.faults = Some(spec);
    GraphSim::from_parts(
        Butterfly::new(dim),
        GraphDestination::RowFlip {
            dim,
            p: s.workload.p,
        },
        &s,
        graph_ext,
    )
    .run()
}

/// Delivery rate vs dead-arc fraction, per topology × fallback, over the
/// four multipath-capable topologies.
pub fn run(scale: Scale) -> Table {
    let fractions: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 0.1, 0.25],
        Scale::Full => vec![0.0, 0.05, 0.1, 0.2, 0.3],
    };
    let horizon = scale.horizon(4_000.0);
    let topologies: Vec<(&str, Topology, f64)> = vec![
        ("hypercube", Topology::Hypercube { dim: 4 }, 0.8),
        ("debruijn", Topology::DeBruijn { dim: 6 }, 0.12),
        ("butterfly", Topology::Butterfly { dim: 4 }, 0.3),
        ("fattree", Topology::FatTree { levels: 4 }, 0.25),
        (
            "expander",
            Topology::Expander {
                nodes: 512,
                degree: 4,
                seed: 0xE27,
            },
            0.05,
        ),
    ];

    let mut t = Table::new(
        "E27 (beyond the paper) — delivery rate vs arc-fault fraction under \
         multipath/retry fallbacks",
        &[
            "topology",
            "fault_frac",
            "dead_arcs",
            "fallback",
            "delivered_frac",
            "dropped",
            "hops_meas",
        ],
    );

    for (name, topology, lambda) in &topologies {
        for &fraction in &fractions {
            for (label, fallback) in fallbacks_for(topology) {
                let spec = FaultSpec {
                    mode: FaultMode::Seeded {
                        fraction,
                        seed: 0xFA017 + (fraction * 100.0) as u64,
                    },
                    fallback,
                    dynamics: None,
                };
                let build = |spec: FaultSpec| {
                    Scenario::builder(topology.clone())
                        .lambda(*lambda)
                        .horizon(horizon)
                        .warmup(horizon * 0.15)
                        .seed(0xE27)
                        .faults(Some(spec))
                        .build()
                        .expect("valid scenario")
                };
                let report = match topology {
                    // Validation refuses Drop on the butterfly (any dead
                    // arc on a unique path is fatal), so the baseline is
                    // a counterfactual: assemble the graph engine
                    // directly on an otherwise-identical scenario.
                    Topology::Butterfly { dim } if fallback == FaultFallback::Drop => {
                        butterfly_counterfactual(build, spec, *dim)
                    }
                    _ => build(spec).run().expect("scenario runs"),
                };
                let ext = report.graph().expect("graph extension");
                assert_eq!(
                    report.generated,
                    report.delivered + ext.dropped,
                    "conservation"
                );
                t.row(vec![
                    name.to_string(),
                    f4(fraction),
                    ext.dead_arcs.to_string(),
                    label.to_string(),
                    f4(ext.delivery_fraction),
                    ext.dropped.to_string(),
                    f4(ext.mean_hops),
                ]);
            }
        }
    }
    t.note(
        "multipath consults the topology's ranked alternate arcs (de Bruijn sibling \
         shift, butterfly fresh-pass back-route, fat-tree flipped up arc) before \
         dropping; retry8 additionally charges recoveries against an 8-deflection \
         per-packet budget. The butterfly has no detour row: unique greedy paths \
         leave it no same-kind alternative, so Detour is rejected at validation. \
         The random 4-regular expander greedily routes on the circular node-id \
         metric and stalls at local minima even fault-free; escape16 adds the \
         GOAFR-style best-neighbour walk (TTL 16 paid hops), the only fallback \
         that recovers metric stalls rather than just dead arcs",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternate_arc_fallbacks_beat_the_e26_baselines() {
        let t = run(Scale::Quick);
        let (topo, frac, fb, del) = (
            t.col("topology"),
            t.col("fault_frac"),
            t.col("fallback"),
            t.col("delivered_frac"),
        );
        let get = |topology: &str, fraction: &str, fallback: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[topo] == topology && r[frac] == fraction && r[fb] == fallback)
                .unwrap_or_else(|| panic!("row {topology}/{fraction}/{fallback}"))[del]
                .parse()
                .unwrap()
        };
        for topology in ["hypercube", "debruijn", "butterfly", "fattree"] {
            // No faults → full delivery under every fallback.
            assert_eq!(get(topology, "0", "drop"), 1.0, "{topology}");
            assert_eq!(get(topology, "0", "multipath"), 1.0, "{topology}");
            for fraction in ["0.1000", "0.2500"] {
                let drop = get(topology, fraction, "drop");
                let multipath = get(topology, fraction, "multipath");
                let retry = get(topology, fraction, "retry8");
                assert!(drop < 1.0, "{topology}@{fraction}: faults but no drops");
                assert!(
                    multipath >= drop && retry >= drop,
                    "{topology}@{fraction}: multipath {multipath} / retry {retry} \
                     below drop {drop}"
                );
            }
        }
        // The acceptance bars: the ranked-alternate fallbacks must show a
        // measurable gain (≥ 15% more deliveries) exactly where E26's
        // fallbacks fail — over detour on the de Bruijn graph, and over
        // drop on the butterfly (which rejects detour outright).
        for fraction in ["0.1000", "0.2500"] {
            let db_detour = get("debruijn", fraction, "detour");
            assert!(
                get("debruijn", fraction, "multipath") > db_detour * 1.15,
                "de Bruijn multipath gain over detour at {fraction}"
            );
            assert!(
                get("debruijn", fraction, "retry8") > db_detour * 1.15,
                "de Bruijn retry gain over detour at {fraction}"
            );
            let bf_drop = get("butterfly", fraction, "drop");
            assert!(
                get("butterfly", fraction, "multipath") > bf_drop * 1.15,
                "butterfly multipath gain over drop at {fraction}"
            );
            assert!(
                get("butterfly", fraction, "retry8") > bf_drop * 1.15,
                "butterfly retry gain over drop at {fraction}"
            );
        }
        // The expander's metric greedy stalls even fault-free: only the
        // escape walk recovers those, so it must beat drop everywhere —
        // including the zero-fault column where the alternate-arc
        // fallbacks recover nothing.
        for fraction in ["0", "0.1000", "0.2500"] {
            let ex_drop = get("expander", fraction, "drop");
            let ex_escape = get("expander", fraction, "escape16");
            assert!(
                ex_drop < 1.0,
                "expander@{fraction}: id-metric greedy should stall somewhere"
            );
            assert!(
                ex_escape > ex_drop,
                "expander@{fraction}: escape {ex_escape} not above drop {ex_drop}"
            );
            assert!(
                ex_escape >= get("expander", fraction, "multipath"),
                "expander@{fraction}: escape must recover at least what multipath does"
            );
        }
    }
}
