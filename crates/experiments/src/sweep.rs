//! Parameter grids used across experiments.

/// Evenly spaced grid of `n ≥ 2` points over `[lo, hi]` inclusive.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && hi > lo);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// The standard load-factor grid for delay sweeps (stays below 1).
pub fn rho_grid_standard() -> Vec<f64> {
    vec![0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95]
}

/// A load-factor grid straddling the ρ = 1 stability boundary.
pub fn rho_grid_boundary() -> Vec<f64> {
    vec![0.7, 0.8, 0.9, 0.95, 1.05, 1.1, 1.2, 1.3]
}

/// Heavy-traffic grid (approaching 1 from below).
pub fn rho_grid_heavy() -> Vec<f64> {
    vec![0.9, 0.95, 0.98, 0.99]
}

/// Cartesian product of two slices.
pub fn cartesian<A: Clone, B: Clone>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    xs.iter()
        .flat_map(|x| ys.iter().map(move |y| (x.clone(), y.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn standard_grid_is_stable_region() {
        assert!(rho_grid_standard().iter().all(|&r| r > 0.0 && r < 1.0));
    }

    #[test]
    fn boundary_grid_straddles_one() {
        let g = rho_grid_boundary();
        assert!(g.iter().any(|&r| r < 1.0));
        assert!(g.iter().any(|&r| r > 1.0));
    }

    #[test]
    fn cartesian_product_size() {
        let p = cartesian(&[1, 2, 3], &['a', 'b']);
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], (1, 'a'));
        assert_eq!(p[5], (3, 'b'));
    }
}
