//! E12 — §2.3: the non-greedy pipelined Valiant–Brebner scheme is stable
//! only while `λ·R·d < 1`, so at a fixed load factor it collapses as `d`
//! grows — while greedy routing sails on. This is the paper's motivation
//! for studying the non-idling scheme.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::stability::probe_hypercube;
use hyperroute_core::{Scenario, Scheme, Topology};

/// Fixed ρ = 0.1, growing d: greedy vs pipelined stability.
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![2, 3, 5, 6],
        Scale::Full => vec![2, 3, 4, 5, 6, 7, 8],
    };
    let rounds = match scale {
        Scale::Quick => 200,
        Scale::Full => 600,
    };
    let horizon = scale.horizon(4_000.0);
    let (rho, p) = (0.1, 0.5);
    let lambda = rho / p; // 0.2 per node

    let rows = parallel_map(dims, 0, |d| {
        let greedy = probe_hypercube(d, lambda, p, Scheme::Greedy, horizon, 0xE12 ^ d as u64);
        let pipe = Scenario::builder(Topology::Pipelined { dim: d, rounds })
            .lambda(lambda)
            .p(p)
            .seed(0xE12 ^ d as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (d, greedy, pipe)
    });

    let mut t = Table::new(
        format!("E12 §2.3 — pipelined VaB vs greedy at fixed rho={rho} (lambda={lambda})"),
        &[
            "d",
            "greedy_stable",
            "R_hat",
            "lambda_R_d",
            "pipe_backlog_slope",
            "pipe_stable",
            "theory_pipe_stable",
        ],
    );
    for (d, greedy, pipe) in rows {
        let ext = pipe.pipelined().expect("pipelined report");
        let lrd = lambda * ext.mean_round_length;
        let per_round_input = lambda * (1usize << d) as f64 * ext.mean_round_length;
        let pipe_stable = !ext.looks_unstable(per_round_input);
        t.row(vec![
            d.to_string(),
            yn(greedy.stable),
            f4(ext.round_constant),
            f4(lrd),
            f4(ext.backlog_slope_per_round),
            yn(pipe_stable),
            yn(lrd < 1.0),
        ]);
    }
    t.note("theory: pipeline stable iff λ·R·d < 1 (each node is M/G/1 with service ≈ R·d)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_always_stable_pipeline_collapses() {
        let t = run(Scale::Quick);
        let (gs, ps) = (t.col("greedy_stable"), t.col("pipe_stable"));
        for row in &t.rows {
            assert_eq!(row[gs], "yes", "greedy unstable?! {row:?}");
        }
        // Smallest d: pipeline still fine; largest: swamped.
        assert_eq!(t.rows.first().unwrap()[ps], "yes");
        assert_eq!(t.rows.last().unwrap()[ps], "NO");
    }
}
