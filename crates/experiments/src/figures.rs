//! Structural figures (Figs. 1a, 1b, 2a, 3a, 3b): the paper's diagrams as
//! validated constructions plus Graphviz output.

use crate::table::{yn, Table};
use crate::Scale;
use hyperroute_topology::dot;
use hyperroute_topology::{Butterfly, Hypercube, LevelledNetwork};

/// Structural checks: node/arc/level counts of every figure's object.
pub fn run(_scale: Scale) -> Table {
    let cube3 = Hypercube::new(3);
    let q3 = LevelledNetwork::equivalent_q(cube3, 1.0, 0.5);
    let fig2 = LevelledNetwork::fig2_network(0.3, 0.3, 0.2, 0.5, 0.5);
    let bf2 = Butterfly::new(2);
    let r2 = LevelledNetwork::equivalent_r(bf2, 1.0, 0.5);

    let mut t = Table::new(
        "Figures — structural reproduction of the paper's diagrams",
        &["figure", "object", "quantity", "paper", "built", "match"],
    );
    let mut check = |fig: &str, obj: &str, q: &str, paper: usize, built: usize| {
        t.row(vec![
            fig.into(),
            obj.into(),
            q.into(),
            paper.to_string(),
            built.to_string(),
            yn(paper == built),
        ]);
    };
    check("1a", "3-cube", "nodes", 8, cube3.num_nodes());
    check("1a", "3-cube", "arcs", 24, cube3.num_arcs());
    check("1b", "network Q", "servers", 24, q3.num_servers());
    check("1b", "network Q", "levels", 3, q3.num_levels());
    check("2a", "network G", "servers", 3, fig2.num_servers());
    check("2a", "network G", "levels", 2, fig2.num_levels());
    check("3a", "2-butterfly", "nodes", 12, bf2.num_nodes());
    check("3a", "2-butterfly", "arcs", 16, bf2.num_arcs());
    check("3b", "network R", "servers", 16, r2.num_servers());
    check("3b", "network R", "levels", 2, r2.num_levels());
    t
}

/// The figures as Graphviz DOT documents, ready to render.
pub fn dot_documents() -> Vec<(&'static str, String)> {
    let cube3 = Hypercube::new(3);
    let q3 = LevelledNetwork::equivalent_q(cube3, 1.0, 0.5);
    let fig2 = LevelledNetwork::fig2_network(0.3, 0.3, 0.2, 0.5, 0.5);
    let bf2 = Butterfly::new(2);
    let r2 = LevelledNetwork::equivalent_r(bf2, 1.0, 0.5);
    vec![
        ("fig1a_hypercube_3d.dot", dot::hypercube_dot(cube3)),
        ("fig1b_network_q_3d.dot", dot::levelled_dot(&q3, "Q3")),
        ("fig2a_lemma9_network.dot", dot::levelled_dot(&fig2, "G")),
        ("fig3a_butterfly_2d.dot", dot::butterfly_dot(bf2)),
        ("fig3b_network_r_2d.dot", dot::levelled_dot(&r2, "R2")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_structures_match_paper() {
        let t = run(Scale::Quick);
        let ok = t.col("match");
        assert_eq!(t.rows.len(), 10);
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }

    #[test]
    fn five_dot_documents() {
        let docs = dot_documents();
        assert_eq!(docs.len(), 5);
        for (name, dot) in docs {
            assert!(dot.starts_with("digraph"), "{name} not a digraph");
            assert!(dot.trim_end().ends_with('}'), "{name} unterminated");
        }
    }
}
