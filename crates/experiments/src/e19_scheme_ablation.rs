//! E19 — scheme ablation (§5 discussion + design-choice ablation from
//! DESIGN.md): increasing dimension order vs per-hop random order vs
//! two-phase Valiant "mixing".
//!
//! Findings the table demonstrates:
//! * random order behaves like greedy in delay (the *levelled* structure is
//!   a proof device, not a performance requirement);
//! * Valiant mixing costs ~2× delay at low traffic **and halves the
//!   sustainable load** (effective per-arc rate `λ(1/2 + p)`), the trade-off
//!   §5 predicts.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::stability::probe_hypercube;
use hyperroute_core::{Scenario, Scheme, Topology};

/// Delay and stability of the three schemes across loads.
pub fn run(scale: Scale) -> Table {
    let d = scale.dim(8);
    let horizon = scale.horizon(6_000.0);
    let p = 0.5;
    let schemes = [Scheme::Greedy, Scheme::RandomOrder, Scheme::TwoPhaseValiant];
    let rhos = [0.3, 0.45, 0.8];

    let cases: Vec<(Scheme, f64)> = schemes
        .iter()
        .flat_map(|&s| rhos.iter().map(move |&r| (s, r)))
        .collect();

    let rows = parallel_map(cases, 0, |(scheme, rho)| {
        let lambda = rho / p;
        // Effective per-arc utilisation: ρ for the shortest-path schemes,
        // λ(1/2 + p) for Valiant's two legs.
        let eff = match scheme {
            Scheme::TwoPhaseValiant => lambda * (0.5 + p),
            _ => rho,
        };
        if eff >= 0.98 {
            // Don't run a full measurement on a saturated system; probe it.
            let v = probe_hypercube(d, lambda, p, scheme, horizon / 2.0, 0xE19);
            return (scheme, rho, eff, None, v.stable);
        }
        let r = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .scheme(scheme)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE19 ^ (rho * 100.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (scheme, rho, eff, Some(r.delay.mean), true)
    });

    let mut t = Table::new(
        format!("E19 ablation — dimension order & Valiant mixing (d={d}, p={p})"),
        &["scheme", "rho", "eff_arc_load", "T_meas", "stable"],
    );
    for (scheme, rho, eff, tm, stable) in rows {
        t.row(vec![
            scheme.to_string(),
            f4(rho),
            f4(eff),
            tm.map_or("unstable".into(), f4),
            yn(stable),
        ]);
    }
    t.note("Valiant mixing halves the stability region (eff. load λ(1/2+p)) — the §5 trade-off");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_of_ablation() {
        let t = run(Scale::Quick);
        let (sc, rc, tc, st) = (
            t.col("scheme"),
            t.col("rho"),
            t.col("T_meas"),
            t.col("stable"),
        );
        // Greedy and random-order stable at every load; Valiant unstable at
        // ρ = 0.8 (effective load 1.6).
        let mut greedy_low = None;
        let mut valiant_low = None;
        for row in &t.rows {
            match (row[sc].as_str(), row[rc].as_str()) {
                ("greedy", _) | ("random-order", _) => assert_eq!(row[st], "yes", "{row:?}"),
                ("two-phase-valiant", "0.8000") => {
                    assert_eq!(row[tc], "unstable", "{row:?}")
                }
                _ => {}
            }
            if row[sc] == "greedy" && row[rc] == "0.3000" {
                greedy_low = Some(row[tc].parse::<f64>().unwrap());
            }
            if row[sc] == "two-phase-valiant" && row[rc] == "0.3000" {
                valiant_low = Some(row[tc].parse::<f64>().unwrap());
            }
        }
        // Mixing costs roughly double delay at low load.
        let (g, v) = (greedy_low.unwrap(), valiant_low.unwrap());
        assert!(v > 1.5 * g, "valiant {v} vs greedy {g}");
    }
}
