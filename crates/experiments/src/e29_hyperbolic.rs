//! E29 — beyond the paper: greedy routing on hyperbolic random graphs.
//!
//! Krioukov et al.: scale-free networks embed naturally in the
//! hyperbolic disk, and greedy forwarding on the hyperbolic metric
//! succeeds with high probability at near-optimal stretch. Two parts:
//!
//! 1. **Static walks vs n** — generate disks across a geometric size
//!    ladder, walk deterministic source/destination pairs greedily
//!    ([`hyperroute_sparse::SparseTopology::greedy_walk`]), and compare
//!    the successful walks' hop counts against true shortest paths
//!    ([`hyperroute_sparse::SparseTopology::bfs_distance`]): success
//!    rate and mean stretch
//!    per n, with mean hops tracking the `Θ(log n)` diameter.
//! 2. **Queued delay vs load** — drive the same disk through the full
//!    engine ([`Topology::Hyperbolic`]) at a ladder of arrival rates:
//!    sojourn delay, delivery fraction, and the `SUCCESS |
//!    LOCAL_MINIMUM | DEAD_END` outcome taxonomy under contention.
//!
//! Greedy on a metric embedding *can* stall — the outcome taxonomy (and
//! E27's escape fallback) exists for exactly that reason; the static
//! part measures how rarely it happens on a well-parameterised disk.

use crate::table::{f4, Table};
use crate::Scale;
use hyperroute_core::{Scenario, Topology};
use hyperroute_sparse::hyperbolic;
use hyperroute_topology::RoutingTopology;

/// Disk parameters: `alpha < 1` concentrates mass near the centre and
/// the negative radius offset densifies — the navigable regime.
const ALPHA: f64 = 0.7;
const OFFSET: f64 = -1.5;

/// Deterministic stride sample of distinct (src, dest) pairs.
fn sample_pairs(n: u64, pairs: u64) -> impl Iterator<Item = (u64, u64)> {
    (0..pairs).filter_map(move |i| {
        let src = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) % n;
        let dest = (i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 7).wrapping_add(n / 3) % n;
        (src != dest).then_some((src, dest))
    })
}

/// Success rate, stretch, and loaded delay on hyperbolic disks.
pub fn run(scale: Scale) -> Table {
    let sizes: Vec<u32> = match scale {
        Scale::Quick => vec![512, 1024, 2048],
        Scale::Full => vec![1024, 4096, 16384, 65536],
    };
    let pairs = match scale {
        Scale::Quick => 150,
        Scale::Full => 300,
    };
    // BFS ground truth is O(n + m) per pair; subsample it.
    let bfs_pairs = match scale {
        Scale::Quick => 40,
        Scale::Full => 60,
    };

    let mut t = Table::new(
        "E29 (beyond the paper) — hyperbolic greedy: success rate, stretch, \
         and queued delay under load",
        &[
            "part",
            "n",
            "lambda",
            "success_frac",
            "mean_hops",
            "stretch",
            "delay",
            "local_min",
            "dead_end",
        ],
    );

    // Part 1: static greedy walks vs n.
    for &n in &sizes {
        let topo = hyperbolic(n, ALPHA, OFFSET, 0xE29);
        let nodes = topo.num_nodes() as u64;
        let (mut ok, mut total, mut hops_sum) = (0u64, 0u64, 0u64);
        let (mut stretch_sum, mut stretch_count) = (0.0f64, 0u64);
        for (i, (src, dest)) in sample_pairs(nodes, pairs).enumerate() {
            total += 1;
            if let Ok(hops) = topo.greedy_walk(src, dest) {
                ok += 1;
                hops_sum += hops as u64;
                if (i as u64) < bfs_pairs {
                    if let Some(shortest) = topo.bfs_distance(src, dest) {
                        stretch_sum += hops as f64 / shortest as f64;
                        stretch_count += 1;
                    }
                }
            }
        }
        t.row(vec![
            "static".into(),
            n.to_string(),
            "0".into(),
            f4(ok as f64 / total as f64),
            f4(hops_sum as f64 / ok as f64),
            f4(stretch_sum / stretch_count as f64),
            "nan".into(),
            "0".into(),
            "0".into(),
        ]);
    }

    // Part 2: the engine under load at a fixed n.
    let n = match scale {
        Scale::Quick => 1024,
        Scale::Full => 16384,
    };
    let horizon = scale.horizon(3_000.0);
    for lambda in [0.01, 0.03, 0.06] {
        let r = Scenario::builder(Topology::Hyperbolic {
            nodes: n,
            alpha: ALPHA,
            radius_offset: OFFSET,
            seed: 0xE29,
        })
        .lambda(lambda)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(0x5E29)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs");
        let g = r.graph().expect("graph extension");
        let o = g.outcomes.as_ref().expect("sparse outcome taxonomy");
        assert_eq!(r.generated, r.delivered + g.dropped, "conservation");
        t.row(vec![
            "loaded".into(),
            n.to_string(),
            f4(lambda),
            f4(g.delivery_fraction),
            f4(g.mean_hops),
            "nan".into(),
            f4(r.delay.mean),
            o.local_minimum.to_string(),
            o.dead_end.to_string(),
        ]);
    }
    t.note(
        "disk: R = 2 ln n - 1.5, radial exponent 0.7 (navigable regime). The \
         static part walks deterministic pairs and divides greedy hops by the \
         BFS shortest path on a subsample; stalls count against success_frac. \
         The loaded part drives the engine: unit-service FIFO arcs, uniform \
         destinations, delay in service units, with the packets that stall \
         classified LOCAL_MINIMUM (live neighbours, none closer) or DEAD_END \
         (no live out-arc)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperbolic_greedy_succeeds_with_low_stretch_and_bounded_delay() {
        let t = run(Scale::Quick);
        let (part_c, n_c, succ_c, stretch_c, delay_c) = (
            t.col("part"),
            t.col("n"),
            t.col("success_frac"),
            t.col("stretch"),
            t.col("delay"),
        );
        for r in t.rows.iter().filter(|r| r[part_c] == "static") {
            let succ: f64 = r[succ_c].parse().unwrap();
            let stretch: f64 = r[stretch_c].parse().unwrap();
            assert!(
                succ >= 0.7,
                "n={}: success {succ} below the navigable regime",
                r[n_c]
            );
            assert!(
                (1.0..1.6).contains(&stretch),
                "n={}: greedy stretch {stretch} not near-optimal",
                r[n_c]
            );
        }
        // The loaded part: delay grows with lambda and stays finite.
        let delays: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[part_c] == "loaded")
            .map(|r| r[delay_c].parse().unwrap())
            .collect();
        assert_eq!(delays.len(), 3);
        assert!(delays.iter().all(|d| d.is_finite() && *d > 0.0));
        assert!(
            delays[2] > delays[0],
            "delay must grow with load: {delays:?}"
        );
    }
}
