//! E23 — inside the Prop. 13 proof: per-dimension queue occupancy.
//!
//! Eq. (16): dimension-0 arcs are *exactly* M/D/1, so their mean occupancy
//! is `ρ + ρ²/(2(1-ρ))`. Eq. (15): every dimension holds at least `ρ`
//! (each packet spends one service time per arc). The product-form
//! comparison network caps all of them at `ρ/(1-ρ)`.
//!
//! The table also records a finding the paper's conjecture discussion
//! (§3.3 end) invites: measured occupancy *decreases* with the dimension
//! index — deterministic unit service smooths traffic, so deeper
//! dimensions see streams more regular than Poisson. This is exactly why
//! the PS/product-form bound (geometric occupancy at *every* server) is
//! loose in the bulk.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::{Scenario, Topology};
use hyperroute_queueing::md1;

/// Per-dimension mean occupancy vs the Prop. 13 proof quantities.
pub fn run(scale: Scale) -> Table {
    let d = scale.dim(8);
    let horizon = scale.horizon(12_000.0);
    let p = 0.5;
    let rhos = [0.5, 0.8];

    let runs = parallel_map(rhos.to_vec(), 0, |rho| {
        let report = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(rho / p)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE23 ^ (rho * 100.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (rho, report)
    });

    let mut t = Table::new(
        format!("E23 Prop.13 internals — per-dimension arc occupancy (d={d}, p={p})"),
        &[
            "rho",
            "dim",
            "N_meas",
            "md1_exact",
            ">=rho",
            "<=pf_cap",
            "ok",
        ],
    );
    for (rho, r) in runs {
        let md1_exact = md1::mean_number_in_system(rho);
        let pf_cap = rho / (1.0 - rho);
        let ext = r.hypercube().expect("hypercube report");
        for (dim, &n) in ext.per_dim_mean_queue.iter().enumerate() {
            let md1_cell = if dim == 0 {
                f4(md1_exact)
            } else {
                "-".to_string()
            };
            let ok = if dim == 0 {
                (n - md1_exact).abs() < 0.04 * (1.0 + md1_exact)
            } else {
                n >= rho * 0.95 && n <= pf_cap * 1.05
            };
            t.row(vec![
                f4(rho),
                dim.to_string(),
                f4(n),
                md1_cell,
                yn(n >= rho * 0.95),
                yn(n <= pf_cap * 1.05),
                yn(ok),
            ]);
        }
    }
    t.note("dim 0 is exactly M/D/1 (Eq. 16); occupancy decreases with dim: deterministic service smooths traffic");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proof_quantities_hold() {
        let t = run(Scale::Quick);
        let ok = t.col("ok");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }

    #[test]
    fn smoothing_effect_visible() {
        // Last dimension's occupancy below dimension 0's (strictly, at
        // moderate load and after smoothing accumulates over d-1 stages).
        let t = run(Scale::Quick);
        let (dim_col, n_col, rho_col) = (t.col("dim"), t.col("N_meas"), t.col("rho"));
        let rho0 = t.rows[0][rho_col].clone();
        let first: f64 = t.rows[0][n_col].parse().unwrap();
        let last: f64 = t.rows.iter().rfind(|r| r[rho_col] == rho0).unwrap()[n_col]
            .parse()
            .unwrap();
        assert!(
            last <= first,
            "no smoothing: dim0 {first} vs last dim {last} (dim col {dim_col})"
        );
    }
}
