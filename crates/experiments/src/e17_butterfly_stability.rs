//! E17 — Prop. 16 / Eq. (17): the butterfly is stable iff
//! `λ·max{p, 1-p} < 1`. At fixed λ this carves a stability *window* around
//! `p = 1/2`: vertical arcs bottleneck for large `p`, straight arcs for
//! small `p` — the crossover the paper points out below Eq. (17).

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::stability::probe_butterfly;

/// Sweep p at fixed λ across the stability window.
pub fn run(scale: Scale) -> Table {
    let d = scale.dim(6);
    let horizon = scale.horizon(6_000.0);
    let lambda = 1.8;
    let ps = vec![0.2, 0.35, 0.45, 0.5, 0.55, 0.65, 0.8];

    let rows = parallel_map(ps, 0, |p| {
        let v = probe_butterfly(d, lambda, p, horizon, 0xE17 ^ (p * 100.0) as u64);
        (p, v)
    });

    let mut t = Table::new(
        format!("E17 Prop.16 — butterfly stability window around p=1/2 (d={d}, lambda={lambda})"),
        &[
            "p",
            "rho_bf",
            "bottleneck",
            "drift",
            "stable",
            "paper",
            "agree",
        ],
    );
    for (p, v) in rows {
        let rho = lambda * p.max(1.0 - p);
        let paper_stable = rho < 1.0;
        let bottleneck = if p > 0.5 {
            "vertical"
        } else if p < 0.5 {
            "straight"
        } else {
            "balanced"
        };
        t.row(vec![
            f4(p),
            f4(rho),
            bottleneck.into(),
            f4(v.normalized_drift),
            yn(v.stable),
            yn(paper_stable),
            yn(v.stable == paper_stable),
        ]);
    }
    t.note("stable window: p ∈ (1 - 1/λ, 1/λ) = (0.444, 0.556) at λ = 1.8");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_matches_paper() {
        let t = run(Scale::Quick);
        let agree = t.col("agree");
        for row in &t.rows {
            assert_eq!(row[agree], "yes", "{row:?}");
        }
    }
}
