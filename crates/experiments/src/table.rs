//! Result tables: the experiment harness's output format.
//!
//! Plain-text rendering (aligned columns) for terminals and Markdown for
//! EXPERIMENTS.md. No external table crate — the format is deliberately
//! boring and diff-friendly.

use serde::{Deserialize, Serialize};

/// A titled table of strings with optional footnotes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each must match `columns` in length.
    pub rows: Vec<Vec<String>>,
    /// Footnotes rendered under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} vs {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Aligned plain-text rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Markdown rendering (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Value of cell `(row, col)` parsed as `f64` (test helper).
    pub fn cell_f64(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col].trim().parse().unwrap_or_else(|_| {
            panic!("cell ({row},{col}) = {:?} not numeric", self.rows[row][col])
        })
    }

    /// Column index by header name.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column {name:?}"))
    }
}

/// Format a float with 4 significant-ish digits for table cells.
pub fn f4(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.2}")
    } else if a >= 0.01 {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

/// Yes/no cell.
pub fn yn(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["10".into(), "x,y".into()]);
        t.note("a footnote");
        t
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("== demo =="));
        assert!(s.contains('a') && s.contains('b'));
        assert!(s.contains("2.5"));
        assert!(s.contains("note: a footnote"));
    }

    #[test]
    fn markdown_pipes() {
        let s = sample().render_markdown();
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2.5 |"));
        assert!(s.starts_with("### demo"));
    }

    #[test]
    fn csv_escapes_commas() {
        let s = sample().to_csv();
        assert!(s.contains("\"x,y\""));
        assert!(s.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn cell_and_col_accessors() {
        let t = sample();
        assert_eq!(t.col("b"), 1);
        assert_eq!(t.cell_f64(0, 1), 2.5);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f4(0.0), "0");
        assert_eq!(f4(3.46159), "3.4616");
        assert_eq!(f4(42.0), "42.00");
        assert_eq!(f4(12345.6), "12346");
        assert_eq!(f4(0.0001), "1.00e-4");
        assert_eq!(yn(true), "yes");
        assert_eq!(yn(false), "NO");
    }
}
