//! E25 — beyond the paper: greedy routing on the `k`-ary `d`-cube
//! (torus), the first **trait-impl-only** topology on the blanket
//! `GraphSpec`.
//!
//! The torus composes the paper's two structures — dimension-ordered
//! greedy crossing (the hypercube's canonical order) over bidirectional
//! rings — so its theory composes too: `E[hops] = d·⌊k²/4⌋/k` under
//! uniform destinations, the busiest-direction per-arc load is
//! `ρ = λ·m(m+1)/2k` (`m = ⌊k/2⌋`), and delay grows with `ρ` toward the
//! `ρ < 1` frontier. This experiment sweeps `ρ` at several shapes
//! through a declarative `Sweep` (Lambda axis) and checks mean hops
//! against the closed form, unit-service lower bound `delay >= E[hops]`,
//! and monotone growth in `ρ`.

use crate::table::{f4, Table};
use crate::Scale;
use hyperroute_core::scenario::{Axis, Sweep, SweepParam};
use hyperroute_core::{Scenario, Topology};
use hyperroute_topology::Torus;

/// Delay and mean hops vs per-arc load ρ, per torus shape.
pub fn run(scale: Scale) -> Table {
    let shapes: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(4, 2), (5, 2)],
        Scale::Full => vec![(4, 2), (5, 2), (8, 2), (4, 3)],
    };
    let rhos: Vec<f64> = match scale {
        Scale::Quick => vec![0.3, 0.6, 0.85],
        Scale::Full => vec![0.3, 0.5, 0.7, 0.85, 0.95],
    };
    let horizon = scale.horizon(6_000.0);

    let mut t = Table::new(
        "E25 (beyond the paper) — torus greedy routing: delay vs per-arc load ρ on the blanket GraphSpec",
        &["k", "d", "rho", "E[hops]", "hops_meas", "delay", "delay/E[hops]"],
    );

    for &(radix, dim) in &shapes {
        let torus = Torus::new(radix, dim);
        // λ values hitting the target per-arc loads in the busiest
        // direction: ρ = λ·load_factor(1).
        let lambdas: Vec<f64> = rhos.iter().map(|r| r / torus.load_factor(1.0)).collect();
        let base = Scenario::builder(Topology::Torus { radix, dim })
            .lambda(lambdas[0])
            .horizon(horizon)
            .warmup(horizon * 0.15)
            .seed(0xE25)
            .build()
            .expect("valid scenario");
        let sweep = Sweep::new(base, vec![Axis::new(SweepParam::Lambda, lambdas)]);
        for (i, report) in sweep.run(0).expect("valid grid").into_iter().enumerate() {
            let ext = report.graph().expect("graph extension");
            t.row(vec![
                radix.to_string(),
                dim.to_string(),
                f4(rhos[i]),
                f4(torus.mean_path_length()),
                f4(ext.mean_hops),
                f4(report.delay.mean),
                f4(report.delay.mean / torus.mean_path_length()),
            ]);
        }
    }
    t.note(
        "rho = λ·m(m+1)/2k per arc of the busiest direction (m = ⌊k/2⌋); \
         E[hops] = d·⌊k²/4⌋/k; unit service forces delay >= E[hops], and the \
         gap opens as rho → 1 (the torus analogue of Prop. 12's dp/(1-ρ) ceiling)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_match_closed_form_and_delay_grows_with_rho() {
        let t = run(Scale::Quick);
        let (eh, mh, de, rho) = (
            t.col("E[hops]"),
            t.col("hops_meas"),
            t.col("delay"),
            t.col("rho"),
        );
        let mut prev: Option<(f64, f64)> = None;
        for row in &t.rows {
            let expect: f64 = row[eh].parse().unwrap();
            let measured: f64 = row[mh].parse().unwrap();
            let delay: f64 = row[de].parse().unwrap();
            let r: f64 = row[rho].parse().unwrap();
            assert!(
                (measured - expect).abs() < expect * 0.06 + 0.05,
                "hops {measured} vs theory {expect}: {row:?}"
            );
            assert!(delay >= expect * 0.98, "delay below hop bound: {row:?}");
            if let Some((prev_rho, prev_delay)) = prev {
                if r > prev_rho {
                    assert!(delay > prev_delay, "delay not increasing in rho: {row:?}");
                }
            }
            prev = Some((r, delay));
        }
    }
}
