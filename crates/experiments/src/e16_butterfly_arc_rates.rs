//! E16 — Prop. 15: butterfly arc rates are `λ(1-p)` on straight and `λp`
//! on vertical arcs, at every level.

use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::{Scenario, Topology};

/// Per-level, per-kind measured arrival rates.
pub fn run(scale: Scale) -> Table {
    let d = scale.dim(8);
    let horizon = scale.horizon(8_000.0);
    let (lambda, p) = (1.0, 0.3);

    let r = Scenario::builder(Topology::Butterfly { dim: d })
        .lambda(lambda)
        .p(p)
        .horizon(horizon)
        .warmup(horizon * 0.2)
        .seed(0xE16)
        .build()
        .expect("valid scenario")
        .run()
        .expect("scenario runs");

    let mut t = Table::new(
        format!("E16 Prop.15 — butterfly per-arc rates (d={d}, lambda={lambda}, p={p})"),
        &[
            "level",
            "straight_meas",
            "straight_pred",
            "vertical_meas",
            "vertical_pred",
            "ok",
        ],
    );
    let ext = r.butterfly().expect("butterfly report");
    let (ps, pv) = (lambda * (1.0 - p), lambda * p);
    for lvl in 0..d {
        let s = ext.straight_rate_per_level[lvl];
        let v = ext.vertical_rate_per_level[lvl];
        let ok = (s - ps).abs() / ps < 0.05 && (v - pv).abs() / pv < 0.05;
        t.row(vec![lvl.to_string(), f4(s), f4(ps), f4(v), f4(pv), yn(ok)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_prop15() {
        let t = run(Scale::Quick);
        let ok = t.col("ok");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
