//! E01 — Eq. (2): `ρ = λp < 1` is necessary for stability, and greedy
//! routing achieves it (Prop. 6), so the empirical stability frontier sits
//! exactly at `ρ = 1`.

use crate::runner::parallel_map;
use crate::sweep::rho_grid_boundary;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_core::stability::probe_hypercube;
use hyperroute_core::Scheme;

/// Sweep ρ across the stability boundary and report the queue drift.
pub fn run(scale: Scale) -> Table {
    let d = scale.dim(8);
    let horizon = scale.horizon(6_000.0);
    let p = 0.5;
    let rows = parallel_map(rho_grid_boundary(), 0, |rho| {
        let lambda = rho / p;
        let v = probe_hypercube(
            d,
            lambda,
            p,
            Scheme::Greedy,
            horizon,
            0xE01 + (rho * 100.0) as u64,
        );
        (rho, lambda, v)
    });

    let mut t = Table::new(
        format!("E01 Eq.(2)/Prop.6 — stability frontier at ρ=1 (d={d}, p={p})"),
        &["rho", "lambda", "drift", "stable", "paper", "agree"],
    );
    for (rho, lambda, v) in rows {
        let paper_stable = rho < 1.0;
        t.row(vec![
            f4(rho),
            f4(lambda),
            f4(v.normalized_drift),
            yn(v.stable),
            yn(paper_stable),
            yn(v.stable == paper_stable),
        ]);
    }
    t.note("drift = queue-growth slope / injection rate; paper predicts stable ⇔ ρ < 1");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_matches_paper() {
        let t = run(Scale::Quick);
        let agree = t.col("agree");
        for (i, row) in t.rows.iter().enumerate() {
            assert_eq!(row[agree], "yes", "row {i}: {row:?}");
        }
    }
}
