//! E28 — beyond the paper: greedy hop scaling on Kleinberg small-world
//! lattices.
//!
//! Kleinberg's theorem: on a `d`-dimensional lattice with long-range
//! contacts drawn from `P(ℓ) ∝ ℓ^{-alpha}`, decentralised greedy routing
//! takes `Θ(log²n)` expected hops **exactly at the harmonic exponent
//! `alpha = d`** (scaled by the `links`-per-node budget), and
//! polynomially many hops at any other exponent. This experiment walks
//! the seeded [`hyperroute_sparse::small_world`] generator directly —
//! pure greedy walks, no queueing — across a geometric ladder of lattice
//! sizes up to 10⁶ nodes and three exponents:
//!
//! * `alpha = 0` (uniform long links — the "random graph" end),
//! * `alpha = d = 2` (harmonic — the navigable point),
//! * `alpha = 4` (too local — long links barely help the lattice).
//!
//! The headline column is `hops/log²n`: roughly flat at the harmonic
//! exponent, clearly growing at `alpha = 4` (the long links are too
//! short to matter — `lattice_frac → 1`). The `alpha = 0` curve
//! diverges only asymptotically — its `Ω(n^{2/3})` lower bound (in the
//! lattice side) carries a small constant, so at the sizes the Quick
//! ladder reaches it still tracks the harmonic curve; the Full ladder
//! up to 10⁶ nodes is where the gap opens.
//!
//! Greedy on the fault-free small world never stalls — the lattice ±1
//! arcs always improve the circular L1 metric — so every sampled walk
//! terminates and the table needs no outcome taxonomy.

use crate::table::{f4, Table};
use crate::Scale;
use hyperroute_sparse::small_world;
use hyperroute_topology::RoutingTopology;

/// Deterministic sample of `pairs` (src, dest) pairs over `n` nodes —
/// two decorrelated strides, no RNG (the walk itself is deterministic).
fn sample_pairs(n: u64, pairs: u64) -> impl Iterator<Item = (u64, u64)> {
    (0..pairs).filter_map(move |i| {
        let src = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) % n;
        let dest = (i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 7).wrapping_add(n / 2) % n;
        (src != dest).then_some((src, dest))
    })
}

/// Mean greedy hops vs lattice size, per harmonic exponent.
pub fn run(scale: Scale) -> Table {
    // 2-D lattices: n = side². Full tops out at side = 1000 → 10⁶ nodes.
    let sides: Vec<u32> = match scale {
        Scale::Quick => vec![8, 16, 32, 64],
        Scale::Full => vec![8, 16, 32, 64, 128, 256, 512, 1000],
    };
    let alphas = [0.0, 2.0, 4.0];
    const DIMS: u32 = 2;
    const LINKS: u32 = 1;
    let pairs = match scale {
        Scale::Quick => 200,
        Scale::Full => 400,
    };

    let mut t = Table::new(
        "E28 (beyond the paper) — greedy hops on the Kleinberg small world: \
         Θ(log²n) exactly at the harmonic exponent",
        &[
            "side",
            "n",
            "alpha",
            "mean_hops",
            "hops_per_log2n",
            "lattice_frac",
        ],
    );

    for &side in &sides {
        for &alpha in &alphas {
            let topo = small_world(side, DIMS, LINKS, alpha, 0xE28);
            let n = topo.num_nodes() as u64;
            let lattice_only = small_world(side, DIMS, 0, alpha, 0xE28);
            let (mut hops_sum, mut lattice_sum, mut count) = (0u64, 0u64, 0u64);
            for (src, dest) in sample_pairs(n, pairs) {
                let hops = topo
                    .greedy_walk(src, dest)
                    .expect("fault-free small-world greedy never stalls");
                hops_sum += hops as u64;
                lattice_sum += lattice_only.distance(src, dest) as u64;
                count += 1;
            }
            let mean = hops_sum as f64 / count as f64;
            let log2n = (n as f64).ln().powi(2);
            t.row(vec![
                side.to_string(),
                n.to_string(),
                f4(alpha),
                f4(mean),
                f4(mean / log2n),
                // Fraction of the plain-lattice distance greedy needed:
                // how much the long links actually buy.
                f4(mean / (lattice_sum as f64 / count as f64)),
            ]);
        }
    }
    t.note(
        "2-D circular lattices with 1 long link per node; 200-400 deterministic \
         source/destination pairs per cell, walked greedily on the circular L1 \
         metric. hops_per_log2n is the Θ(log²n) diagnostic: flat at alpha = 2 \
         (harmonic) and clearly growing at alpha = 4 (links too short to \
         matter — lattice_frac → 1). alpha = 0 separates only at the top of \
         the Full ladder: uniform links shorten raw distance at small n, but \
         greedy cannot aim them, so its curve bends polynomial past ~10⁵ nodes",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_exponent_is_the_navigable_point() {
        let t = run(Scale::Quick);
        let (side_c, alpha_c, hops_c, ratio_c, frac_c) = (
            t.col("side"),
            t.col("alpha"),
            t.col("mean_hops"),
            t.col("hops_per_log2n"),
            t.col("lattice_frac"),
        );
        let get = |side: &str, alpha: &str, col: usize| -> f64 {
            t.rows
                .iter()
                .find(|r| r[side_c] == side && r[alpha_c] == alpha)
                .unwrap_or_else(|| panic!("row {side}/{alpha}"))[col]
                .parse()
                .unwrap()
        };
        // At the harmonic exponent the log²n-normalised hop count stays
        // bounded across a 64× node-count range (flat up to noise).
        let small = get("8", "2.0000", ratio_c);
        let large = get("64", "2.0000", ratio_c);
        assert!(
            large < 2.0 * small + 0.5,
            "harmonic ratio must stay bounded: {small} → {large}"
        );
        // Too-local links (alpha = 4) route near-lattice: strictly more
        // hops than harmonic at the largest lattice, and the log²n
        // diagnostic grows much faster than the harmonic one.
        let harmonic = get("64", "2.0000", hops_c);
        assert!(
            get("64", "4.0000", hops_c) > 1.5 * harmonic,
            "too-local links must route clearly worse than harmonic ones"
        );
        let local_growth = get("64", "4.0000", ratio_c) / get("8", "4.0000", ratio_c);
        let harmonic_growth = large / small;
        assert!(
            local_growth > 1.4 * harmonic_growth,
            "alpha = 4 ratio growth {local_growth} must outpace harmonic \
             {harmonic_growth}"
        );
        // lattice_frac tells the same story structurally: at alpha = 4 the
        // long links barely shortcut the lattice; at the harmonic point
        // they cut the walk to well under the lattice distance by n = 4096.
        assert!(
            get("64", "4.0000", frac_c) > 0.85,
            "alpha = 4 long links should barely beat the plain lattice"
        );
        assert!(
            get("64", "2.0000", frac_c) < 0.7,
            "harmonic links must materially shortcut the lattice"
        );
        // alpha = 0 only separates asymptotically — at this scale it must
        // simply stay in the same navigable band as the harmonic curve.
        let uniform = get("64", "0", hops_c);
        assert!(
            uniform > 0.5 * harmonic && uniform < 2.0 * harmonic,
            "uniform links at sub-asymptotic n track the harmonic curve"
        );
    }
}
