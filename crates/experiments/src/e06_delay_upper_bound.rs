//! E06 — Prop. 12 (the headline result): greedy delay satisfies
//! `T ≤ dp/(1-ρ)`: O(d) at fixed load, `1/(1-ρ)` blow-up at fixed d.

use crate::runner::parallel_map;
use crate::sweep::{cartesian, rho_grid_standard};
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::hypercube_bounds;
use hyperroute_core::{Scenario, Topology};

/// The main delay-vs-load sweep.
pub fn run(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![3, 5],
        Scale::Full => vec![4, 6, 8, 10],
    };
    let rhos = rho_grid_standard();
    let horizon = scale.horizon(10_000.0);
    let p = 0.5;

    let rows = parallel_map(cartesian(&dims, &rhos), 0, |(d, rho)| {
        let lambda = rho / p;
        let r = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(lambda)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.2)
            .seed(0xE06 ^ (d as u64) << 8 ^ (rho * 1000.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (d, rho, r.delay.mean, r.delay.ci95)
    });

    let mut t = Table::new(
        format!("E06 Prop.12 — T <= dp/(1-rho) (p={p})"),
        &["d", "rho", "T_meas", "ci95", "UB", "T/UB", "T<=UB"],
    );
    for (d, rho, tm, ci) in rows {
        let lambda = rho / p;
        let ub = hypercube_bounds::greedy_upper_bound(d, lambda, p);
        t.row(vec![
            d.to_string(),
            f4(rho),
            f4(tm),
            f4(ci),
            f4(ub),
            f4(tm / ub),
            yn(tm <= ub * 1.03),
        ]);
    }
    t.note("the paper conjectures the bound tight up to a d-independent factor for p∈(0,1)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_holds_everywhere() {
        let t = run(Scale::Quick);
        let ok = t.col("T<=UB");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }

    #[test]
    fn delay_grows_with_load_at_fixed_d() {
        let t = run(Scale::Quick);
        let (dcol, tcol) = (t.col("d"), t.col("T_meas"));
        // Rows for the first d come first (cartesian order); T must be
        // increasing in ρ.
        let d0 = t.rows[0][dcol].clone();
        let series: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[dcol] == d0)
            .map(|r| r[tcol].parse::<f64>().unwrap())
            .collect();
        assert!(series.windows(2).all(|w| w[1] > w[0] * 0.99), "{series:?}");
    }
}
