//! E14 — heavy traffic (§3.3 end): for fixed `d`, the scaled delay
//! `(1-ρ)·T` stays within the `[p/2, dp]` bracket as `ρ → 1`.

use crate::runner::parallel_map;
use crate::table::{f4, yn, Table};
use crate::Scale;
use hyperroute_analysis::heavy_traffic;
use hyperroute_core::{Scenario, Topology};

/// Scaled-delay measurements approaching the boundary.
pub fn run(scale: Scale) -> Table {
    let d = match scale {
        Scale::Quick => 4,
        Scale::Full => 8,
    };
    let p = 0.5;
    let rhos: Vec<f64> = match scale {
        Scale::Quick => vec![0.9, 0.95],
        Scale::Full => vec![0.9, 0.95, 0.98, 0.99],
    };
    let (lo, hi) = heavy_traffic::hypercube_bracket(d, p);

    let rows = parallel_map(rhos, 0, |rho| {
        // Mixing time scales like 1/(1-ρ)²; stretch the horizon with it.
        let horizon = (scale.horizon(10_000.0) / (1.0 - rho)).min(300_000.0);
        let r = Scenario::builder(Topology::Hypercube { dim: d })
            .lambda(rho / p)
            .p(p)
            .horizon(horizon)
            .warmup(horizon * 0.3)
            .seed(0xE14 ^ (rho * 1000.0) as u64)
            .build()
            .expect("valid scenario")
            .run()
            .expect("scenario runs");
        (rho, r.delay.mean)
    });

    let mut t = Table::new(
        format!(
            "E14 heavy traffic — (1-rho)*T within [p/2, dp] = [{}, {}] (d={d})",
            f4(lo),
            f4(hi)
        ),
        &["rho", "T_meas", "scaled", "in_bracket"],
    );
    for (rho, tm) in rows {
        let scaled = heavy_traffic::scaled_delay(rho, tm);
        t.row(vec![
            f4(rho),
            f4(tm),
            f4(scaled),
            yn(scaled >= lo * 0.9 && scaled <= hi * 1.05),
        ]);
    }
    t.note("paper conjectures the dp end tight for p∈(0,1); the gap is its stated open question");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_delay_in_bracket() {
        let t = run(Scale::Quick);
        let ok = t.col("in_bracket");
        for row in &t.rows {
            assert_eq!(row[ok], "yes", "{row:?}");
        }
    }
}
