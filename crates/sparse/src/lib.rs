//! Seeded sparse graph generators with metric greedy routing.
//!
//! Every topology in `hyperroute-topology` is a small dense regular
//! graph with a closed-form greedy step. This crate is the other half of
//! that split: graphs that are **generated, not enumerated** — a seeded
//! builder streams a random graph into a CSR adjacency
//! ([`SparseGraph`]), an [`Embedding`] defines the distance that greedy
//! descends, and [`SparseTopology`] glues the two into the same
//! [`RoutingTopology`](hyperroute_topology::RoutingTopology) trait the
//! engine already routes. Because metric greedy can stall, `next_arc`
//! may return `None` away from the destination — the engine classifies
//! those as `LOCAL_MINIMUM` (a neighbour exists but none is closer) or
//! `DEAD_END` (no out-arcs) and can recover with the GOAFR-style escape
//! fallback.
//!
//! Generators:
//!
//! * [`small_world`] — Kleinberg's circular lattice plus harmonic-law
//!   long-range contacts (`P(ℓ) ∝ ℓ^{-alpha}`); greedy is Θ(log²n) at
//!   the harmonic exponent `alpha = dims`.
//! * [`hyperbolic`] — Krioukov et al.'s hyperbolic random graph:
//!   power-law degrees emerge from uniform disk placement, and greedy on
//!   the hyperbolic metric succeeds at near-optimal stretch.
//! * [`scale_free`] — erased configuration model with a power-law degree
//!   sequence; no geometry, routed on the circular node-id metric.
//! * [`expander`] — random d-regular graph (an expander whp) on the same
//!   configuration-model path.
//!
//! All four are deterministic: identical parameters and seed produce a
//! byte-identical CSR, on every platform, which the proptest suite pins.
//!
//! # Adding a generator in ~100 LoC
//!
//! A generator is a function `params × seed → SparseTopology`; the
//! walkthrough in the `hyperroute-topology` crate docs builds one end to
//! end. The short version:
//!
//! 1. Draw your random structure with a [`SimRng`](hyperroute_desim::SimRng)
//!    seeded from the scenario seed — never from ambient entropy.
//! 2. Materialise arcs either per node in id order through
//!    [`CsrBuilder::push_node`] (streaming, for lattice-like graphs) or
//!    as an undirected edge list through
//!    [`SparseGraph::from_undirected_edges`] (for pairwise models).
//! 3. Pick the [`Embedding`] greedy should descend — or add a new
//!    variant with a `metric` and a `quantise` arm if your graph has its
//!    own geometry.
//! 4. Return [`SparseTopology::new`] with an analytic mean-hops hint,
//!    and wire a `Topology` arm in `hyperroute-core`'s scenario layer.

mod csr;
mod embed;
mod hyperbolic;
mod scalefree;
mod smallworld;
mod topo;

pub use csr::{CsrBuilder, SparseGraph, MAX_SPARSE_ARCS, MAX_SPARSE_NODES};
pub use embed::{hyperbolic_distance, Embedding, DISK_SCALE};
pub use hyperbolic::hyperbolic;
pub use scalefree::{expander, scale_free};
pub use smallworld::small_world;
pub use topo::SparseTopology;
