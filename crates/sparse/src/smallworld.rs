//! Kleinberg small-world lattice: a `dims`-dimensional circular grid
//! with `links` long-range contacts per node drawn from the harmonic law
//! `P(offset at distance ℓ) ∝ ℓ^{-alpha}`.
//!
//! At `alpha = dims` (the harmonic exponent) greedy routing achieves
//! Θ(log²n) expected hops — the small-world regime this subsystem exists
//! to measure (E28). The sampler is *exact*: it first draws the total
//! circular-L1 distance `ℓ` from the law weighted by the number of
//! lattice offsets at that distance, then draws a uniform offset vector
//! at exactly that distance digit by digit, using per-dimension
//! composition counts. Long links are directed (out only), matching
//! Kleinberg's model; lattice edges are bidirectional.
//!
//! Everything streams through [`CsrBuilder`] in node-id order: peak
//! memory is the finished CSR plus one node's scratch list.

use crate::csr::CsrBuilder;
use crate::embed::Embedding;
use crate::topo::SparseTopology;
use hyperroute_desim::SimRng;

/// Per-coordinate circular offset count: the number of signed offsets
/// `k ∈ {-(side-1)..side-1}` whose circular distance is exactly `k`
/// (1 for `k = 0`, 1 for the antipode of an even cycle, 2 otherwise).
#[inline]
fn coord_ways(k: u32, side: u32) -> u64 {
    if k == 0 || 2 * k == side {
        1
    } else {
        2
    }
}

/// `ways[j][ℓ]` = number of `j`-dimensional circular offset vectors at
/// total L1 distance exactly `ℓ` — the convolution of [`coord_ways`]
/// across dimensions. Rows `0..=dims`; row 0 is the delta at 0.
fn distance_ways(side: u32, dims: u32) -> Vec<Vec<u64>> {
    let per_dim = (side / 2) as usize;
    let mut ways: Vec<Vec<u64>> = Vec::with_capacity(dims as usize + 1);
    ways.push(vec![1u64]);
    for j in 1..=dims as usize {
        let prev = &ways[j - 1];
        let mut row = vec![0u64; per_dim * j + 1];
        for (l, slot) in row.iter_mut().enumerate() {
            let k_max = l.min(per_dim);
            let mut total = 0u64;
            for k in 0..=k_max {
                if let Some(&w) = prev.get(l - k) {
                    total += coord_ways(k as u32, side) * w;
                }
            }
            *slot = total;
        }
        ways.push(row);
    }
    ways
}

/// Exact harmonic-law offset sampler over the circular lattice.
struct HarmonicSampler {
    side: u32,
    dims: u32,
    /// Composition counts, rows `0..=dims` (see [`distance_ways`]).
    ways: Vec<Vec<u64>>,
    /// Cumulative `ways[dims][ℓ] · ℓ^{-alpha}` over `ℓ = 1..=D`
    /// (`cdf[i]` covers distance `i + 1`).
    cdf: Vec<f64>,
}

impl HarmonicSampler {
    fn new(side: u32, dims: u32, alpha: f64) -> HarmonicSampler {
        let ways = distance_ways(side, dims);
        let top = &ways[dims as usize];
        let mut cdf = Vec::with_capacity(top.len().saturating_sub(1));
        let mut acc = 0.0f64;
        for (l, &w) in top.iter().enumerate().skip(1) {
            acc += w as f64 * (l as f64).powf(-alpha);
            cdf.push(acc);
        }
        assert!(
            acc.is_finite() && acc > 0.0,
            "harmonic normaliser must be positive"
        );
        HarmonicSampler {
            side,
            dims,
            ways,
            cdf,
        }
    }

    /// Draw one long-range contact for `node`: total distance `ℓ` from
    /// the harmonic CDF, then a uniform offset vector at that exact
    /// distance (digit-by-digit, conditioned on the remaining dimensions
    /// being able to absorb the remaining distance), then signs.
    fn draw(&self, node: u64, rng: &mut SimRng) -> u64 {
        let total = *self.cdf.last().expect("at least one distance");
        let target = rng.uniform01() * total;
        let mut l_left = self.cdf.partition_point(|&c| c <= target) + 1;
        // Guard against u ~ 1.0 rounding past the final bucket.
        l_left = l_left.min(self.cdf.len());

        let side = self.side as u64;
        let per_dim = (self.side / 2) as usize;
        let mut dest = 0u64;
        let mut place = 1u64;
        let mut digits = node;
        for rem in (1..=self.dims as usize).rev() {
            let digit = digits % side;
            digits /= side;
            let k = if rem == 1 {
                // Last dimension absorbs whatever distance remains.
                l_left
            } else {
                let below = &self.ways[rem - 1];
                let k_max = l_left.min(per_dim);
                let mut weights_total = 0u64;
                for k in 0..=k_max {
                    weights_total += coord_ways(k as u32, self.side)
                        * below.get(l_left - k).copied().unwrap_or(0);
                }
                debug_assert!(weights_total > 0, "distance always decomposable");
                let mut pick = rng.below(weights_total as usize) as u64;
                let mut chosen = 0usize;
                for k in 0..=k_max {
                    let w = coord_ways(k as u32, self.side)
                        * below.get(l_left - k).copied().unwrap_or(0);
                    if pick < w {
                        chosen = k;
                        break;
                    }
                    pick -= w;
                }
                chosen
            };
            l_left -= k;
            let offset = if k > 0 && coord_ways(k as u32, self.side) == 2 && rng.below(2) == 1 {
                side - k as u64 // negative direction
            } else {
                k as u64
            };
            dest += ((digit + offset) % side) * place;
            place *= side;
        }
        debug_assert_eq!(l_left, 0);
        dest
    }
}

/// Generate a seeded Kleinberg small-world graph: a `dims`-dimensional
/// circular lattice of side `side` (bidirectional ±1 edges per
/// dimension) plus `links` directed long-range contacts per node under
/// `P(ℓ) ∝ ℓ^{-alpha}`. Greedy routes on the lattice's circular L1
/// metric.
///
/// Deterministic: identical inputs yield a byte-identical CSR.
pub fn small_world(side: u32, dims: u32, links: u32, alpha: f64, seed: u64) -> SparseTopology {
    assert!(side >= 3, "side below 3 degenerates the circular lattice");
    assert!((1..=4).contains(&dims), "dims must be in 1..=4");
    let nodes = (side as u64)
        .checked_pow(dims)
        .and_then(|n| u32::try_from(n).ok())
        .expect("side^dims must fit the sparse node ceiling") as usize;

    let sampler = (links > 0).then(|| HarmonicSampler::new(side, dims, alpha));
    let mut rng = SimRng::new(seed);
    let mut builder = CsrBuilder::new(nodes, 2 * dims as usize + links as usize);
    let mut scratch: Vec<u32> = Vec::with_capacity(2 * dims as usize + links as usize);
    let side64 = side as u64;
    for node in 0..nodes as u64 {
        // Lattice edges: ±1 in each dimension, circularly.
        let mut place = 1u64;
        let mut digits = node;
        for _ in 0..dims {
            let digit = digits % side64;
            digits /= side64;
            let up = node - digit * place + ((digit + 1) % side64) * place;
            let down = node - digit * place + ((digit + side64 - 1) % side64) * place;
            scratch.push(up as u32);
            scratch.push(down as u32);
            place *= side64;
        }
        // Long-range contacts (directed out-links).
        if let Some(s) = &sampler {
            for _ in 0..links {
                scratch.push(s.draw(node, &mut rng) as u32);
            }
        }
        builder.push_node(node as u32, &mut scratch);
    }

    let n = nodes as f64;
    let hint = n.ln().powi(2) / (dims as f64 * links.max(1) as f64);
    SparseTopology::new(
        builder.finish(),
        Embedding::Lattice { side, dims },
        hint.max(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperroute_topology::RoutingTopology;

    #[test]
    fn ways_tables_count_lattice_shells() {
        // 1-D cycle of 8: distances 0..=4 with the antipode single.
        let w = distance_ways(8, 1);
        assert_eq!(w[1], vec![1, 2, 2, 2, 1]);
        // 2-D: shell sizes must sum to side².
        let w2 = distance_ways(8, 2);
        assert_eq!(w2[2].iter().sum::<u64>(), 64);
        // Shell 1 of the 2-D torus has 4 nodes.
        assert_eq!(w2[2][1], 4);
    }

    #[test]
    fn pure_lattice_matches_torus_structure() {
        let t = small_world(5, 2, 0, 2.0, 1);
        assert_eq!(t.num_nodes(), 25);
        // Every node has exactly 4 lattice neighbours.
        assert_eq!(t.num_arcs(), 100);
        for v in 0..25 {
            assert_eq!(t.graph().degree(v), 4, "node {v}");
        }
        // Greedy always succeeds on the pure lattice.
        for (src, dst) in [(0u64, 24u64), (7, 13), (20, 3)] {
            let hops = t
                .greedy_walk(src, dst)
                .expect("lattice greedy never stalls");
            assert_eq!(hops, t.distance(src, dst));
        }
    }

    #[test]
    fn long_links_are_deterministic_and_nonself() {
        let a = small_world(8, 2, 2, 2.0, 42);
        let b = small_world(8, 2, 2, 2.0, 42);
        assert_eq!(a.graph(), b.graph());
        let c = small_world(8, 2, 2, 2.0, 43);
        assert_ne!(a.graph(), c.graph(), "seed must matter");
        // Degree ≥ lattice, ≤ lattice + links; no self-loops by builder.
        for v in 0..a.num_nodes() {
            let d = a.graph().degree(v);
            assert!((4..=6).contains(&d), "node {v} degree {d}");
            assert!(!a.graph().neighbors(v).contains(&(v as u32)));
        }
    }

    #[test]
    fn harmonic_law_prefers_short_links() {
        // alpha = dims = 1 on a large cycle: short offsets dominate.
        let t = small_world(1001, 1, 1, 1.0, 7);
        let e = Embedding::Lattice {
            side: 1001,
            dims: 1,
        };
        let (mut short, mut long) = (0u32, 0u32);
        for v in 0..t.num_nodes() {
            for &h in t.graph().neighbors(v) {
                let d = e.metric(v as u64, h as u64);
                if d > 1.5 {
                    // A long link; half the cycle is "far".
                    if d <= 50.0 {
                        short += 1;
                    } else {
                        long += 1;
                    }
                }
            }
        }
        // Under ℓ^{-1}, P(ℓ ≤ 50) = H(50)/H(500) ≈ 0.63 — far above the
        // uniform 10%. Require a clear majority.
        assert!(
            short > long,
            "harmonic law should favour short links: {short} vs {long}"
        );
    }
}
