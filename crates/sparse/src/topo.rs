//! [`SparseTopology`]: metric greedy routing over a generated CSR graph.
//!
//! This is the sparse half of the dense-vs-sparse split (see the
//! `hyperroute-topology` crate docs): a [`SparseGraph`] adjacency plus an
//! [`Embedding`] metric implement [`RoutingTopology`] with **no
//! closed-form next arc** — the greedy step scans the node's CSR row for
//! the neighbour strictly closest to the destination. Because metric
//! greedy can stall, `next_arc` here exercises the trait's relaxed
//! contract: it returns `None` not only at the destination but also at a
//! **local minimum** (no neighbour strictly closer) or a **dead end**
//! (no out-arcs at all); the engine's `GraphSpec` maps that to the
//! `LOCAL_MINIMUM`/`DEAD_END` route outcomes and, when configured, the
//! GOAFR-style escape fallback.

use crate::csr::SparseGraph;
use crate::embed::Embedding;
use hyperroute_topology::RoutingTopology;

/// A generated sparse graph routed by embedding-metric greedy.
#[derive(Clone, Debug)]
pub struct SparseTopology {
    graph: SparseGraph,
    embed: Embedding,
    /// Expected greedy hop count under uniform destinations — the
    /// scheduler-sizing hint. Analytic per generator (the trait default
    /// would sample quantised *metric* values, which are not hops).
    hops_hint: f64,
}

impl SparseTopology {
    /// Assemble a routed topology from a generator's parts.
    pub fn new(graph: SparseGraph, embed: Embedding, hops_hint: f64) -> SparseTopology {
        SparseTopology {
            graph,
            embed,
            hops_hint,
        }
    }

    /// The underlying CSR adjacency.
    pub fn graph(&self) -> &SparseGraph {
        &self.graph
    }

    /// The embedding metric.
    pub fn embedding(&self) -> &Embedding {
        &self.embed
    }

    /// The embedding distance between two nodes (unquantised).
    pub fn metric(&self, u: u64, v: u64) -> f64 {
        self.embed.metric(u, v)
    }

    /// Walk the greedy route from `src` to `dest` without an engine:
    /// `Ok(hops)` on delivery, `Err(stall_node)` at a local minimum or
    /// dead end. Experiment harnesses use this for success-rate and
    /// stretch measurements decoupled from queueing.
    pub fn greedy_walk(&self, src: u64, dest: u64) -> Result<usize, u64> {
        let mut at = src;
        let mut hops = 0usize;
        while at != dest {
            match self.next_arc(at, dest) {
                Some(arc) => {
                    at = self.graph.arc_head(arc) as u64;
                    hops += 1;
                }
                None => return Err(at),
            }
        }
        Ok(hops)
    }

    /// Breadth-first shortest-path hop count from `src` to `dest`
    /// (`None` if unreachable). O(n + m) with a scratch frontier —
    /// experiment-harness use only (stretch baselines).
    pub fn bfs_distance(&self, src: u64, dest: u64) -> Option<usize> {
        if src == dest {
            return Some(0);
        }
        let n = self.graph.num_nodes();
        let mut dist = vec![u32::MAX; n];
        dist[src as usize] = 0;
        let mut frontier = vec![src as u32];
        let mut next = Vec::new();
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            for &u in &frontier {
                for &v in self.graph.neighbors(u as usize) {
                    if dist[v as usize] == u32::MAX {
                        if v as u64 == dest {
                            return Some(depth as usize);
                        }
                        dist[v as usize] = depth;
                        next.push(v);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        None
    }
}

impl RoutingTopology for SparseTopology {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_arcs(&self) -> usize {
        self.graph.num_arcs()
    }

    /// Metric greedy: the arc to the neighbour with the smallest
    /// embedding distance to `dest`, provided it is **strictly** smaller
    /// than the current node's (ties between neighbours break to the
    /// lowest arc index). `None` at the destination — and, unlike the
    /// dense topologies, at a local minimum or dead end. The scan
    /// compares [`Embedding::greedy_key`] values — order-identical to
    /// the metric but without its transcendental tail, which matters
    /// because power-law hubs make this row scan the routing hot loop.
    fn next_arc(&self, node: u64, dest: u64) -> Option<usize> {
        if node == dest {
            return None;
        }
        let range = self.graph.out_range(node as usize);
        let key = self.embed.key_to(dest);
        let mut best: Option<(f64, usize)> = None;
        for arc in range {
            let head = self.graph.arc_head(arc) as u64;
            if head == dest {
                return Some(arc);
            }
            let m = key.key(head);
            if best.is_none_or(|(bm, _)| m < bm) {
                best = Some((m, arc));
            }
        }
        let (m, arc) = best?;
        (m < key.key(node)).then_some(arc)
    }

    fn arc_tail(&self, arc: usize) -> u64 {
        self.graph.arc_tail(arc) as u64
    }

    fn arc_head(&self, arc: usize) -> u64 {
        self.graph.arc_head(arc) as u64
    }

    /// The quantised embedding distance — **not** a hop count: it orders
    /// nodes for strict-progress checks (detour/escape) and quantises
    /// deliberately coarsely on continuous metrics.
    fn distance(&self, node: u64, dest: u64) -> usize {
        self.embed.quantise(self.embed.metric(node, dest))
    }

    /// Every other strictly-improving neighbour, ranked by (quantised
    /// distance, arc index) — the multipath fallback's candidate list.
    fn alternate_arcs(&self, node: u64, dest: u64, out: &mut Vec<usize>) {
        let Some(greedy) = self.next_arc(node, dest) else {
            return;
        };
        let here = self.distance(node, dest);
        let start = out.len();
        for arc in self.graph.out_range(node as usize) {
            if arc == greedy {
                continue;
            }
            let d = self.distance(self.graph.arc_head(arc) as u64, dest);
            if d < here {
                out.push(arc);
            }
        }
        let ranked = &mut out[start..];
        ranked.sort_by_key(|&a| (self.distance(self.graph.arc_head(a) as u64, dest), a));
    }

    /// CSR rows group arcs by tail, so the engine's fault machinery can
    /// scan out-arcs directly instead of building its own index.
    fn out_arc_range(&self, node: u64) -> Option<std::ops::Range<usize>> {
        Some(self.graph.out_range(node as usize))
    }

    fn mean_distance_hint(&self) -> f64 {
        self.hops_hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    /// A 6-cycle with one chord (1–4): ring-offset greedy from 0 to 3
    /// routes 0→1→... and the chord creates alternates.
    fn cycle_with_chord() -> SparseTopology {
        let mut b = CsrBuilder::new(6, 3);
        let mut scratch = Vec::new();
        for v in 0..6u32 {
            scratch.extend([(v + 1) % 6, (v + 5) % 6]);
            if v == 1 {
                scratch.push(4);
            }
            if v == 4 {
                scratch.push(1);
            }
            b.push_node(v, &mut scratch);
        }
        SparseTopology::new(b.finish(), Embedding::RingOffset { n: 6 }, 1.5)
    }

    #[test]
    fn greedy_descends_the_metric() {
        let t = cycle_with_chord();
        assert_eq!(t.greedy_walk(0, 3), Ok(3));
        assert_eq!(t.greedy_walk(3, 3), Ok(0));
        // From 1, destination 4: the chord is distance 0 — direct hit.
        let arc = t.next_arc(1, 4).unwrap();
        assert_eq!(t.arc_head(arc), 4);
        // Strict progress on every step.
        let mut at = 0u64;
        while let Some(arc) = t.next_arc(at, 3) {
            let next = t.arc_head(arc);
            assert!(t.distance(next, 3) < t.distance(at, 3));
            at = next;
        }
        assert_eq!(at, 3);
    }

    #[test]
    fn local_minimum_and_dead_end_return_none() {
        // Path graph 0–1–2 plus isolated node 3, ring metric over n=4:
        // from 2 toward 3 the only neighbour (1) is farther → local
        // minimum; from 3 there are no arcs at all → dead end.
        let mut b = CsrBuilder::new(4, 2);
        let mut scratch = Vec::new();
        scratch.push(1);
        b.push_node(0, &mut scratch);
        scratch.extend([0, 2]);
        b.push_node(1, &mut scratch);
        scratch.push(1);
        b.push_node(2, &mut scratch);
        b.push_node(3, &mut scratch);
        let t = SparseTopology::new(b.finish(), Embedding::RingOffset { n: 4 }, 1.0);
        assert_eq!(t.next_arc(2, 3), None, "local minimum");
        assert_eq!(t.greedy_walk(2, 3), Err(2));
        assert_eq!(t.next_arc(3, 0), None, "dead end");
        assert_eq!(t.out_arc_range(3), Some(4..4));
        // Delivery still returns None.
        assert_eq!(t.next_arc(1, 1), None);
    }

    #[test]
    fn alternates_are_strictly_improving_and_ranked() {
        let t = cycle_with_chord();
        let mut alts = Vec::new();
        // At node 1 toward 5: greedy is 1→0 (distance 1); the chord 1→4
        // (distance 1) is an equally-ranked strict improvement over
        // distance(1,5) = 2.
        t.alternate_arcs(1, 5, &mut alts);
        let here = t.distance(1, 5);
        let greedy = t.next_arc(1, 5).unwrap();
        for &a in &alts {
            assert_ne!(a, greedy);
            assert!(t.distance(t.arc_head(a), 5) < here);
        }
        assert!(!alts.is_empty(), "the chord gives node 1 an alternate");
    }

    #[test]
    fn bfs_distance_finds_chords() {
        let t = cycle_with_chord();
        assert_eq!(t.bfs_distance(0, 3), Some(3));
        // 0→1→4 via the chord beats the 4-hop ring walk.
        assert_eq!(t.bfs_distance(0, 4), Some(2));
        assert_eq!(t.bfs_distance(2, 2), Some(0));
    }
}
