//! Compressed sparse row adjacency: the materialised form every
//! generator streams into.
//!
//! A [`SparseGraph`] is two flat arrays — `row_ptr` (one offset per node,
//! plus a terminator) and `adj` (the concatenated, per-node-sorted
//! out-neighbour lists). The **dense arc index space** the engine routes
//! over is simply the position in `adj`: arc `a` has head `adj[a]` and
//! tail "the node whose row contains `a`" (a binary search over
//! `row_ptr`, used only on cold paths). Arc indices therefore cover
//! `0..num_arcs()` without gaps and are grouped by tail node — which is
//! exactly the layout the fault fallbacks' detour scans want, so the
//! core engine skips building its own counting-sort copy
//! (`RoutingTopology::out_arc_range`).

/// Node ceiling shared by every generator: `2^26` nodes keeps node ids
/// comfortably inside the engine's packed 32-bit arc metadata and bounds
/// a worst-case CSR at a few hundred MiB.
pub const MAX_SPARSE_NODES: usize = 1 << 26;

/// Arc ceiling: the engine packs a dense arc index plus a busy flag into
/// one `u32` word, so arc indices must stay below `2^31`.
pub const MAX_SPARSE_ARCS: usize = 1 << 31;

/// A finished CSR adjacency. Immutable once built; byte-identical for
/// identical generator inputs (the determinism contract every generator
/// test pins).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseGraph {
    /// `row_ptr[v]..row_ptr[v + 1]` is node `v`'s slice of `adj`.
    row_ptr: Vec<u32>,
    /// Concatenated out-neighbour lists, sorted within each row.
    adj: Vec<u32>,
}

impl SparseGraph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed arcs (the dense arc index space).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.adj.len()
    }

    /// The sorted out-neighbours of `node`.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        &self.adj[self.row_ptr[node] as usize..self.row_ptr[node + 1] as usize]
    }

    /// Dense arc range out of `node` (positions in `adj`).
    #[inline]
    pub fn out_range(&self, node: usize) -> std::ops::Range<usize> {
        self.row_ptr[node] as usize..self.row_ptr[node + 1] as usize
    }

    /// Head of arc `arc` — O(1), the hot accessor.
    #[inline]
    pub fn arc_head(&self, arc: usize) -> u32 {
        self.adj[arc]
    }

    /// Tail of arc `arc` — a binary search over `row_ptr`; cold paths
    /// only (report assembly, fault-mask validation).
    pub fn arc_tail(&self, arc: usize) -> u32 {
        debug_assert!(arc < self.adj.len());
        (self.row_ptr.partition_point(|&p| p as usize <= arc) - 1) as u32
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn degree(&self, node: usize) -> usize {
        (self.row_ptr[node + 1] - self.row_ptr[node]) as usize
    }

    /// The raw row-pointer array (determinism tests compare it directly).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The raw adjacency array (determinism tests compare it directly).
    pub fn adj(&self) -> &[u32] {
        &self.adj
    }

    /// Build from an **undirected** edge list: every `(u, v)` pair
    /// materialises arcs `u→v` and `v→u`. Self-loops are dropped,
    /// duplicate edges are merged (the erased configuration model), and
    /// rows come out sorted. Consumes the edge list (it is sorted in
    /// place; peak memory is the edge list plus the CSR).
    pub fn from_undirected_edges(nodes: usize, edges: &mut Vec<(u32, u32)>) -> SparseGraph {
        assert!(
            nodes <= MAX_SPARSE_NODES,
            "too many nodes for a sparse graph"
        );
        // Normalise to (min, max), drop self-loops, dedup.
        edges.retain(|&(u, v)| u != v);
        for e in edges.iter_mut() {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        assert!(
            edges.len() * 2 <= MAX_SPARSE_ARCS,
            "too many arcs for the engine's packed 31-bit arc word"
        );
        // Counting sort of both arc directions into rows.
        let mut row_ptr = vec![0u32; nodes + 1];
        for &(u, v) in edges.iter() {
            row_ptr[u as usize + 1] += 1;
            row_ptr[v as usize + 1] += 1;
        }
        for i in 0..nodes {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut adj = vec![0u32; edges.len() * 2];
        // The edge list is sorted by (min, max), so filling in order keeps
        // every u-row sorted; v-rows receive their heads in ascending u
        // order too (u ranges over edges sorted lexicographically), hence
        // both directions come out sorted without a per-row pass.
        for &(u, v) in edges.iter() {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }
        // Second pass for the reverse direction: iterating the sorted edge
        // list emits v-row heads in ascending u, but rows interleave, so
        // the cursor layout still yields sorted rows (heads of row v are
        // exactly the sorted u's paired with v).
        for &(u, v) in edges.iter() {
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // The two passes write disjoint halves of some rows out of order
        // (forward heads v > node, reverse heads u < node can interleave);
        // restore per-row sortedness where needed.
        let graph = SparseGraph { row_ptr, adj };
        let mut fixed = graph;
        for v in 0..nodes {
            let r = fixed.out_range(v);
            fixed.adj[r].sort_unstable();
        }
        fixed
    }
}

/// Streaming CSR builder for generators that emit nodes in id order
/// (the small-world lattice): per node, hand over the out-neighbour
/// scratch list; the builder sorts, dedups, strips self-loops and
/// appends. Peak memory is the growing CSR plus one node's scratch —
/// the "never hold more than CSR + frontier" contract.
#[derive(Debug)]
pub struct CsrBuilder {
    row_ptr: Vec<u32>,
    adj: Vec<u32>,
}

impl CsrBuilder {
    /// Start a builder expecting `nodes` nodes and roughly
    /// `arcs_per_node` out-arcs each (capacity hints only).
    pub fn new(nodes: usize, arcs_per_node: usize) -> CsrBuilder {
        assert!(
            nodes <= MAX_SPARSE_NODES,
            "too many nodes for a sparse graph"
        );
        let mut row_ptr = Vec::with_capacity(nodes + 1);
        row_ptr.push(0);
        CsrBuilder {
            row_ptr,
            adj: Vec::with_capacity(nodes.saturating_mul(arcs_per_node)),
        }
    }

    /// Append the next node's out-neighbours (nodes must be pushed in id
    /// order). The scratch list is sorted and deduped in place; entries
    /// equal to `node` (self-loops) are dropped.
    pub fn push_node(&mut self, node: u32, neighbors: &mut Vec<u32>) {
        debug_assert_eq!(node as usize + 1, self.row_ptr.len(), "push nodes in order");
        neighbors.sort_unstable();
        neighbors.dedup();
        neighbors.retain(|&v| v != node);
        self.adj.extend_from_slice(neighbors);
        assert!(
            self.adj.len() <= MAX_SPARSE_ARCS,
            "too many arcs for the engine's packed 31-bit arc word"
        );
        self.row_ptr.push(self.adj.len() as u32);
        neighbors.clear();
    }

    /// Finish the build.
    pub fn finish(self) -> SparseGraph {
        SparseGraph {
            row_ptr: self.row_ptr,
            adj: self.adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_dedups_and_strips_self_loops() {
        let mut b = CsrBuilder::new(3, 2);
        let mut scratch = vec![2u32, 1, 2, 0];
        b.push_node(0, &mut scratch);
        assert!(scratch.is_empty());
        scratch.extend([0u32, 2]);
        b.push_node(1, &mut scratch);
        b.push_node(2, &mut scratch);
        let g = b.finish();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.arc_tail(0), 0);
        assert_eq!(g.arc_tail(2), 1);
        assert_eq!(g.arc_head(3), 2);
    }

    #[test]
    fn undirected_edge_list_builds_symmetric_sorted_rows() {
        let mut edges = vec![(1u32, 0u32), (0, 2), (2, 1), (1, 2), (3, 3)];
        let g = SparseGraph::from_undirected_edges(4, &mut edges);
        // Self-loop (3,3) dropped, duplicate (2,1)/(1,2) merged.
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        for arc in 0..g.num_arcs() {
            let (t, h) = (g.arc_tail(arc), g.arc_head(arc));
            assert!(g.neighbors(h as usize).contains(&t), "arc {arc} asymmetric");
        }
    }
}
