//! Configuration-model generators: scale-free degree sequences
//! (power-law `P(k) ∝ k^{-gamma}`) and random d-regular expanders, both
//! built by uniform stub matching on the shared CSR path.
//!
//! The matching is the **erased** configuration model: stubs are paired
//! by a seeded Fisher–Yates shuffle, then self-loops are dropped and
//! multi-edges merged ([`SparseGraph::from_undirected_edges`] does
//! both), which preserves the degree law asymptotically. Neither family
//! has a geometric embedding, so greedy routes on the neutral
//! [`Embedding::RingOffset`] metric — these graphs exist to exercise the
//! `LOCAL_MINIMUM`/`DEAD_END` outcome taxonomy and (for the expander)
//! E27's fault-survivability comparison, not to showcase greedy.

use crate::csr::SparseGraph;
use crate::embed::Embedding;
use crate::topo::SparseTopology;
use hyperroute_desim::SimRng;

/// Pair stubs uniformly at random (Fisher–Yates, seeded) and erase
/// self-loops/multi-edges. `degrees.len()` is the node count; an odd
/// stub total is fixed up by bumping node 0.
fn configuration_model(mut degrees: Vec<u32>, rng: &mut SimRng) -> SparseGraph {
    let nodes = degrees.len();
    let total: u64 = degrees.iter().map(|&d| d as u64).sum();
    if total % 2 == 1 {
        degrees[0] += 1;
    }
    let mut stubs: Vec<u32> = Vec::with_capacity((total + 1) as usize);
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as u32, d as usize));
    }
    // Fisher–Yates: uniform over matchings once consecutive stubs pair.
    for i in (1..stubs.len()).rev() {
        let j = rng.below(i + 1);
        stubs.swap(i, j);
    }
    let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    SparseGraph::from_undirected_edges(nodes, &mut edges)
}

/// Draw a power-law degree sequence `P(k) ∝ k^{-gamma}` over
/// `k ∈ min_degree..=kmax` with the natural cutoff `kmax = √n`.
fn power_law_degrees(nodes: u32, gamma: f64, min_degree: u32, rng: &mut SimRng) -> Vec<u32> {
    let kmax = ((nodes as f64).sqrt() as u32).max(min_degree);
    let mut cdf = Vec::with_capacity((kmax - min_degree + 1) as usize);
    let mut acc = 0.0f64;
    for k in min_degree..=kmax {
        acc += (k as f64).powf(-gamma);
        cdf.push(acc);
    }
    (0..nodes)
        .map(|_| {
            let u = rng.uniform01() * acc;
            min_degree + cdf.partition_point(|&c| c <= u) as u32
        })
        .collect()
}

/// Generate a seeded scale-free graph on `nodes` nodes with power-law
/// exponent `gamma > 1` and minimum degree `min_degree` (erased
/// configuration model). Greedy routes on the circular node-id metric.
///
/// Deterministic: identical inputs yield a byte-identical CSR.
pub fn scale_free(nodes: u32, gamma: f64, min_degree: u32, seed: u64) -> SparseTopology {
    assert!(nodes >= 4, "need at least four nodes");
    assert!(gamma > 1.0 && gamma.is_finite(), "gamma must exceed 1");
    assert!(
        min_degree >= 1 && min_degree < nodes,
        "min_degree must be in 1..nodes"
    );
    let mut rng = SimRng::new(seed);
    let degrees = power_law_degrees(nodes, gamma, min_degree, &mut rng);
    let mean_deg = degrees.iter().map(|&d| d as f64).sum::<f64>() / nodes as f64;
    let graph = configuration_model(degrees, &mut rng);
    let hint = ((nodes as f64).ln() / mean_deg.max(2.0).ln()).max(1.0);
    SparseTopology::new(graph, Embedding::RingOffset { n: nodes }, hint)
}

/// Generate a seeded random `degree`-regular graph (an expander with
/// high probability) on `nodes` nodes via the erased configuration
/// model; `nodes · degree` must be even. Greedy routes on the circular
/// node-id metric.
///
/// Deterministic: identical inputs yield a byte-identical CSR.
pub fn expander(nodes: u32, degree: u32, seed: u64) -> SparseTopology {
    assert!(nodes >= 4, "need at least four nodes");
    assert!(
        degree >= 3,
        "degree below 3 disconnects with high probability"
    );
    assert!(degree < nodes, "degree must be below the node count");
    assert!(
        (nodes as u64 * degree as u64).is_multiple_of(2),
        "nodes * degree must be even"
    );
    let mut rng = SimRng::new(seed);
    let graph = configuration_model(vec![degree; nodes as usize], &mut rng);
    let hint = ((nodes as f64).ln() / ((degree.max(2) - 1) as f64).ln()).max(1.0);
    SparseTopology::new(graph, Embedding::RingOffset { n: nodes }, hint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperroute_topology::RoutingTopology;

    #[test]
    fn scale_free_is_deterministic_and_respects_min_degree_in_law() {
        let a = scale_free(1024, 2.5, 2, 77);
        let b = scale_free(1024, 2.5, 2, 77);
        assert_eq!(a.graph(), b.graph());
        assert_ne!(a.graph(), scale_free(1024, 2.5, 2, 78).graph());
        // Erasure can only lower degrees; the mean must stay near the
        // law's mean (ζ-weighted, ≥ min_degree).
        let mean = a.graph().num_arcs() as f64 / a.num_nodes() as f64;
        assert!(mean >= 1.5, "mean degree {mean} collapsed");
    }

    #[test]
    fn scale_free_tail_is_heavy() {
        let t = scale_free(4096, 2.2, 2, 3);
        let max_deg = (0..t.num_nodes())
            .map(|v| t.graph().degree(v))
            .max()
            .unwrap();
        // A power law with cutoff √n = 64 should produce hubs far above
        // the minimum degree; a homogeneous graph would not.
        assert!(max_deg >= 20, "no hubs: max degree {max_deg}");
    }

    #[test]
    fn expander_is_near_regular_and_connected_enough() {
        let t = expander(512, 4, 9);
        // Erasure removes few edges at constant degree: mean close to d.
        let mean = t.graph().num_arcs() as f64 / t.num_nodes() as f64;
        assert!(mean > 3.5, "mean degree {mean} too far below 4");
        for v in 0..t.num_nodes() {
            assert!(t.graph().degree(v) <= 4);
        }
        // Random 4-regular graphs are connected whp: BFS reaches ≥ 99%.
        let mut reached = 1usize;
        let mut seen = vec![false; 512];
        seen[0] = true;
        let mut frontier = vec![0u32];
        while let Some(u) = frontier.pop() {
            for &v in t.graph().neighbors(u as usize) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    reached += 1;
                    frontier.push(v);
                }
            }
        }
        assert!(reached >= 507, "only {reached}/512 reachable");
    }

    #[test]
    fn odd_stub_total_is_repaired() {
        // 5 nodes × degree 3 = 15 stubs (odd) → node 0 bumped to 4.
        let mut rng = SimRng::new(1);
        let g = configuration_model(vec![3; 5], &mut rng);
        // Total arcs even and bounded by 16 (before erasure).
        assert!(g.num_arcs().is_multiple_of(2));
        assert!(g.num_arcs() <= 16);
    }
}
