//! Hyperbolic random graph (Krioukov et al.): nodes placed in the
//! native hyperbolic disk of radius `R = 2 ln n + radius_offset`, radii
//! drawn with density `∝ sinh(alpha·r)` (quasi-uniform at `alpha = 1`),
//! angles uniform; two nodes connect iff their hyperbolic distance is at
//! most `R`. The resulting degree law is a power law with exponent
//! `2·alpha + 1`, and greedy routing on the hyperbolic metric succeeds
//! with high probability at near-optimal stretch — the E29 story.
//!
//! Edge discovery runs in near-linear time via radial bands: nodes are
//! id-ordered by angle, bucketed into unit-width radius bands, and each
//! node scans every band through a **conservative angular window**
//! computed at the band's minimum radius. Since the connection threshold
//! angle `θ*(r_u, r_v)` is decreasing in `r_v` (for `r ≤ R`), the window
//! at `band_min` is a superset of the true one for every node in the
//! band — candidates inside the window are then checked with the exact
//! distance predicate, so the graph is exact, not approximate.

use crate::csr::SparseGraph;
use crate::embed::Embedding;
use crate::topo::SparseTopology;
use hyperroute_desim::SimRng;
use std::f64::consts::{PI, TAU};

/// Threshold angle: the largest `Δθ` at which radii `(ru, rv)` still
/// connect, i.e. `cos θ* = (cosh ru · cosh rv − cosh R)/(sinh ru ·
/// sinh rv)`. Returns `PI` (full circle) when every angle connects and
/// a negative value when none does.
fn threshold_angle(ru: f64, rv: f64, cosh_big_r: f64) -> f64 {
    let denom = ru.sinh() * rv.sinh();
    let num = ru.cosh() * rv.cosh() - cosh_big_r;
    if denom <= f64::EPSILON {
        // One endpoint at (or at rounding distance of) the origin:
        // distance reduces to ru + rv ≤ R ⟺ num ≤ 0 up to rounding.
        return if num <= 0.0 { PI } else { -1.0 };
    }
    let c = num / denom;
    if c <= -1.0 {
        PI
    } else if c >= 1.0 {
        -1.0
    } else {
        c.acos()
    }
}

/// Generate a seeded hyperbolic random graph with `nodes` nodes, radial
/// density exponent `alpha > 0` and disk radius `R = 2 ln nodes +
/// radius_offset`. Greedy routes on the exact hyperbolic distance.
/// Nodes that land outside everyone's threshold stay isolated — the
/// engine surfaces those as `DEAD_END` route outcomes.
///
/// Deterministic: identical inputs yield a byte-identical CSR.
pub fn hyperbolic(nodes: u32, alpha: f64, radius_offset: f64, seed: u64) -> SparseTopology {
    assert!(nodes >= 2, "need at least two nodes");
    assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
    let n = nodes as usize;
    let big_r = (2.0 * (nodes as f64).ln() + radius_offset).max(1.0);
    let cosh_big_r = big_r.cosh();

    // Placement: r from the quasi-uniform CDF, θ uniform on [0, 2π).
    let mut rng = SimRng::new(seed);
    let cosh_ar = (alpha * big_r).cosh();
    let mut placed: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let r = ((1.0 + rng.uniform01() * (cosh_ar - 1.0)).acosh() / alpha).min(big_r);
            let theta = rng.uniform01() * TAU;
            (theta, r)
        })
        .collect();
    // Node ids in angular order: band sublists inherit θ-sortedness from
    // plain id order, enabling binary-searched angular windows.
    placed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let theta: Vec<f64> = placed.iter().map(|p| p.0).collect();
    let radius: Vec<f64> = placed.iter().map(|p| p.1).collect();
    drop(placed);

    // Unit-width radial bands; each holds its members in id (= θ) order.
    let nbands = (big_r.ceil() as usize).max(1);
    let band_width = big_r / nbands as f64;
    let band_of = |r: f64| ((r / band_width) as usize).min(nbands - 1);
    let mut bands: Vec<Vec<u32>> = vec![Vec::new(); nbands];
    for (v, &r) in radius.iter().enumerate() {
        bands[band_of(r)].push(v as u32);
    }

    // Candidates inside `[lo, hi]` (θ-interval, no wrap) of one band.
    let in_window = |band: &[u32], lo: f64, hi: f64, out: &mut Vec<u32>| {
        let a = band.partition_point(|&v| theta[v as usize] < lo);
        let b = band.partition_point(|&v| theta[v as usize] <= hi);
        out.extend_from_slice(&band[a..b]);
    };

    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut cand: Vec<u32> = Vec::new();
    for u in 0..n {
        let (tu, ru) = (theta[u], radius[u]);
        for (b, band) in bands.iter().enumerate() {
            if band.is_empty() {
                continue;
            }
            // Widest (superset) window for the band: evaluated at the
            // band's minimum radius, where θ* is maximal.
            let widest = threshold_angle(ru, b as f64 * band_width, cosh_big_r);
            if widest < 0.0 {
                continue;
            }
            cand.clear();
            if widest >= PI {
                cand.extend_from_slice(band);
            } else {
                let (lo, hi) = (tu - widest, tu + widest);
                if lo < 0.0 {
                    in_window(band, lo + TAU, TAU, &mut cand);
                    in_window(band, 0.0, hi, &mut cand);
                } else if hi > TAU {
                    in_window(band, lo, TAU, &mut cand);
                    in_window(band, 0.0, hi - TAU, &mut cand);
                } else {
                    in_window(band, lo, hi, &mut cand);
                }
            }
            for &v in &cand {
                // Each undirected edge once, via the lower endpoint.
                if (v as usize) <= u {
                    continue;
                }
                let rv = radius[v as usize];
                let exact =
                    ru.cosh() * rv.cosh() - ru.sinh() * rv.sinh() * (tu - theta[v as usize]).cos();
                if exact <= cosh_big_r {
                    edges.push((u as u32, v));
                }
            }
        }
    }

    let graph = SparseGraph::from_undirected_edges(n, &mut edges);
    let embed = Embedding::disk(
        radius.iter().map(|&r| r as f32).collect(),
        theta.iter().map(|&t| t as f32).collect(),
    );
    SparseTopology::new(graph, embed, (nodes as f64).ln().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::hyperbolic_distance;

    #[test]
    fn threshold_angle_is_decreasing_in_radius() {
        let big_r = 14.0f64;
        let cr = big_r.cosh();
        let mut prev = threshold_angle(6.0, 0.5, cr);
        for i in 1..28 {
            let rv = 0.5 * i as f64;
            let t = threshold_angle(6.0, rv, cr);
            assert!(t <= prev + 1e-12, "θ* must shrink as rv grows (rv={rv})");
            prev = t;
        }
        // Near the origin everything within reach connects.
        assert_eq!(threshold_angle(1.0, 0.0, cr), PI);
    }

    #[test]
    fn generated_edges_match_the_exact_predicate() {
        // Small enough to brute-force: every pair within distance R must
        // be an edge, every edge must be within distance R.
        let t = hyperbolic(256, 0.9, 0.0, 11);
        let (r, th) = match t.embedding() {
            Embedding::Disk { r, theta, .. } => (r.clone(), theta.clone()),
            _ => unreachable!("hyperbolic embeds in the disk"),
        };
        let big_r = 2.0 * 256f64.ln();
        let mut expected = 0usize;
        for u in 0..256usize {
            for v in (u + 1)..256 {
                // Recompute in f64 from the f32 stored coordinates so the
                // check matches what the metric sees.
                let d = hyperbolic_distance(r[u] as f64, th[u] as f64, r[v] as f64, th[v] as f64);
                // f32 storage rounds coordinates; skip knife-edge pairs.
                if (d - big_r).abs() < 1e-3 {
                    expected += usize::from(t.graph().neighbors(u).contains(&(v as u32)));
                    continue;
                }
                let connected = d < big_r;
                assert_eq!(
                    t.graph().neighbors(u).contains(&(v as u32)),
                    connected,
                    "pair ({u},{v}) at distance {d:.4} vs R={big_r:.4}"
                );
                expected += usize::from(connected);
            }
        }
        assert_eq!(t.graph().num_arcs(), expected * 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = hyperbolic(512, 0.8, 0.0, 99);
        let b = hyperbolic(512, 0.8, 0.0, 99);
        assert_eq!(a.graph(), b.graph());
        assert_ne!(
            a.graph(),
            hyperbolic(512, 0.8, 0.0, 100).graph(),
            "seed must matter"
        );
    }

    #[test]
    fn greedy_mostly_succeeds_on_a_dense_disk() {
        // alpha < 1 concentrates nodes near the centre and a negative
        // radius offset raises the mean degree → high greedy success.
        let t = hyperbolic(512, 0.65, -2.0, 5);
        let mut ok = 0;
        let total = 200;
        for i in 0..total {
            let (s, d) = ((i * 7) % 512, (i * 13 + 100) % 512);
            if s != d && t.greedy_walk(s as u64, d as u64).is_ok() {
                ok += 1;
            }
        }
        assert!(ok * 10 >= total * 8, "greedy success {ok}/{total} too low");
    }
}
