//! Node embeddings: the metric that replaces a closed-form greedy step.
//!
//! Dense topologies route with an analytic `next_arc`; sparse generated
//! graphs route **metric-greedily** instead — forward to the neighbour
//! closest to the destination under the generator's embedding distance.
//! Each generator pairs its graph with one [`Embedding`]:
//!
//! * [`Embedding::Lattice`] — the Kleinberg small-world grid's circular
//!   L1 distance over base-`side` digit vectors.
//! * [`Embedding::Disk`] — the hyperbolic plane's distance between
//!   `(r, θ)` placements (Krioukov et al.).
//! * [`Embedding::RingOffset`] — circular node-id distance, the neutral
//!   metric for graphs without a geometric embedding (configuration
//!   model, expander).

/// Fixed-point scale for quantising continuous (hyperbolic) metrics into
/// the `usize` distances the engine's fallback machinery compares. 64
/// steps per unit keeps strict-progress comparisons meaningful while the
/// quantised values stay far below `usize::MAX` for any disk radius.
pub const DISK_SCALE: f64 = 64.0;

/// A per-generator node embedding defining the greedy metric.
#[derive(Clone, Debug)]
pub enum Embedding {
    /// `dims`-dimensional circular lattice with side length `side`: node
    /// ids are base-`side` digit vectors, the metric is the sum of
    /// per-digit circular distances (integer-valued).
    Lattice {
        /// Side length of every dimension.
        side: u32,
        /// Number of dimensions.
        dims: u32,
    },
    /// Native hyperbolic disk placement: node `v` sits at polar
    /// coordinates `(r[v], theta[v])`; the metric is the hyperbolic
    /// distance `acosh(cosh r_u cosh r_v − sinh r_u sinh r_v cos Δθ)`.
    /// Coordinates are stored as `f32` (half the memory at 10⁶ nodes);
    /// the per-node trigonometric terms they imply are cached in `f64`
    /// at construction — every greedy step scans a full CSR row (power-law
    /// hubs reach thousands of neighbours), so evaluating transcendentals
    /// per neighbour dominates routing time. Construct via
    /// [`Embedding::disk`], which fills the caches.
    Disk {
        /// Radial coordinates, one per node.
        r: Vec<f32>,
        /// Angular coordinates, one per node.
        theta: Vec<f32>,
        /// Cached per-node trig terms `[cosh r, sinh r, cos θ, sin θ]`,
        /// interleaved so a row scan touches one cache line per
        /// neighbour instead of gathering four parallel arrays.
        trig: Vec<[f64; 4]>,
    },
    /// Circular distance between node ids on the `n`-cycle
    /// (integer-valued) — for graphs whose generator has no geometry.
    RingOffset {
        /// Number of nodes on the cycle.
        n: u32,
    },
}

impl Embedding {
    /// Build a [`Embedding::Disk`] from polar placements, precomputing
    /// the per-node `cosh`/`sinh`/`cos`/`sin` terms the metric needs.
    /// With the caches, one pairwise comparison costs five multiplies —
    /// `cos Δθ` expands as `cos θ_u cos θ_v + sin θ_u sin θ_v` — instead
    /// of five transcendental evaluations.
    pub fn disk(r: Vec<f32>, theta: Vec<f32>) -> Embedding {
        let trig = r
            .iter()
            .zip(&theta)
            .map(|(&rad, &ang)| {
                let (rad, ang) = (rad as f64, ang as f64);
                [rad.cosh(), rad.sinh(), ang.cos(), ang.sin()]
            })
            .collect();
        Embedding::Disk { r, theta, trig }
    }

    /// The embedding distance between two nodes (0 iff `u == v` for the
    /// integer metrics; the disk metric is 0 only at identical
    /// coordinates, which distinct nodes almost surely never share).
    pub fn metric(&self, u: u64, v: u64) -> f64 {
        match self {
            Embedding::Lattice { side, dims } => {
                let s = *side as u64;
                let (mut a, mut b) = (u, v);
                let mut total = 0u64;
                for _ in 0..*dims {
                    let (da, db) = (a % s, b % s);
                    let d = da.abs_diff(db);
                    total += d.min(s - d);
                    a /= s;
                    b /= s;
                }
                total as f64
            }
            Embedding::Disk { .. } => {
                if u == v {
                    return 0.0;
                }
                self.disk_chord(u as usize, v as usize).acosh()
            }
            Embedding::RingOffset { n } => {
                let n = *n as u64;
                let d = u.abs_diff(v);
                d.min(n - d) as f64
            }
        }
    }

    /// A strictly-monotone surrogate for [`Embedding::metric`]: comparing
    /// keys orders node pairs exactly as comparing metrics does, but a
    /// key may skip the final transcendental. The integer metrics return
    /// the metric itself; the disk returns the clamped `acosh` argument
    /// (`acosh` is strictly increasing on `[1, ∞)`), turning the
    /// per-neighbour cost of a greedy row scan into pure arithmetic.
    /// Keys from *different* pairs are comparable; keys and metrics are
    /// not on the same scale.
    pub fn greedy_key(&self, u: u64, v: u64) -> f64 {
        match self {
            Embedding::Lattice { .. } | Embedding::RingOffset { .. } => self.metric(u, v),
            Embedding::Disk { .. } => {
                if u == v {
                    return 1.0;
                }
                self.disk_chord(u as usize, v as usize)
            }
        }
    }

    /// Quantise a metric value into the integer distance the engine's
    /// strict-progress comparisons use: identity for the integer-valued
    /// metrics, fixed-point at [`DISK_SCALE`] steps per unit for the
    /// hyperbolic disk.
    pub fn quantise(&self, metric: f64) -> usize {
        match self {
            Embedding::Lattice { .. } | Embedding::RingOffset { .. } => metric as usize,
            Embedding::Disk { .. } => (metric * DISK_SCALE).round() as usize,
        }
    }

    /// An evaluator of [`Embedding::greedy_key`] anchored at one
    /// destination: the destination's cached terms are read once, so a
    /// greedy row scan only loads each *neighbour's* cache line. The
    /// disk arm evaluates the exact expression [`Embedding::greedy_key`]
    /// would — bit-identical values, hence identical arc choices.
    pub fn key_to(&self, dest: u64) -> KeyToDest<'_> {
        match self {
            Embedding::Disk { trig, .. } => KeyToDest::Disk {
                trig,
                dest: trig[dest as usize],
            },
            _ => KeyToDest::Exact { embed: self, dest },
        }
    }

    /// The disk metric's `acosh` argument from the cached per-node trig
    /// terms, clamped at 1 against rounding (nearly-coincident points).
    /// Panics on the non-disk variants.
    fn disk_chord(&self, u: usize, v: usize) -> f64 {
        let Embedding::Disk { trig, .. } = self else {
            unreachable!("disk_chord is only called on the Disk variant");
        };
        disk_chord_terms(trig[u], trig[v])
    }
}

/// `max(1, cosh r_u cosh r_v − sinh r_u sinh r_v cos Δθ)` from two
/// nodes' cached `[cosh r, sinh r, cos θ, sin θ]` terms.
#[inline]
fn disk_chord_terms(u: [f64; 4], v: [f64; 4]) -> f64 {
    let [cu, su, au, bu] = u;
    let [cv, sv, av, bv] = v;
    let arg = cu * cv - su * sv * (au * av + bu * bv);
    arg.max(1.0)
}

/// See [`Embedding::key_to`]: a destination-anchored greedy-key
/// evaluator for hot row scans.
pub enum KeyToDest<'a> {
    /// Integer metrics: delegate to [`Embedding::greedy_key`] directly
    /// (nothing worth hoisting).
    Exact {
        /// The embedding to evaluate under.
        embed: &'a Embedding,
        /// The anchored destination.
        dest: u64,
    },
    /// Hyperbolic disk: the destination's cached trig terms held in
    /// registers across the scan.
    Disk {
        /// All nodes' cached trig terms.
        trig: &'a [[f64; 4]],
        /// The destination's cached trig terms.
        dest: [f64; 4],
    },
}

impl KeyToDest<'_> {
    /// [`Embedding::greedy_key`]`(u, dest)` for the anchored
    /// destination.
    #[inline]
    pub fn key(&self, u: u64) -> f64 {
        match self {
            KeyToDest::Exact { embed, dest } => embed.greedy_key(u, *dest),
            KeyToDest::Disk { trig, dest } => disk_chord_terms(trig[u as usize], *dest),
        }
    }
}

/// Hyperbolic distance between polar placements `(r1, θ1)` and
/// `(r2, θ2)` in the native disk model. The `acosh` argument is clamped
/// at 1 against rounding (nearly-coincident points).
pub fn hyperbolic_distance(r1: f64, t1: f64, r2: f64, t2: f64) -> f64 {
    let dt = (t1 - t2).cos();
    let arg = r1.cosh() * r2.cosh() - r1.sinh() * r2.sinh() * dt;
    arg.max(1.0).acosh()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_metric_is_circular_l1() {
        let e = Embedding::Lattice { side: 8, dims: 2 };
        // Node 0 = (0,0); node 7 = (7,0): circular distance 1.
        assert_eq!(e.metric(0, 7), 1.0);
        // (3,2) encoded 3 + 2*8 = 19 vs (0,0): 3 + 2 = 5.
        assert_eq!(e.metric(0, 19), 5.0);
        assert_eq!(e.metric(19, 0), 5.0);
        assert_eq!(e.metric(19, 19), 0.0);
        // Antipodal digit: side 8 → max per-digit distance 4.
        assert_eq!(e.metric(0, 4), 4.0);
    }

    #[test]
    fn ring_offset_metric_wraps() {
        let e = Embedding::RingOffset { n: 10 };
        assert_eq!(e.metric(1, 9), 2.0);
        assert_eq!(e.metric(9, 1), 2.0);
        assert_eq!(e.metric(2, 7), 5.0);
        assert_eq!(e.metric(4, 4), 0.0);
    }

    #[test]
    fn disk_metric_matches_radial_special_case() {
        // Same angle: distance reduces to |r1 - r2|.
        let d = hyperbolic_distance(3.0, 1.0, 5.0, 1.0);
        assert!((d - 2.0).abs() < 1e-9, "radial distance {d}");
        // Symmetry.
        let a = hyperbolic_distance(2.0, 0.3, 4.0, 5.1);
        let b = hyperbolic_distance(4.0, 5.1, 2.0, 0.3);
        assert_eq!(a, b);
        // Triangle-ish sanity: opposite points are farther than radial sum
        // is… bounded by it, actually: d ≤ r1 + r2.
        assert!(a <= 6.0 + 1e-9);
    }

    #[test]
    fn quantisation_scales_only_the_disk() {
        let lat = Embedding::Lattice { side: 4, dims: 1 };
        assert_eq!(lat.quantise(2.0), 2);
        let disk = Embedding::disk(vec![], vec![]);
        assert_eq!(disk.quantise(1.0), DISK_SCALE as usize);
        assert_eq!(disk.quantise(0.0), 0);
    }

    #[test]
    fn cached_disk_metric_matches_the_direct_formula() {
        let r = vec![0.5f32, 3.0, 5.0, 9.5];
        let theta = vec![0.1f32, 1.0, 4.2, 6.0];
        let disk = Embedding::disk(r.clone(), theta.clone());
        for u in 0..r.len() {
            for v in 0..r.len() {
                let direct = if u == v {
                    0.0
                } else {
                    hyperbolic_distance(r[u] as f64, theta[u] as f64, r[v] as f64, theta[v] as f64)
                };
                let cached = disk.metric(u as u64, v as u64);
                // The cached path expands cos Δθ by angle addition, so
                // agreement is to rounding, not bit-exact.
                assert!(
                    (cached - direct).abs() < 1e-6 * (1.0 + direct),
                    "pair ({u},{v}): cached {cached} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn greedy_key_orders_pairs_like_the_metric() {
        let disk = Embedding::disk(vec![0.5, 3.0, 5.0, 9.5], vec![0.1, 1.0, 4.2, 6.0]);
        let ring = Embedding::RingOffset { n: 4 };
        for e in [&disk, &ring] {
            let mut pairs = Vec::new();
            for u in 0..4u64 {
                for v in 0..4u64 {
                    pairs.push((u, v));
                }
            }
            for &(a, b) in &pairs {
                for &(c, d) in &pairs {
                    let by_metric = e.metric(a, b).partial_cmp(&e.metric(c, d)).unwrap();
                    let by_key = e.greedy_key(a, b).partial_cmp(&e.greedy_key(c, d)).unwrap();
                    assert_eq!(by_metric, by_key, "pairs ({a},{b}) vs ({c},{d})");
                }
            }
        }
    }
}
