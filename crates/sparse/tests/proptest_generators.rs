//! Property tests of the sparse generators: **determinism, CSR
//! well-formedness, and degree laws** hold for every parameter draw.
//!
//! Determinism is the load-bearing contract — the corpus baselines,
//! the grid's cross-backend byte-equality, and the engine's replay
//! guarantees all assume that identical generator inputs produce a
//! byte-identical CSR. Well-formedness (sorted deduped rows, no self
//! loops, in-range heads, monotone row pointers) is what `SparseGraph`
//! promises every consumer; the degree bounds pin each generator to its
//! model (lattice + directed long links, erased configuration matching).

use hyperroute_sparse::{
    expander, hyperbolic, scale_free, small_world, SparseGraph, SparseTopology,
};
use proptest::prelude::*;

/// Every structural invariant a finished CSR must satisfy.
fn assert_well_formed(g: &SparseGraph) {
    let n = g.num_nodes();
    let row_ptr = g.row_ptr();
    assert_eq!(row_ptr.len(), n + 1);
    assert_eq!(row_ptr[0], 0);
    assert_eq!(row_ptr[n] as usize, g.num_arcs());
    for v in 0..n {
        assert!(row_ptr[v] <= row_ptr[v + 1], "row_ptr not monotone at {v}");
        let row = g.neighbors(v);
        for w in row.windows(2) {
            assert!(w[0] < w[1], "row {v} not sorted/deduped: {row:?}");
        }
        for &h in row {
            assert!((h as usize) < n, "head {h} out of range in row {v}");
            assert_ne!(h as usize, v, "self-loop in row {v}");
        }
    }
    // arc_tail agrees with the row layout on a sample of arcs.
    for arc in (0..g.num_arcs()).step_by((g.num_arcs() / 16).max(1)) {
        let t = g.arc_tail(arc) as usize;
        assert!(g.out_range(t).contains(&arc), "arc_tail({arc}) wrong");
    }
}

/// Undirected models must come out symmetric: `u→v` implies `v→u`.
fn assert_symmetric(g: &SparseGraph) {
    for v in 0..g.num_nodes() {
        for &h in g.neighbors(v) {
            assert!(
                g.neighbors(h as usize).contains(&(v as u32)),
                "arc {v}→{h} has no reverse"
            );
        }
    }
}

/// Same parameters and seed ⇒ byte-identical CSR; a different seed must
/// actually reshuffle the random structure.
fn assert_deterministic(build: impl Fn(u64) -> SparseTopology, seed: u64) {
    let a = build(seed);
    let b = build(seed);
    assert_eq!(a.graph().row_ptr(), b.graph().row_ptr(), "row_ptr differs");
    assert_eq!(a.graph().adj(), b.graph().adj(), "adj differs");
    let c = build(seed ^ 0x5EED_CAFE);
    assert_ne!(
        a.graph().adj(),
        c.graph().adj(),
        "seed change left the graph untouched"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn small_world_is_deterministic_well_formed_and_lattice_plus_links(
        side in 4u32..24,
        dims in 1u32..3,
        links in 1u32..4,
        alpha in 0.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let t = small_world(side, dims, links, alpha, seed);
        let g = t.graph();
        assert_eq!(g.num_nodes(), (side as usize).pow(dims));
        assert_well_formed(g);
        // Circular lattice arcs are always present (±1 per dimension,
        // distinct for side ≥ 4); long links are directed and merge into
        // the row on collision, so the degree is bounded both ways.
        let lattice = 2 * dims as usize;
        for v in 0..g.num_nodes() {
            let d = g.degree(v);
            assert!(
                (lattice..=lattice + links as usize).contains(&d),
                "node {v}: degree {d} outside [{lattice}, {}]",
                lattice + links as usize
            );
        }
        assert_deterministic(|s| small_world(side, dims, links, alpha, s), seed);
    }

    #[test]
    fn hyperbolic_is_deterministic_well_formed_and_symmetric(
        nodes in 16u32..160,
        alpha in 0.55f64..1.2,
        offset in -2.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let t = hyperbolic(nodes, alpha, offset, seed);
        let g = t.graph();
        assert_eq!(g.num_nodes(), nodes as usize);
        assert_well_formed(g);
        assert_symmetric(g);
        assert_deterministic(|s| hyperbolic(nodes, alpha, offset, s), seed);
    }

    #[test]
    fn scale_free_is_deterministic_and_keeps_the_degree_law(
        nodes in 64u32..256,
        gamma in 1.8f64..3.2,
        min_degree in 1u32..4,
        seed in any::<u64>(),
    ) {
        let t = scale_free(nodes, gamma, min_degree, seed);
        let g = t.graph();
        assert_eq!(g.num_nodes(), nodes as usize);
        assert_well_formed(g);
        assert_symmetric(g);
        // The erased configuration model: degrees stay under the natural
        // cutoff √n (+1 for the odd-stub parity bump on node 0), and the
        // erasure (loops + multi-edges) removes only a small fraction of
        // the drawn stubs, so the mean stays near the drawn law's floor.
        let kmax = ((nodes as f64).sqrt() as usize).max(min_degree as usize);
        for v in 0..g.num_nodes() {
            assert!(
                g.degree(v) <= kmax + 1,
                "node {v}: degree {} above the √n cutoff {kmax}",
                g.degree(v)
            );
        }
        let mean = g.num_arcs() as f64 / g.num_nodes() as f64;
        prop_assert!(
            mean >= 0.7 * min_degree as f64,
            "mean degree {mean} collapsed below the drawn floor {min_degree}"
        );
        assert_deterministic(|s| scale_free(nodes, gamma, min_degree, s), seed);
    }

    #[test]
    fn expander_is_deterministic_near_regular_and_symmetric(
        nodes in 32u32..256,
        degree in 3u32..7,
        seed in any::<u64>(),
    ) {
        // Keep the stub total even, matching the scenario-layer bound.
        let nodes = nodes & !1;
        let t = expander(nodes, degree, seed);
        let g = t.graph();
        assert_eq!(g.num_nodes(), nodes as usize);
        assert_well_formed(g);
        assert_symmetric(g);
        // Erasure only removes arcs, so d is a per-node ceiling — and it
        // removes O(d²) arcs in total, so the graph stays near-regular.
        for v in 0..g.num_nodes() {
            assert!(g.degree(v) <= degree as usize, "node {v} over-degree");
        }
        let mean = g.num_arcs() as f64 / g.num_nodes() as f64;
        prop_assert!(
            mean >= 0.8 * degree as f64,
            "mean degree {mean} far below d = {degree}"
        );
        assert_deterministic(|s| expander(nodes, degree, s), seed);
    }
}
