//! Little's law `N = λT` and simulation cross-checks.
//!
//! Both headline bounds (Props. 12 and 17) are proved by bounding the mean
//! number-in-system of a product-form network and converting through
//! Little's law; the simulators verify their own measurements the same way.

/// Mean delay from mean number-in-system and throughput: `T = N / λ`.
pub fn delay_from_occupancy(mean_in_system: f64, throughput: f64) -> f64 {
    assert!(throughput > 0.0, "throughput must be positive");
    mean_in_system / throughput
}

/// Mean number-in-system from delay and throughput: `N = λ T`.
pub fn occupancy_from_delay(mean_delay: f64, throughput: f64) -> f64 {
    mean_delay * throughput
}

/// A Little's-law consistency report between two independent measurements
/// of the same system: time-averaged `N`, packet-averaged `T`, and the
/// measured throughput `λ`.
#[derive(Clone, Copy, Debug)]
pub struct LittleCheck {
    /// Time-average number in system.
    pub mean_in_system: f64,
    /// Per-packet average delay.
    pub mean_delay: f64,
    /// Measured departure rate.
    pub throughput: f64,
}

impl LittleCheck {
    /// Relative discrepancy `|N - λT| / max(N, λT)`; near zero for a
    /// well-converged stationary simulation.
    pub fn relative_error(&self) -> f64 {
        let lhs = self.mean_in_system;
        let rhs = self.throughput * self.mean_delay;
        let denom = lhs.abs().max(rhs.abs()).max(f64::MIN_POSITIVE);
        (lhs - rhs).abs() / denom
    }

    /// Does the identity hold within `tol` relative error?
    pub fn holds(&self, tol: f64) -> bool {
        self.relative_error() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_inverse() {
        let (n, lam) = (12.5, 2.5);
        let t = delay_from_occupancy(n, lam);
        assert!((occupancy_from_delay(t, lam) - n).abs() < 1e-12);
    }

    #[test]
    fn check_detects_consistency() {
        let ok = LittleCheck {
            mean_in_system: 10.0,
            mean_delay: 5.0,
            throughput: 2.0,
        };
        assert!(ok.holds(1e-12));
        let bad = LittleCheck {
            mean_in_system: 10.0,
            mean_delay: 4.0,
            throughput: 2.0,
        };
        assert!(!bad.holds(0.1));
        assert!((bad.relative_error() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_throughput() {
        delay_from_occupancy(1.0, 0.0);
    }
}
