//! Sample-path departures of a deterministic FIFO server (Lemma 8's
//! object).
//!
//! For arrival times `t_1 ≤ t_2 ≤ …` and service duration `s`, departures
//! follow the Lindley-style recursion
//! `D_1 = t_1 + s`, `D_i = max(D_{i-1}, t_i) + s` — the exact equations
//! used in the proof of Lemma 8.

/// Incremental deterministic FIFO server.
#[derive(Clone, Debug)]
pub struct FifoServer {
    service: f64,
    last_departure: f64,
    served: u64,
}

impl FifoServer {
    /// Server with the given deterministic service duration.
    pub fn new(service: f64) -> FifoServer {
        assert!(service > 0.0);
        FifoServer {
            service,
            last_departure: f64::NEG_INFINITY,
            served: 0,
        }
    }

    /// Unit-service server (the paper's model).
    pub fn unit() -> FifoServer {
        FifoServer::new(1.0)
    }

    /// Register an arrival at `t` (must not precede earlier arrivals) and
    /// return its departure time.
    pub fn arrive(&mut self, t: f64) -> f64 {
        let d = t.max(self.last_departure) + self.service;
        self.last_departure = d;
        self.served += 1;
        d
    }

    /// Unfinished work at time `t⁻` given that all arrivals so far have
    /// been registered: how much service backlog remains just before `t`.
    pub fn workload_before(&self, t: f64) -> f64 {
        (self.last_departure - t).max(0.0)
    }

    /// Number of arrivals registered.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// Departure times of a deterministic FIFO server with service `s` fed by
/// the (sorted) arrival sequence.
pub fn fifo_departures(arrivals: &[f64], service: f64) -> Vec<f64> {
    debug_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "unsorted input");
    let mut server = FifoServer::new(service);
    arrivals.iter().map(|&t| server.arrive(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_arrivals_get_pure_service() {
        let d = fifo_departures(&[0.0, 5.0, 12.0], 1.0);
        assert_eq!(d, vec![1.0, 6.0, 13.0]);
    }

    #[test]
    fn back_to_back_arrivals_queue_up() {
        let d = fifo_departures(&[0.0, 0.0, 0.0, 0.0], 1.0);
        assert_eq!(d, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn lindley_recursion_explicitly() {
        let arrivals = [0.0, 0.5, 0.9, 4.0];
        let d = fifo_departures(&arrivals, 1.0);
        assert_eq!(d[0], 1.0);
        assert_eq!(d[1], 2.0); // max(1.0, 0.5)+1
        assert_eq!(d[2], 3.0); // max(2.0, 0.9)+1
        assert_eq!(d[3], 5.0); // idle gap, then service
    }

    #[test]
    fn lemma_8_monotonicity_random_paths() {
        // If every arrival is delayed, every departure is delayed.
        let mut x: u64 = 0xDEADBEEF;
        let mut rngf = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..50 {
            let mut t = 0.0;
            let arrivals: Vec<f64> = (0..200)
                .map(|_| {
                    t += rngf() * 2.0;
                    t
                })
                .collect();
            let delayed: Vec<f64> = arrivals.iter().map(|&t| t + rngf()).collect();
            let mut sorted_delayed = delayed.clone();
            sorted_delayed.sort_by(f64::total_cmp);
            let d0 = fifo_departures(&arrivals, 1.0);
            let d1 = fifo_departures(&sorted_delayed, 1.0);
            for (a, b) in d0.iter().zip(&d1) {
                assert!(b >= a, "Lemma 8 violated: {b} < {a}");
            }
        }
    }

    #[test]
    fn workload_before_accounts_backlog() {
        let mut s = FifoServer::unit();
        s.arrive(0.0);
        s.arrive(0.0);
        // Two units of work at time 0; at t=0.5, 1.5 remain.
        assert!((s.workload_before(0.5) - 1.5).abs() < 1e-12);
        assert_eq!(s.workload_before(10.0), 0.0);
        assert_eq!(s.served(), 2);
    }

    #[test]
    fn non_unit_service() {
        let d = fifo_departures(&[0.0, 0.1], 2.5);
        assert_eq!(d, vec![2.5, 5.0]);
    }
}
