//! Queueing-theory substrate for the greedy-routing reproduction.
//!
//! The paper's proofs lean on a handful of classical queueing facts; this
//! crate implements all of them from scratch:
//!
//! * [`mm1`] — M/M/1 stationary formulas (the product-form network behaves
//!   as independent M/M/1 queues in occupancy);
//! * [`md1`] — M/D/1 Pollaczek–Khinchine formulas (Props. 3, 13, 14 use
//!   them for single arcs);
//! * [`mds`] — the M/D/s multi-server queue: Brumelle's delay lower bound
//!   (used in Prop. 2) plus an exact event-driven simulator;
//! * [`fifo_server`] / [`ps_server`] — **sample-path** departure processes
//!   of a deterministic server under FIFO and Processor-Sharing service,
//!   the objects of Lemmas 7 and 8;
//! * [`sample_path`] — "delayed version" comparisons between event streams
//!   (the ordering at the heart of Lemmas 7–10);
//! * [`product_form`] — stationary quantities of product-form networks
//!   with per-server geometric occupancy (\[Wal88\] as used in Props. 12
//!   and 17);
//! * [`little`] — Little's-law conversions and consistency checks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod erlang;
pub mod fifo_server;
pub mod little;
pub mod md1;
pub mod mds;
pub mod mg1;
pub mod mm1;
pub mod product_form;
pub mod ps_server;
pub mod sample_path;

pub use fifo_server::{fifo_departures, FifoServer};
pub use ps_server::{ps_departures, PsServer};
