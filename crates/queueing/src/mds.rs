//! The M/D/s queue: delay lower bounds and an exact simulator.
//!
//! Proposition 2 relaxes the whole first dimension of the hypercube into a
//! single M/D/2^d queue and cites Brumelle (\[Bru71\]) for a closed-form
//! lower bound on its delay of the shape `1 + Θ(ρ/(2^{d+1}(1-ρ)))`.
//!
//! The scanned paper loses the exact inequality, so this module provides
//! two functions and is explicit about their status:
//!
//! * [`paper_heavy_traffic_form`] — `1 + ρ/(2s(1-ρ))`, the expression as
//!   printed. It is the **exact heavy-traffic limit** of the M/D/s delay
//!   (the M/D/s wait converges to `1/(2s(1-ρ))` as `ρ → 1`) but it is *not*
//!   a pointwise lower bound at moderate load — our exact simulator shows
//!   e.g. `D(2, 0.7) ≈ 1.49 < 1.583`.
//! * [`workload_lower_bound`] — a bound we prove valid at **all** loads
//!   (see the derivation in its doc comment). It has the same
//!   `1/(1-ρ)` blow-up for fixed `s`, so every qualitative conclusion the
//!   paper draws from Prop. 2 (in particular
//!   `lim_{ρ→1} (1-ρ)T > 0` for any routing scheme) goes through.
//!
//! The experiment harness reports measured delay against both.

use hyperroute_desim::SimRng;

/// The Prop. 2 bound expression as printed in the paper:
/// `1 + ρ / (2s(1-ρ))` for an M/D/s queue with unit service and per-server
/// utilisation `rho`.
///
/// Valid as `ρ → 1` (heavy-traffic limit of the true delay); at moderate
/// load it can exceed the true delay — use [`workload_lower_bound`] when a
/// guaranteed lower bound is needed.
pub fn paper_heavy_traffic_form(servers: f64, rho: f64) -> f64 {
    assert!(servers >= 1.0, "need at least one server");
    assert!((0.0..1.0).contains(&rho), "need 0 ≤ ρ < 1, got {rho}");
    1.0 + rho / (2.0 * servers * (1.0 - rho))
}

/// A provably valid lower bound on the mean sojourn of M/D/s with unit
/// service and per-server utilisation `rho`:
///
/// `D(s; ρ) ≥ 1 + max(0, (ρ/(2s(1-ρ)) − (s−1)) / s)`.
///
/// Derivation (all steps classical):
/// 1. Pathwise, the workload `V(t)` of the s-server system dominates the
///    workload of a single server working at speed `s` fed by the same
///    arrivals, whose stationary mean is
///    `E[V_fast] = λ E[(1/s)²] / (2(1-ρ)) · s = ρ/(2s(1-ρ))`.
/// 2. Under FIFO, while a customer waits all `s` servers are busy with
///    earlier customers, so ahead-work depletes at exactly rate `s`; at
///    service start at most `s-1` earlier customers remain in service with
///    less than one unit each. Hence `W_q ≥ (V − (s−1))/s`, and PASTA
///    turns that into the expectation bound.
///
/// For `s = 1` this is exactly the M/D/1 Pollaczek–Khinchine delay.
pub fn workload_lower_bound(servers: f64, rho: f64) -> f64 {
    assert!(servers >= 1.0, "need at least one server");
    assert!((0.0..1.0).contains(&rho), "need 0 ≤ ρ < 1, got {rho}");
    let v_fast = rho / (2.0 * servers * (1.0 - rho));
    1.0 + ((v_fast - (servers - 1.0)) / servers).max(0.0)
}

/// Exact mean sojourn time of an M/D/s queue measured by simulation.
///
/// `servers` unit-service servers, Poisson arrivals at rate `servers·ρ`,
/// FIFO dispatch to the earliest-free server (Kiefer–Wolfowitz recursion).
/// Returns the mean sojourn of packets arriving in `[warmup, horizon)`.
pub fn simulate_mean_sojourn(
    servers: usize,
    rho: f64,
    horizon: f64,
    warmup: f64,
    seed: u64,
) -> f64 {
    assert!(servers >= 1);
    assert!((0.0..1.0).contains(&rho));
    assert!(horizon > warmup && warmup >= 0.0);
    let mut rng = SimRng::new(seed);
    let rate = servers as f64 * rho;

    use std::cmp::Reverse;
    #[derive(PartialEq)]
    struct F(f64);
    impl Eq for F {}
    impl PartialOrd for F {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for F {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
    let mut free_at = std::collections::BinaryHeap::with_capacity(servers);
    for _ in 0..servers {
        free_at.push(Reverse(F(0.0)));
    }

    let mut t = rng.exp(rate);
    let mut total = 0.0;
    let mut count = 0u64;
    while t < horizon {
        let Reverse(F(free)) = free_at.pop().expect("heap size is fixed");
        let start = free.max(t);
        let depart = start + 1.0;
        free_at.push(Reverse(F(depart)));
        if t >= warmup {
            total += depart - t;
            count += 1;
        }
        t += rng.exp(rate);
    }
    assert!(count > 0, "no packets observed after warmup");
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_bound_reduces_to_md1_form() {
        // s = 1 recovers the M/D/1 sojourn formula exactly.
        for &rho in &[0.2, 0.5, 0.9] {
            assert!((workload_lower_bound(1.0, rho) - crate::md1::mean_sojourn(rho)).abs() < 1e-12);
        }
    }

    #[test]
    fn bounds_decrease_with_servers() {
        let rho = 0.8;
        let p1 = paper_heavy_traffic_form(2.0, rho);
        let p2 = paper_heavy_traffic_form(16.0, rho);
        let p3 = paper_heavy_traffic_form(1024.0, rho);
        assert!(p1 > p2 && p2 > p3 && p3 > 1.0);
    }

    #[test]
    fn bound_handles_huge_server_counts() {
        // 2^40 servers: both forms are barely above the bare service time.
        let b = paper_heavy_traffic_form((2.0f64).powi(40), 0.9);
        assert!(b > 1.0 && b < 1.0 + 1e-10);
        let w = workload_lower_bound((2.0f64).powi(40), 0.9);
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simulated_mds_respects_workload_bound() {
        for &(s, rho) in &[(1usize, 0.7), (2, 0.7), (2, 0.9), (4, 0.8), (8, 0.6)] {
            let sim = simulate_mean_sojourn(s, rho, 60_000.0, 5_000.0, 42);
            let lb = workload_lower_bound(s as f64, rho);
            assert!(
                sim >= lb - 0.02,
                "s={s} ρ={rho}: simulated {sim} below workload bound {lb}"
            );
        }
    }

    #[test]
    fn paper_form_is_tight_in_heavy_traffic() {
        // As ρ → 1 the printed expression converges to the true delay; at
        // ρ = 0.97 with two servers they already agree within ~10%.
        let rho = 0.97;
        let sim = simulate_mean_sojourn(2, rho, 400_000.0, 40_000.0, 9);
        let paper = paper_heavy_traffic_form(2.0, rho);
        let ratio = paper / sim;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "heavy-traffic agreement broken: sim {sim} vs paper form {paper}"
        );
    }

    #[test]
    fn paper_form_exceeds_true_delay_at_moderate_load() {
        // Documents why we distinguish the two forms: at s=2, ρ=0.7 the
        // printed expression sits ABOVE the exact delay.
        let sim = simulate_mean_sojourn(2, 0.7, 200_000.0, 20_000.0, 5);
        let paper = paper_heavy_traffic_form(2.0, 0.7);
        assert!(
            paper > sim + 0.05,
            "expected printed form {paper} to exceed simulated {sim}"
        );
    }

    #[test]
    fn single_server_simulation_matches_pk_formula() {
        let rho = 0.6;
        let sim = simulate_mean_sojourn(1, rho, 200_000.0, 10_000.0, 7);
        let exact = crate::md1::mean_sojourn(rho);
        assert!(
            (sim - exact).abs() / exact < 0.03,
            "simulated {sim} vs exact {exact}"
        );
    }

    #[test]
    fn many_servers_light_traffic_sojourn_near_one() {
        let sim = simulate_mean_sojourn(32, 0.2, 5_000.0, 500.0, 3);
        assert!((sim - 1.0).abs() < 0.02, "sojourn {sim}");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_zero_servers() {
        paper_heavy_traffic_form(0.0, 0.5);
    }
}
