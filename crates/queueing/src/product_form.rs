//! Product-form network quantities (\[Wal88\] pp. 93–94 as used in §3.3 and
//! §4.3).
//!
//! When every server of the levelled network is switched from FIFO to
//! Processor Sharing, the network becomes product-form: in steady state the
//! number of customers at a server with utilisation `ρ_i` is geometric,
//! `P[n] = (1-ρ_i) ρ_i^n`, independently across servers. Everything the
//! paper needs — `N̄ = Σ ρ_i/(1-ρ_i)`, delays via Little, and the Chernoff
//! concentration of the total — follows from these marginals.

/// Stationary probability that a PS server with utilisation `rho` hosts
/// exactly `n` customers.
pub fn geometric_pmf(rho: f64, n: u32) -> f64 {
    crate::mm1::occupancy_pmf(rho, n)
}

/// Mean number of customers at one PS server: `ρ/(1-ρ)`.
pub fn server_mean(rho: f64) -> f64 {
    crate::mm1::mean_number_in_system(rho)
}

/// Mean total customers over all servers: `Σ ρ_i/(1-ρ_i)`.
///
/// Returns `None` when any utilisation is ≥ 1 (unstable network).
pub fn network_mean(rhos: &[f64]) -> Option<f64> {
    let mut total = 0.0;
    for &r in rhos {
        if !(0.0..1.0).contains(&r) {
            return None;
        }
        total += r / (1.0 - r);
    }
    Some(total)
}

/// Mean network delay through Little's law: `T̄ = N̄ / Λ` where `Λ` is the
/// total external arrival rate.
pub fn network_mean_delay(rhos: &[f64], total_external_rate: f64) -> Option<f64> {
    assert!(total_external_rate > 0.0);
    network_mean(rhos).map(|n| n / total_external_rate)
}

/// Chernoff-style high-probability bound on the total number of customers
/// (end of §3.3): for `m` i.i.d.-independent geometric marginals with common
/// utilisation `rho`, `P[N > m·(ρ/(1-ρ))·(1+ε)]` decays exponentially in
/// `m`. This returns the optimised exponent per server (a positive number;
/// the probability is `≤ exp(-m · exponent)`).
///
/// Derivation: for a geometric(ρ) variable `X` (counting failures),
/// `E[z^X] = (1-ρ)/(1-ρz)` for `z < 1/ρ`; the Chernoff bound over the mean
/// `a = (1+ε)ρ/(1-ρ)` optimises `exp(-θa)·E[e^{θX}]`.
pub fn chernoff_exponent(rho: f64, epsilon: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho) && rho > 0.0);
    assert!(epsilon > 0.0);
    let mean = rho / (1.0 - rho);
    let a = (1.0 + epsilon) * mean;
    // Optimal tilt for geometric: e^θ = z with z solving a = ρz/(1-ρz)·...
    // Closed form: the rate function of geometric(ρ) at level a is
    //   I(a) = a ln(a / ((1+a) ρ/(1-ρ) / (1+ρ/(1-ρ)))) ... use the standard
    // form I(a) = a ln(a(1-ρ)/ρ) - (1+a) ln((1+a)(1-ρ)) for a > mean,
    // derived from sup_θ {θa - ln E[e^{θX}]}.
    let i = a * (a / ((1.0 + a) * rho)).ln() - ((1.0 - rho) * (1.0 + a)).ln().neg_zero();
    debug_assert!(i.is_finite());
    i.max(0.0)
}

trait NegZero {
    fn neg_zero(self) -> f64;
}
impl NegZero for f64 {
    /// Normalise `-0.0` to `0.0` so downstream `max` comparisons behave.
    fn neg_zero(self) -> f64 {
        if self == 0.0 {
            0.0
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_mean_homogeneous() {
        // m identical servers: N̄ = m·ρ/(1-ρ) — the d·2^d·ρ/(1-ρ) of
        // Prop. 12's proof.
        let rho = 0.75;
        let m = 24;
        let rhos = vec![rho; m];
        let n = network_mean(&rhos).unwrap();
        assert!((n - m as f64 * rho / (1.0 - rho)).abs() < 1e-9);
    }

    #[test]
    fn network_mean_unstable_is_none() {
        assert_eq!(network_mean(&[0.5, 1.0]), None);
        assert_eq!(network_mean(&[0.5, 1.2]), None);
    }

    #[test]
    fn delay_via_little_matches_prop12_shape() {
        // Hypercube Q̄ with d=4: N̄ = d·2^d·ρ/(1-ρ); Λ = λ·2^d; p=1/2 →
        // T̄ = dp/(1-ρ).
        let (d, p, lambda) = (4usize, 0.5, 1.0);
        let rho: f64 = lambda * p;
        let servers = d << d;
        let rhos = vec![rho; servers];
        let total_rate = lambda * (1usize << d) as f64;
        let t = network_mean_delay(&rhos, total_rate).unwrap();
        let expect = d as f64 * p / (1.0 - rho);
        assert!((t - expect).abs() < 1e-9, "T̄ {t} vs {expect}");
    }

    #[test]
    fn geometric_mean_consistency() {
        let rho = 0.6;
        let mean: f64 = (0..1000).map(|n| n as f64 * geometric_pmf(rho, n)).sum();
        assert!((mean - server_mean(rho)).abs() < 1e-9);
    }

    #[test]
    fn chernoff_exponent_positive_and_monotone_in_epsilon() {
        let rho = 0.8;
        let e1 = chernoff_exponent(rho, 0.1);
        let e2 = chernoff_exponent(rho, 0.5);
        let e3 = chernoff_exponent(rho, 1.0);
        assert!(e1 > 0.0, "exponent must be positive, got {e1}");
        assert!(e2 > e1 && e3 > e2, "not monotone: {e1} {e2} {e3}");
    }

    #[test]
    fn chernoff_bound_dominates_exact_tail_single_server() {
        // For one geometric variable, P[X > (1+ε)·mean] = ρ^(floor+1);
        // exp(-I) must upper-bound it.
        let rho: f64 = 0.5;
        let eps = 1.0;
        let mean = rho / (1.0 - rho);
        let level = (1.0 + eps) * mean; // = 2
        let exact_tail = rho.powf(level.floor() + 1.0);
        let bound = (-chernoff_exponent(rho, eps)).exp();
        assert!(
            bound >= exact_tail - 1e-12,
            "Chernoff bound {bound} below exact tail {exact_tail}"
        );
    }
}
