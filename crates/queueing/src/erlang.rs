//! Erlang B/C formulas and the Cosmetatos M/D/s approximation.
//!
//! Used as an *independent cross-check* of the exact M/D/s simulator in
//! [`crate::mds`] (and of our finding that the paper's printed Brumelle
//! form is not a pointwise bound): `W_q(M/D/s) ≈ ½·W_q(M/M/s)·cosmetatos`
//! is accurate to a few percent over the whole stable region.

/// Erlang-B blocking probability for `s` servers at offered load `a`
/// (recursive form, numerically stable).
pub fn erlang_b(servers: u32, offered_load: f64) -> f64 {
    assert!(servers >= 1 && offered_load >= 0.0);
    let a = offered_load;
    let mut b = 1.0f64;
    for k in 1..=servers {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Erlang-C probability of waiting for `s` servers at offered load
/// `a = λ·E[S] < s`.
pub fn erlang_c(servers: u32, offered_load: f64) -> f64 {
    let a = offered_load;
    let s = servers as f64;
    assert!(a < s, "need offered load < servers for a stable M/M/s");
    let b = erlang_b(servers, a);
    b / (1.0 - (a / s) * (1.0 - b))
}

/// Mean waiting time (queue only) of M/M/s with unit mean service and
/// per-server utilisation `rho`: `C(s, sρ) / (s(1-ρ))`.
pub fn mms_mean_wait(servers: u32, rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho));
    let a = servers as f64 * rho;
    erlang_c(servers, a) / (servers as f64 * (1.0 - rho))
}

/// Cosmetatos approximation to the M/D/s mean waiting time (unit
/// service): `W_q(M/D/s) ≈ ½·W_q(M/M/s)·[1 + (1-ρ)(s-1)(√(4+5s)-2)/(16ρs)]`.
pub fn mds_mean_wait_cosmetatos(servers: u32, rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho) && rho > 0.0);
    let s = servers as f64;
    let corr = 1.0 + (1.0 - rho) * (s - 1.0) * ((4.0 + 5.0 * s).sqrt() - 2.0) / (16.0 * rho * s);
    0.5 * mms_mean_wait(servers, rho) * corr
}

/// Approximate M/D/s mean sojourn (wait + unit service).
pub fn mds_mean_sojourn_cosmetatos(servers: u32, rho: f64) -> f64 {
    1.0 + mds_mean_wait_cosmetatos(servers, rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // Classic: B(1, a) = a/(1+a).
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((erlang_b(1, 3.0) - 0.75).abs() < 1e-12);
        // B decreases with more servers.
        assert!(erlang_b(4, 2.0) < erlang_b(2, 2.0));
    }

    #[test]
    fn erlang_c_exceeds_erlang_b() {
        // Queueing (C) is more likely than blocking (B) at equal load.
        for &(s, a) in &[(2u32, 1.0f64), (4, 3.0), (8, 6.0)] {
            assert!(erlang_c(s, a) >= erlang_b(s, a));
            assert!((0.0..=1.0).contains(&erlang_c(s, a)));
        }
    }

    #[test]
    fn mms_single_server_is_mm1() {
        // M/M/1 wait = ρ/(1-ρ) with unit mean service.
        for &rho in &[0.3, 0.6, 0.9] {
            let w = mms_mean_wait(1, rho);
            assert!((w - rho / (1.0 - rho)).abs() < 1e-12, "ρ={rho}: {w}");
        }
    }

    #[test]
    fn cosmetatos_single_server_is_md1() {
        // s = 1: correction vanishes, W_q = ½·ρ/(1-ρ) = PK for M/D/1.
        for &rho in &[0.3, 0.7, 0.95] {
            let w = mds_mean_wait_cosmetatos(1, rho);
            assert!((w - crate::md1::mean_wait(rho)).abs() < 1e-12);
        }
    }

    #[test]
    fn cosmetatos_matches_exact_simulation() {
        // The independent cross-check: approximation vs the exact
        // event-driven M/D/s simulator, within a few percent.
        for &(s, rho) in &[(2u32, 0.7f64), (4, 0.8), (8, 0.6)] {
            let sim = crate::mds::simulate_mean_sojourn(s as usize, rho, 80_000.0, 8_000.0, 77);
            let approx = mds_mean_sojourn_cosmetatos(s, rho);
            let rel = (sim - approx).abs() / sim;
            assert!(
                rel < 0.04,
                "s={s} ρ={rho}: sim {sim} vs Cosmetatos {approx} (rel {rel})"
            );
        }
    }

    #[test]
    fn cosmetatos_refutes_paper_printed_form_at_moderate_load() {
        // Documents the mds.rs finding with an independent method: at
        // s=2, ρ=0.7 the printed 1 + ρ/(2s(1-ρ)) exceeds the true delay.
        let printed = crate::mds::paper_heavy_traffic_form(2.0, 0.7);
        let approx = mds_mean_sojourn_cosmetatos(2, 0.7);
        assert!(printed > approx + 0.05, "{printed} vs {approx}");
    }

    #[test]
    #[should_panic(expected = "stable")]
    fn erlang_c_rejects_overload() {
        erlang_c(2, 2.5);
    }
}
