//! M/G/1 Pollaczek–Khinchine formulas for general service-time moments.
//!
//! The §2.3 pipelined scheme turns every node into an M/G/1 queue whose
//! service time is one routing round (`≈ R·d`, nearly deterministic); the
//! slotted model's batch fronts are another M/G/1-like object. This module
//! provides the general formulas; `md1` is the deterministic special case.

/// Mean waiting time (queue only) of M/G/1:
/// `W_q = λ·E[S²] / (2(1-ρ))` with `ρ = λ·E[S] < 1`.
pub fn mean_wait(lambda: f64, mean_service: f64, second_moment: f64) -> f64 {
    validate(lambda, mean_service, second_moment);
    let rho = lambda * mean_service;
    assert!(rho < 1.0, "unstable M/G/1 (ρ = {rho})");
    lambda * second_moment / (2.0 * (1.0 - rho))
}

/// Mean sojourn time: `W = E[S] + W_q`.
pub fn mean_sojourn(lambda: f64, mean_service: f64, second_moment: f64) -> f64 {
    mean_service + mean_wait(lambda, mean_service, second_moment)
}

/// Mean number in system through Little's law.
pub fn mean_number_in_system(lambda: f64, mean_service: f64, second_moment: f64) -> f64 {
    lambda * mean_sojourn(lambda, mean_service, second_moment)
}

/// Squared coefficient of variation `c² = Var(S)/E[S]²`, the shape
/// parameter in the PK formula (`0` deterministic, `1` exponential).
pub fn scv(mean_service: f64, second_moment: f64) -> f64 {
    assert!(mean_service > 0.0);
    (second_moment - mean_service * mean_service) / (mean_service * mean_service)
}

fn validate(lambda: f64, mean_service: f64, second_moment: f64) {
    assert!(lambda >= 0.0, "negative arrival rate");
    assert!(mean_service > 0.0, "non-positive mean service");
    assert!(
        second_moment >= mean_service * mean_service - 1e-12,
        "second moment below squared mean"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_service_recovers_md1() {
        // S ≡ 1: E[S²] = 1.
        for &rho in &[0.2, 0.5, 0.9] {
            let w = mean_sojourn(rho, 1.0, 1.0);
            assert!((w - crate::md1::mean_sojourn(rho)).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_service_recovers_mm1() {
        // S ~ exp(1): E[S] = 1, E[S²] = 2.
        let lambda = 0.6;
        let w = mean_sojourn(lambda, 1.0, 2.0);
        assert!((w - crate::mm1::mean_sojourn(lambda, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_halves_exponential_wait() {
        let lambda = 0.7;
        let det = mean_wait(lambda, 1.0, 1.0);
        let exp = mean_wait(lambda, 1.0, 2.0);
        assert!((exp / det - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scv_values() {
        assert_eq!(scv(1.0, 1.0), 0.0); // deterministic
        assert!((scv(1.0, 2.0) - 1.0).abs() < 1e-12); // exponential
        assert!(scv(2.0, 8.0) > 0.0);
    }

    #[test]
    fn pipelined_round_model() {
        // §2.3: service ≈ R·d deterministic; ρ_node = λ·R·d.
        let (r, d, lambda) = (2.0, 8.0, 0.05);
        let s = r * d;
        let w = mean_sojourn(lambda, s, s * s);
        // u = 0.8 → W = 16·(1 + 0.8/(2·0.2)) = 16·3 = 48.
        assert!((w - 48.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_overload() {
        mean_wait(1.0, 2.0, 4.0);
    }
}
