//! Sample-path departures of a deterministic Processor-Sharing server
//! (Lemma 7's object).
//!
//! All customers present share the unit service rate equally; each customer
//! carries the same deterministic work requirement (the paper's unit packet
//! length), so customers depart **in arrival order** — a fact the paper uses
//! and the tests assert.
//!
//! Implementation uses the classical *virtual time* construction: with
//! `n(t)` customers in service, virtual time advances at rate `1/n(t)`; a
//! customer arriving at virtual time `v` departs when virtual time reaches
//! `v + work`. This gives O(1) work per event and exact departure epochs.

use std::collections::VecDeque;

/// Incremental deterministic PS server.
///
/// Drive it with alternating [`PsServer::arrive`] /
/// [`PsServer::complete_next`] calls in non-decreasing time order;
/// [`PsServer::next_departure_time`] tells the owner when to schedule the
/// next completion (it changes on every arrival, so network simulators must
/// reschedule — see `hyperroute-core`'s equivalent-network simulator).
#[derive(Clone, Debug)]
pub struct PsServer {
    work: f64,
    tnow: f64,
    vnow: f64,
    /// Active jobs, oldest first: (caller-supplied id, virtual departure).
    active: VecDeque<(u64, f64)>,
}

impl PsServer {
    /// PS server whose jobs all require `work` units of service.
    pub fn new(work: f64) -> PsServer {
        assert!(work > 0.0);
        PsServer {
            work,
            tnow: 0.0,
            vnow: 0.0,
            active: VecDeque::new(),
        }
    }

    /// Unit-work server (the paper's model).
    pub fn unit() -> PsServer {
        PsServer::new(1.0)
    }

    /// Advance the internal clocks to real time `t` without any arrival or
    /// departure (useful for workload inspection at arbitrary epochs).
    pub fn advance_to(&mut self, t: f64) {
        self.advance(t);
    }

    /// Advance the internal clocks to real time `t`.
    fn advance(&mut self, t: f64) {
        debug_assert!(t >= self.tnow - 1e-9, "time went backwards");
        let n = self.active.len();
        if n > 0 {
            self.vnow += (t - self.tnow) / n as f64;
        }
        self.tnow = t;
    }

    /// Job `id` arrives at time `t`.
    pub fn arrive(&mut self, t: f64, id: u64) {
        self.advance(t);
        self.active.push_back((id, self.vnow + self.work));
    }

    /// Number of jobs currently in service.
    pub fn in_service(&self) -> usize {
        self.active.len()
    }

    /// Real time at which the oldest job will depart if no further arrivals
    /// occur before then.
    pub fn next_departure_time(&self) -> Option<f64> {
        let &(_, vdep) = self.active.front()?;
        let n = self.active.len() as f64;
        Some(self.tnow + (vdep - self.vnow).max(0.0) * n)
    }

    /// Complete the oldest job at time `t` (which must equal
    /// [`PsServer::next_departure_time`] up to rounding); returns its id.
    pub fn complete_next(&mut self, t: f64) -> u64 {
        self.advance(t);
        let (id, vdep) = self.active.pop_front().expect("no job in service");
        debug_assert!(
            (vdep - self.vnow).abs() < 1e-6,
            "completion at wrong time: vdep {vdep} vs vnow {}",
            self.vnow
        );
        // Snap virtual time to the departure threshold to stop rounding
        // drift across millions of events.
        self.vnow = vdep;
        id
    }

    /// Unfinished work (sum of residual requirements) at the current time.
    pub fn workload(&self) -> f64 {
        self.active
            .iter()
            .map(|&(_, vdep)| (vdep - self.vnow).max(0.0))
            .sum()
    }
}

/// Departure times of a deterministic PS server with per-job `work` fed by
/// the (sorted) arrival sequence; result is indexed like `arrivals`.
pub fn ps_departures(arrivals: &[f64], work: f64) -> Vec<f64> {
    debug_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "unsorted input");
    let mut server = PsServer::new(work);
    let mut out = vec![0.0f64; arrivals.len()];
    let mut i = 0usize;
    loop {
        let next_dep = server.next_departure_time();
        let next_arr = arrivals.get(i).copied();
        match (next_arr, next_dep) {
            (None, None) => break,
            (Some(a), Some(d)) if a < d => {
                server.arrive(a, i as u64);
                i += 1;
            }
            (Some(_), Some(d)) | (None, Some(d)) => {
                let id = server.complete_next(d) as usize;
                out[id] = d;
            }
            (Some(a), None) => {
                server.arrive(a, i as u64);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo_server::fifo_departures;

    #[test]
    fn paper_worked_example() {
        // Paper §3.3: arrivals at 0 and 1/2, unit work. First departs at
        // 3/2 (slowed to rate 1/2 once the second arrives), second at 2.
        let d = ps_departures(&[0.0, 0.5], 1.0);
        assert!((d[0] - 1.5).abs() < 1e-12, "got {:?}", d);
        assert!((d[1] - 2.0).abs() < 1e-12, "got {:?}", d);
    }

    #[test]
    fn lone_job_departs_after_work() {
        let d = ps_departures(&[3.0], 1.0);
        assert_eq!(d, vec![4.0]);
    }

    #[test]
    fn simultaneous_arrivals_share_equally() {
        // k jobs arriving together each get rate 1/k: all depart at k·work.
        let d = ps_departures(&[0.0, 0.0, 0.0], 1.0);
        for &x in &d {
            assert!((x - 3.0).abs() < 1e-9, "got {d:?}");
        }
    }

    #[test]
    fn departures_in_arrival_order() {
        // Equal deterministic work ⇒ FIFO departure order (paper's remark).
        let arrivals: Vec<f64> = (0..100).map(|i| (i as f64) * 0.3).collect();
        let d = ps_departures(&arrivals, 1.0);
        assert!(d.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    #[test]
    fn lemma_7_ps_never_beats_fifo() {
        // D̄_i ≥ D_i for every i, on arbitrary sample paths.
        let mut x: u64 = 42;
        let mut rngf = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        for rep in 0..50 {
            let mut t = 0.0;
            let arrivals: Vec<f64> = (0..300)
                .map(|_| {
                    t += rngf() * 1.4; // utilisation around 0.7
                    t
                })
                .collect();
            let fifo = fifo_departures(&arrivals, 1.0);
            let ps = ps_departures(&arrivals, 1.0);
            for (i, (f, p)) in fifo.iter().zip(&ps).enumerate() {
                assert!(
                    p >= &(f - 1e-9),
                    "rep {rep} job {i}: PS departure {p} before FIFO {f}"
                );
            }
        }
    }

    #[test]
    fn work_conservation_matches_fifo() {
        // The PS discipline is work-conserving: unfinished work at any time
        // equals the FIFO server's (paper's proof of Lemma 7, Eq. (12)).
        let arrivals = [0.0, 0.2, 0.9, 1.1, 4.0, 4.05];
        let mut fifo = crate::fifo_server::FifoServer::unit();
        let mut ps = PsServer::unit();
        for (i, &a) in arrivals.iter().enumerate() {
            fifo.arrive(a);
            // Drain PS departures that occur before this arrival.
            while let Some(d) = ps.next_departure_time() {
                if d <= a {
                    ps.complete_next(d);
                } else {
                    break;
                }
            }
            ps.arrive(a, i as u64);
            let t_check = a + 1e-9;
            // Fifo workload just after arrival vs PS workload.
            let wf = fifo.workload_before(t_check);
            ps.advance_to(t_check);
            let wp = ps.workload();
            assert!(
                (wf - wp).abs() < 1e-6,
                "work mismatch at t={a}: FIFO {wf} vs PS {wp}"
            );
        }
    }

    #[test]
    fn next_departure_reschedules_on_arrival() {
        let mut ps = PsServer::unit();
        ps.arrive(0.0, 0);
        assert!((ps.next_departure_time().unwrap() - 1.0).abs() < 1e-12);
        ps.arrive(0.5, 1);
        // First job now shares capacity: departs at 1.5 instead of 1.0.
        assert!((ps.next_departure_time().unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(ps.in_service(), 2);
        assert_eq!(ps.complete_next(1.5), 0);
        assert!((ps.next_departure_time().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(ps.complete_next(2.0), 1);
        assert_eq!(ps.in_service(), 0);
        assert_eq!(ps.next_departure_time(), None);
    }

    #[test]
    fn long_stream_no_drift() {
        // A million-ish alternations should not accumulate rounding error:
        // final departure of an isolated job is exact.
        let mut ps = PsServer::unit();
        let mut t = 0.0;
        for i in 0..10_000u64 {
            ps.arrive(t, i);
            let d = ps.next_departure_time().unwrap();
            ps.complete_next(d);
            t = d + 0.25;
        }
        assert_eq!(ps.in_service(), 0);
        // Each cycle takes exactly 1.25.
        assert!((t - 10_000.0 * 1.25).abs() < 1e-6);
    }
}
