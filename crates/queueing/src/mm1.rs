//! M/M/1 stationary formulas.
//!
//! Poisson arrivals at rate `λ`, exponential service at rate `μ`,
//! utilisation `ρ = λ/μ < 1`. The per-server marginals of the product-form
//! network Q̄ (paper §3.3) are geometric with parameter `ρ`, exactly the
//! M/M/1 occupancy law, which is why these formulas appear throughout the
//! upper-bound computations.

/// Stationary probability of `n` customers in an M/M/1 queue with
/// utilisation `rho`: `(1-ρ) ρ^n`.
pub fn occupancy_pmf(rho: f64, n: u32) -> f64 {
    assert!((0.0..1.0).contains(&rho), "need 0 ≤ ρ < 1, got {rho}");
    (1.0 - rho) * rho.powi(n as i32)
}

/// Mean number in system: `ρ / (1-ρ)`.
pub fn mean_number_in_system(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "need 0 ≤ ρ < 1, got {rho}");
    rho / (1.0 - rho)
}

/// Mean sojourn time with service rate `mu`: `1 / (μ - λ)`.
pub fn mean_sojourn(lambda: f64, mu: f64) -> f64 {
    assert!(lambda >= 0.0 && mu > 0.0 && lambda < mu, "unstable M/M/1");
    1.0 / (mu - lambda)
}

/// Mean waiting time (sojourn minus service): `ρ / (μ - λ)`.
pub fn mean_wait(lambda: f64, mu: f64) -> f64 {
    mean_sojourn(lambda, mu) - 1.0 / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let rho = 0.85;
        let total: f64 = (0..2000).map(|n| occupancy_pmf(rho, n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_mean_matches_formula() {
        let rho = 0.6;
        let mean: f64 = (0..2000).map(|n| n as f64 * occupancy_pmf(rho, n)).sum();
        assert!((mean - mean_number_in_system(rho)).abs() < 1e-9);
    }

    #[test]
    fn little_consistency() {
        // N = λ T with T the sojourn.
        let (lambda, mu) = (0.7, 1.0);
        let n = mean_number_in_system(lambda / mu);
        let t = mean_sojourn(lambda, mu);
        assert!((n - lambda * t).abs() < 1e-12);
    }

    #[test]
    fn wait_is_sojourn_minus_service() {
        let (lambda, mu) = (1.5, 2.0);
        assert!((mean_wait(lambda, mu) - (mean_sojourn(lambda, mu) - 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_unstable() {
        mean_sojourn(2.0, 1.0);
    }
}
