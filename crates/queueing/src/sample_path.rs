//! Sample-path stream comparisons (the "delayed version" order of §3.3).
//!
//! The paper compares networks by coupling their randomness and ordering
//! their event streams pointwise: a stream `τ'` is a *delayed version* of
//! `τ` when `τ_i ≤ τ'_i` for every `i`. Lemmas 7–10 are all statements in
//! this order; these helpers make the simulated checks exact.

/// Is `delayed` a delayed version of `base`? (`base[i] ≤ delayed[i] + tol`
/// for every `i`; streams must have equal length.)
pub fn is_delayed_version(base: &[f64], delayed: &[f64], tol: f64) -> bool {
    base.len() == delayed.len() && base.iter().zip(delayed).all(|(&a, &b)| a <= b + tol)
}

/// Index of the first violation of the delayed-version order, if any.
pub fn first_violation(base: &[f64], delayed: &[f64], tol: f64) -> Option<usize> {
    if base.len() != delayed.len() {
        return Some(base.len().min(delayed.len()));
    }
    base.iter().zip(delayed).position(|(&a, &b)| a > b + tol)
}

/// Counting process: number of events in `times` (sorted) occurring at or
/// before `t` — the `B(t)` of Lemma 9/10.
pub fn count_up_to(times: &[f64], t: f64) -> usize {
    debug_assert!(times.windows(2).all(|w| w[0] <= w[1]), "unsorted input");
    times.partition_point(|&x| x <= t)
}

/// Check the counting-process form of dominance used by Lemma 10:
/// `B(t) ≥ B̄(t)` for all `t` is equivalent to the sorted `base` being a
/// delayed-version-inverse of sorted `delayed`. Both inputs are sorted
/// internally; returns true when the *delayed* stream never gets ahead.
pub fn counting_dominates(base: &[f64], delayed: &[f64], tol: f64) -> bool {
    let mut a: Vec<f64> = base.to_vec();
    let mut b: Vec<f64> = delayed.to_vec();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    // B(t) ≥ B̄(t) ∀t  ⇔  i-th smallest of base ≤ i-th smallest of delayed.
    a.len() >= b.len() && a.iter().zip(&b).all(|(&x, &y)| x <= y + tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delayed_version_basic() {
        assert!(is_delayed_version(&[1.0, 2.0], &[1.0, 2.5], 0.0));
        assert!(!is_delayed_version(&[1.0, 2.0], &[0.5, 2.5], 0.0));
        assert!(!is_delayed_version(&[1.0], &[1.0, 2.0], 0.0));
    }

    #[test]
    fn violation_index() {
        assert_eq!(
            first_violation(&[1.0, 2.0, 3.0], &[1.0, 1.5, 3.0], 0.0),
            Some(1)
        );
        assert_eq!(first_violation(&[1.0, 2.0], &[1.1, 2.0], 0.0), None);
    }

    #[test]
    fn tolerance_absorbs_rounding() {
        assert!(is_delayed_version(&[1.0 + 1e-12], &[1.0], 1e-9));
    }

    #[test]
    fn counting_process() {
        let times = [1.0, 2.0, 2.0, 5.0];
        assert_eq!(count_up_to(&times, 0.5), 0);
        assert_eq!(count_up_to(&times, 1.0), 1);
        assert_eq!(count_up_to(&times, 2.0), 3);
        assert_eq!(count_up_to(&times, 10.0), 4);
    }

    #[test]
    fn counting_dominance_equivalence() {
        // Sorted pointwise order ⇔ counting dominance.
        let base = [1.0, 2.0, 3.0];
        let delayed = [1.5, 2.0, 4.0];
        assert!(counting_dominates(&base, &delayed, 0.0));
        assert!(!counting_dominates(&delayed, &base, 0.0));
        // Out-of-order inputs are handled (the Lemma 9 proof point: packets
        // may get out of order, only the *streams* are compared).
        let shuffled = [4.0, 1.5, 2.0];
        assert!(counting_dominates(&base, &shuffled, 0.0));
    }

    #[test]
    fn counting_dominance_with_fewer_delayed_events() {
        // If the delayed system has produced fewer events so far that's
        // consistent with dominance only when compared over a common count;
        // we require base ≥ delayed in length.
        assert!(counting_dominates(&[1.0, 2.0, 3.0], &[1.0, 2.5], 0.0));
        assert!(!counting_dominates(&[1.0], &[1.0, 2.0], 0.0));
    }
}
