//! M/D/1 stationary formulas (Pollaczek–Khinchine with deterministic
//! service).
//!
//! A single hypercube/butterfly arc fed only by exogenous Poisson traffic is
//! exactly an M/D/1 queue with unit service — the building block of the
//! paper's lower bounds (Prop. 3 proof, Prop. 13 for first-dimension arcs,
//! Prop. 14 for first-level butterfly arcs) and of the `p = 1` exact delay.

/// Mean sojourn time (wait + service) of M/D/1 with unit service and
/// utilisation `rho`: `1 + ρ / (2(1-ρ))` (\[Kle75\] as cited by the paper).
pub fn mean_sojourn(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "need 0 ≤ ρ < 1, got {rho}");
    1.0 + rho / (2.0 * (1.0 - rho))
}

/// Mean waiting time in queue: `ρ / (2(1-ρ))`.
pub fn mean_wait(rho: f64) -> f64 {
    mean_sojourn(rho) - 1.0
}

/// Mean number in system: `ρ + ρ² / (2(1-ρ))` (used in Eq. (16) of the
/// paper's Prop. 13 proof).
pub fn mean_number_in_system(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "need 0 ≤ ρ < 1, got {rho}");
    rho + rho * rho / (2.0 * (1.0 - rho))
}

/// The convex, increasing function `r ↦ r (1 + r/(2(1-r)))` minimised in the
/// Prop. 3 proof (rate-weighted M/D/1 delay).
pub fn rate_weighted_sojourn(r: f64) -> f64 {
    assert!((0.0..1.0).contains(&r));
    r * mean_sojourn(r)
}

/// Exact waiting-time distribution of M/D/1 with unit service (Erlang's
/// classical alternating-series formula):
/// `P(W_q ≤ t) = (1-ρ) Σ_{k=0}^{⌊t⌋} (ρ(k-t))^k e^{-ρ(k-t)} / k!`,
/// switched to the exact exponential tail asymptote
/// `1 - F(t) ≈ C·e^{-ηt}` (with `η` the unique positive root of
/// `ρ(e^η - 1) = η`) once the alternating series would cancel
/// catastrophically in f64 (around `ρ·t ≳ 14`). The prefactor `C` is
/// anchored at the last reliably computed point, keeping the CDF
/// continuous and monotone.
///
/// Lets the `p = 1` case be validated at the *quantile* level, not just in
/// the mean: there the whole delay is the path length plus exactly this
/// wait.
pub fn wait_cdf(rho: f64, t: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "need 0 ≤ ρ < 1, got {rho}");
    if t < 0.0 {
        return 0.0;
    }
    if rho == 0.0 {
        return 1.0;
    }
    let t_stable = 14.0 / rho;
    if t <= t_stable {
        return erlang_series(rho, t);
    }
    // Tail extrapolation from the anchor point.
    let anchor = t_stable.floor();
    let tail_at_anchor = (1.0 - erlang_series(rho, anchor)).max(0.0);
    if tail_at_anchor == 0.0 {
        return 1.0;
    }
    let eta = tail_decay_rate(rho);
    (1.0 - tail_at_anchor * (-eta * (t - anchor)).exp()).clamp(0.0, 1.0)
}

/// The alternating Erlang series (reliable only for `ρ·t ≲ 14`).
fn erlang_series(rho: f64, t: f64) -> f64 {
    let mut sum = 0.0f64;
    let kmax = t.floor() as i64;
    for k in 0..=kmax {
        let x = rho * (k as f64 - t); // ≤ 0, so x^k = (-1)^k·(-x)^k
        let mut term = (-x).powi(k as i32) / factorial(k as u32) * (-x).exp();
        if k % 2 == 1 {
            term = -term;
        }
        sum += term;
    }
    ((1.0 - rho) * sum).clamp(0.0, 1.0)
}

/// Decay rate of the M/D/1 waiting-time tail: the unique `η > 0` with
/// `ρ(e^η - 1) = η` (Cramér/large-deviations exponent for deterministic
/// service), found by bisection.
pub fn tail_decay_rate(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho) && rho > 0.0);
    let f = |eta: f64| rho * (eta.exp() - 1.0) - eta;
    // f(0) = 0 with f'(0) = ρ-1 < 0; f → ∞: root in (0, hi).
    let mut hi = 1.0f64;
    while f(hi) < 0.0 {
        hi *= 2.0;
        assert!(hi < 1e3, "no tail root found");
    }
    let mut lo = 0.0f64;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Quantile of the M/D/1 waiting time: smallest `t` with
/// `P(W_q ≤ t) ≥ q`, found by bisection.
pub fn wait_quantile(rho: f64, q: f64) -> f64 {
    assert!((0.0..1.0).contains(&q), "quantile level must be in [0,1)");
    if q <= wait_cdf(rho, 0.0) {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 4.0f64);
    while wait_cdf(rho, hi) < q {
        hi *= 2.0;
        assert!(hi < 1e6, "quantile out of reach");
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if wait_cdf(rho, mid) < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn factorial(k: u32) -> f64 {
    (1..=k).fold(1.0f64, |acc, i| acc * i as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_traffic_limit_is_pure_service() {
        assert!((mean_sojourn(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(mean_wait(0.0), 0.0);
        assert_eq!(mean_number_in_system(0.0), 0.0);
    }

    #[test]
    fn little_consistency() {
        // N = ρ·T for unit-service M/D/1 (arrival rate = ρ).
        for &rho in &[0.1, 0.5, 0.9, 0.99] {
            let n = mean_number_in_system(rho);
            let t = mean_sojourn(rho);
            assert!((n - rho * t).abs() < 1e-12, "rho={rho}");
        }
    }

    #[test]
    fn md1_beats_mm1_in_wait_by_factor_two() {
        // Deterministic service halves the PK waiting time vs exponential.
        for &rho in &[0.3, 0.6, 0.9] {
            let md1_wait = mean_wait(rho);
            let mm1_wait = rho / (1.0 - rho); // M/M/1 wait with unit mean service
            assert!((mm1_wait / md1_wait - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heavy_traffic_blowup() {
        assert!(mean_sojourn(0.999) > 400.0);
    }

    #[test]
    fn rate_weighted_is_convex_increasing() {
        let xs: Vec<f64> = (1..99).map(|i| i as f64 / 100.0).collect();
        let f: Vec<f64> = xs.iter().map(|&x| rate_weighted_sojourn(x)).collect();
        assert!(f.windows(2).all(|w| w[1] > w[0]), "not increasing");
        // Convexity: second differences non-negative.
        assert!(f.windows(3).all(|w| w[2] - 2.0 * w[1] + w[0] >= -1e-12));
    }

    #[test]
    #[should_panic(expected = "need 0 ≤ ρ < 1")]
    fn rejects_supercritical() {
        mean_sojourn(1.0);
    }

    #[test]
    fn wait_cdf_boundary_values() {
        for &rho in &[0.2, 0.5, 0.8] {
            // P(W_q = 0) = 1 - ρ (PASTA: arriving customer finds server idle).
            assert!((wait_cdf(rho, 0.0) - (1.0 - rho)).abs() < 1e-12, "ρ={rho}");
            assert_eq!(wait_cdf(rho, -1.0), 0.0);
            // Far tail reaches 1.
            assert!(wait_cdf(rho, 200.0) > 0.999, "ρ={rho}");
        }
    }

    #[test]
    fn wait_cdf_monotone() {
        let rho = 0.7;
        let mut last = 0.0;
        for i in 0..200 {
            let t = i as f64 * 0.25;
            let c = wait_cdf(rho, t);
            assert!(c >= last - 1e-12, "CDF dipped at t={t}");
            last = c;
        }
    }

    #[test]
    fn wait_cdf_mean_matches_pk() {
        // E[W] = ∫ (1 - F(t)) dt ≈ ρ/(2(1-ρ)).
        let rho = 0.6;
        let dt = 0.01;
        let mut mean = 0.0;
        let mut t = 0.0;
        while t < 60.0 {
            mean += (1.0 - wait_cdf(rho, t)) * dt;
            t += dt;
        }
        assert!(
            (mean - mean_wait(rho)).abs() < 0.01,
            "integrated mean {mean} vs PK {}",
            mean_wait(rho)
        );
    }

    #[test]
    fn wait_quantile_inverts_cdf() {
        let rho = 0.75;
        for &q in &[0.3, 0.5, 0.9, 0.99] {
            let t = wait_quantile(rho, q);
            assert!((wait_cdf(rho, t) - q).abs() < 1e-6, "q={q}: t={t}");
        }
        // Below the atom at zero the quantile is 0.
        assert_eq!(wait_quantile(0.5, 0.3), 0.0);
    }

    #[test]
    fn wait_cdf_matches_simulation() {
        // Cross-check against the exact M/D/s simulator with s = 1:
        // empirical P(W ≤ 1.5) from sojourns (wait = sojourn - 1).
        use crate::mds::simulate_mean_sojourn;
        let rho = 0.7;
        // Simulate mean and compare with distribution mean as a holistic
        // check (full empirical CDF comparison lives in the e13 bench).
        let sim = simulate_mean_sojourn(1, rho, 150_000.0, 10_000.0, 3);
        let dist_mean = 1.0 + mean_wait(rho);
        assert!((sim - dist_mean).abs() / dist_mean < 0.03);
    }
}
