//! Deterministic discrete-event simulation kernel.
//!
//! The paper's model — independent Poisson sources feeding a network of
//! deterministic unit-service FIFO queues — is simulated exactly by the
//! tools in this crate:
//!
//! * [`events::EventQueue`] — a binary-heap future-event list with
//!   deterministic FIFO tie-breaking for simultaneous events;
//! * [`calendar::CalendarQueue`] — a bucketed time-wheel future-event list
//!   with the same deterministic order at amortized `O(1)` per event,
//!   exploiting the model's unit service times;
//! * [`sched::Scheduler`] — runtime selection between the two backends;
//! * [`engine`] — a minimal process/run-loop abstraction;
//! * [`rng::SimRng`] — seedable RNG streams with the exponential /
//!   Poisson / Bernoulli samplers the model needs (implemented here, no
//!   external distribution crate);
//! * [`stats`] — streaming statistics: Welford moments, time-weighted
//!   averages, occupancy histograms, reservoir quantiles and batch-means
//!   confidence intervals;
//! * [`slotted`] — the slotted-time clock of paper §3.4.
//!
//! Everything is deterministic given a seed, which the property tests rely
//! on heavily.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod engine;
pub mod events;
pub mod rng;
pub mod sched;
pub mod slotted;
pub mod stats;
pub mod time;
pub mod warmup;

pub use calendar::CalendarQueue;
pub use engine::{run_until, Process, StopReason};
pub use events::EventQueue;
pub use rng::{splitmix64, SimRng};
pub use sched::{Scheduler, SchedulerKind};
pub use stats::{
    BatchMeans, OccupancyHistogram, Reservoir, Tally, TimeIntegral, TimeWeighted, Welford,
};
pub use time::SimTime;
