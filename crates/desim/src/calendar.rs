//! Bucketed calendar-queue (time-wheel) future-event list.
//!
//! The paper's network is a *deterministic unit-service* system: every arc
//! serves in exactly 1.0 time units, so almost every event an in-flight
//! simulation schedules lands within one time unit of the clock (service
//! completions at `now + 1`, merged-Poisson arrivals at `now + Exp(Λ)`,
//! slot boundaries at `now + r ≤ now + 1`). A comparison-based heap pays
//! `O(log n)` for that near-future structure; a calendar queue (Brown 1988)
//! pays amortized `O(1)`.
//!
//! # Design
//!
//! * **Wheel.** `nbuckets` (power of two) buckets of width `width` cover
//!   the span `[epoch·width, (epoch + nbuckets)·width)`. An event at time
//!   `t` has global bucket index `g = ⌊t/width⌋`; events with `g` inside
//!   the span are appended — unsorted, `O(1)` — to bucket `g & (nbuckets-1)`.
//!   The width is sized from a caller-provided events-per-unit-time hint so
//!   the average bucket holds ~`EVENTS_PER_BUCKET` events.
//! * **Flat arena storage.** Bucket contents live in **one** contiguous
//!   arena of `STRIDE` entry slots per bucket, with per-bucket lengths in
//!   a dense `u16` array. A push is one L1 hit on the length array plus one
//!   write into the arena; walking an empty bucket touches only the length
//!   array. (A `Vec` per bucket would cost two scattered touches per push
//!   — header and data — and a cold header read per walk.) The rare bucket
//!   that exceeds its stride spills to a shared side `Vec` and is flagged,
//!   so correctness never depends on the sizing hint.
//! * **Drain.** When the cursor reaches a non-empty bucket, its entries
//!   (arena slice plus any spill) are copied to a drain buffer, sorted
//!   *descending* by `(time, seq)` — `O(k log k)`, amortized `O(1)` per
//!   event for constant occupancy — and consumed from the back with
//!   `Vec::pop`. Events pushed *into the epoch being drained* (including
//!   times at or before the drain point, which a heap would also serve
//!   next) are binary-search inserted at their descending position, so any
//!   push/pop interleaving a binary heap accepts is ordered identically
//!   here. All storage is recycled; the steady state allocates nothing.
//! * **Overflow lane.** Events beyond the span (far-future slot horizons,
//!   first arrivals of nearly-idle sources) go to a sorted overflow `Vec`. Each cursor advance migrates
//!   the overflow events that entered the span; when the wheel empties the
//!   cursor jumps straight to the earliest overflow event instead of
//!   walking empty buckets.
//!
//! # Determinism
//!
//! Pop order is **exactly** the `(time, f64::total_cmp, seq)` order of the
//! heap-backed [`EventQueue`](crate::events::EventQueue): bucket partition
//! respects time order (equal times share a bucket), each bucket is
//! consumed in `(time, seq)` order, and in-drain pushes are placed by the
//! same comparison. The differential tests in `hyperroute-core` assert
//! byte-identical simulation reports across both backends.
//!
//! Like `EventQueue`, time validation is a `debug_assert!` — the simulators
//! validate their configurations once at construction instead of paying a
//! branch per event (the hottest line in the workspace). Feeding a NaN
//! time in a release build is unsupported: the heap would order it after
//! every finite event, the calendar files it in the current bucket, so the
//! two backends may diverge — which is why the simulators' constructors
//! reject any configuration that could produce one.

use crate::time::SimTime;

/// Average events per bucket the sizing hint aims for: wide enough that
/// the cursor rarely walks empty buckets, narrow enough that per-bucket
/// sorts stay short insertion sorts (tuned empirically on the d=8, ρ=0.8
/// hypercube kernel; throughput is flat within ~5% for 4–8).
const EVENTS_PER_BUCKET: f64 = 8.0;

/// Arena slots per bucket. With ~[`EVENTS_PER_BUCKET`] expected events the
/// stride overflows with probability ~0.4% per bucket (Poisson tail);
/// overflowing buckets and simultaneous-event bursts (slotted batches)
/// take the spill lane.
const STRIDE: usize = 16;

/// Simulated time the wheel spans. Must exceed 1.0 by at least one bucket
/// so `now + 1.0` completions always land inside it; 1.5 keeps the arena
/// footprint small without risking the overflow lane on unit steps.
const SPAN: f64 = 1.5;

/// Spill flag on a bucket's length word.
const SPILLED: u16 = 0x8000;

/// A scheduled event with its deterministic tie-break key.
#[derive(Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key_before(&self, time: SimTime, seq: u64) -> bool {
        match self.time.total_cmp(&time) {
            core::cmp::Ordering::Less => true,
            core::cmp::Ordering::Equal => self.seq < seq,
            core::cmp::Ordering::Greater => false,
        }
    }
}

/// Bucketed future-event list with deterministic FIFO tie-breaking;
/// a drop-in replacement for [`EventQueue`](crate::events::EventQueue)
/// with amortized `O(1)` push/pop on unit-service workloads.
///
/// `E: Clone` because freed arena slots keep their last entry (the safe
/// alternative to uninitialized storage; events are small `Copy` types in
/// practice).
pub struct CalendarQueue<E: Clone> {
    /// `STRIDE` entry slots per bucket; lazily filled on the first push
    /// (slots at or past a bucket's length hold stale clones).
    arena: Vec<Entry<E>>,
    /// Per-bucket entry count (low bits) and [`SPILLED`] flag.
    lens: Vec<u16>,
    mask: u64,
    inv_width: f64,
    /// Global index of the bucket the cursor is on.
    epoch: u64,
    /// The current epoch's remaining events, sorted descending by
    /// `(time, seq)` — popped from the back. Only meaningful while
    /// `draining`.
    drain_buf: Vec<Entry<E>>,
    /// Whether `drain_buf` holds the current epoch's events.
    draining: bool,
    /// Entries of buckets that outgrew their stride, tagged with their
    /// bucket index (at most one in-span epoch maps to a bucket at a time).
    spill: Vec<(u32, Entry<E>)>,
    /// Events in the wheel (arena + spill + drain buffer).
    wheel_len: usize,
    /// Far-future events, kept sorted **descending** by `(time, seq)` so
    /// migration pops from the back; re-sorted lazily after pushes.
    overflow: Vec<Entry<E>>,
    overflow_dirty: bool,
    /// Global insertion counter (the FIFO tie-break).
    seq: u64,
}

impl<E: Clone> CalendarQueue<E> {
    /// Calendar sized for roughly `events_per_unit` concurrently scheduled
    /// events per unit of simulated time (the hint controls bucket width;
    /// correctness never depends on it — misfits spill or overflow).
    pub fn with_rate_hint(events_per_unit: f64) -> CalendarQueue<E> {
        let target = (events_per_unit * SPAN / EVENTS_PER_BUCKET).clamp(16.0, 65_536.0);
        let nbuckets = (target as u64).next_power_of_two();
        let width = SPAN / nbuckets as f64;
        CalendarQueue {
            arena: Vec::new(),
            lens: vec![0; nbuckets as usize],
            mask: nbuckets - 1,
            inv_width: 1.0 / width,
            epoch: 0,
            drain_buf: Vec::new(),
            draining: false,
            spill: Vec::new(),
            wheel_len: 0,
            overflow: Vec::new(),
            overflow_dirty: false,
            seq: 0,
        }
    }

    /// Global bucket index of `time` (saturating).
    #[inline]
    fn global_bucket(&self, time: SimTime) -> u64 {
        // `as` saturates: negative and NaN -> 0, +huge -> u64::MAX (the
        // span check in `push` routes the latter to the overflow lane).
        // Release-mode NaN therefore lands in the current bucket — see the
        // module docs; debug builds reject it on push.
        (time * self.inv_width) as u64
    }

    /// Schedule `payload` at `time`.
    ///
    /// Debug builds reject NaN/negative times; release builds rely on the
    /// construction-time validation of the simulators (mirroring
    /// [`EventQueue::push`](crate::events::EventQueue::push)).
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        debug_assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        let seq = self.seq;
        self.seq += 1;
        let g = self.global_bucket(time);
        // Saturating: for epochs near u64::MAX the clipped span reaches the
        // end of the representable range, so every in-range `g` is "inside"
        // (the wheel degenerates to one bucket; order still holds because a
        // bucket is fully sorted before draining).
        if g > self.epoch.saturating_add(self.mask) {
            // Beyond the wheel span: sorted-overflow lane.
            self.overflow.push(Entry { time, seq, payload });
            self.overflow_dirty = true;
            return;
        }
        let entry = Entry { time, seq, payload };
        self.wheel_len += 1;
        if g <= self.epoch && self.draining {
            // Into the epoch being drained (or nominally before it, which
            // a heap would serve next): binary-search insert at the
            // descending position. Keys are unique (seq is), so the strict
            // "orders after the new entry" predicate partitions cleanly.
            let at = self.drain_buf.partition_point(|e| !e.key_before(time, seq));
            self.drain_buf.insert(at, entry);
        } else {
            self.bucket_append((g.max(self.epoch) & self.mask) as usize, entry);
        }
    }

    /// Append to a bucket's arena slots, spilling past the stride.
    #[inline]
    fn bucket_append(&mut self, slot: usize, entry: Entry<E>) {
        if self.arena.is_empty() {
            // First push: materialize the arena, filled with clones of the
            // first entry (stale slots are never read past a bucket's len;
            // cloning sidesteps uninitialized storage without `unsafe`).
            let n = (self.mask as usize + 1) * STRIDE;
            self.arena = vec![entry.clone(); n];
        }
        let len = self.lens[slot];
        if (len as usize) < STRIDE {
            self.arena[slot * STRIDE + len as usize] = entry;
            self.lens[slot] = len + 1;
        } else {
            self.spill.push((slot as u32, entry));
            self.lens[slot] = len | SPILLED;
        }
    }

    /// Pop the earliest event (ties: insertion order). Amortized `O(1)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Fast path: the current epoch is mid-drain.
        if self.draining {
            if let Some(entry) = self.drain_buf.pop() {
                self.wheel_len -= 1;
                return Some((entry.time, entry.payload));
            }
        }
        self.pop_slow()
    }

    fn pop_slow(&mut self) -> Option<(SimTime, E)> {
        self.advance_to_nonempty()?;
        let entry = self
            .drain_buf
            .pop()
            .expect("advance filled the drain buffer");
        self.wheel_len -= 1;
        Some((entry.time, entry.payload))
    }

    /// Pop the earliest event only if its time is at or before `bound` —
    /// the one-call merge primitive for simulators that keep a
    /// self-scheduling stream outside the queue. The fast path is a
    /// single compare against the tail of the drain buffer.
    #[inline]
    pub fn pop_at_or_before(&mut self, bound: SimTime) -> Option<(SimTime, E)> {
        if self.draining {
            if let Some(entry) = self.drain_buf.last() {
                if entry.time <= bound {
                    let entry = self.drain_buf.pop().expect("checked non-empty");
                    self.wheel_len -= 1;
                    return Some((entry.time, entry.payload));
                }
                return None;
            }
        }
        // Slow path: load the next bucket, then re-check the bound.
        self.advance_to_nonempty()?;
        let entry = self.drain_buf.last().expect("advance filled the buffer");
        if entry.time > bound {
            return None;
        }
        let entry = self.drain_buf.pop().expect("checked non-empty");
        self.wheel_len -= 1;
        Some((entry.time, entry.payload))
    }

    /// Payload of the next event without removing it (the event that the
    /// next `pop` returns).
    #[inline]
    pub fn peek_payload(&mut self) -> Option<&E> {
        if !self.draining || self.drain_buf.is_empty() {
            self.advance_to_nonempty()?;
        }
        self.drain_buf.last().map(|e| &e.payload)
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.draining {
            if let Some(entry) = self.drain_buf.last() {
                return Some(entry.time);
            }
        }
        self.advance_to_nonempty()?;
        Some(
            self.drain_buf
                .last()
                .expect("advance filled the drain buffer")
                .time,
        )
    }

    /// Move the cursor to the next bucket with pending events and load it
    /// into the (sorted) drain buffer; migrate overflow events that enter
    /// the span. Returns `None` when the queue is empty.
    fn advance_to_nonempty(&mut self) -> Option<()> {
        loop {
            let slot = (self.epoch & self.mask) as usize;
            let len = self.lens[slot];
            if len != 0 {
                self.load_drain_buf(slot, len);
                return Some(());
            }
            if self.wheel_len == 0 {
                if self.overflow.is_empty() {
                    self.draining = false;
                    return None;
                }
                // Wheel empty: jump straight to the earliest overflow event
                // instead of stepping over empty buckets one by one.
                self.sort_overflow_if_dirty();
                let earliest = self.overflow.last().expect("overflow non-empty").time;
                self.epoch = self
                    .global_bucket(earliest)
                    .max(self.epoch.saturating_add(1));
            } else {
                self.epoch = self.epoch.saturating_add(1);
            }
            self.draining = false;
            if !self.overflow.is_empty() {
                self.migrate_overflow();
            }
        }
    }

    /// Copy one bucket's entries (arena slice + spill) into the drain
    /// buffer and sort it for back-to-front consumption.
    fn load_drain_buf(&mut self, slot: usize, len: u16) {
        debug_assert!(self.drain_buf.is_empty());
        let k = (len & !SPILLED) as usize;
        self.drain_buf
            .extend_from_slice(&self.arena[slot * STRIDE..slot * STRIDE + k]);
        if len & SPILLED != 0 {
            // Rare: the bucket outgrew its stride. Extract its spill
            // entries (a bucket index identifies a unique in-span epoch).
            let drain_buf = &mut self.drain_buf;
            self.spill.retain(|(s, e)| {
                if *s as usize == slot {
                    drain_buf.push(e.clone());
                    false
                } else {
                    true
                }
            });
        }
        self.lens[slot] = 0;
        sort_desc(&mut self.drain_buf);
        self.draining = true;
    }

    /// Pull overflow events that now fall inside the wheel span.
    fn migrate_overflow(&mut self) {
        self.sort_overflow_if_dirty();
        // A saturated horizon means the clipped span reaches the end of the
        // representable bucket range: every overflow event is "inside" and
        // migrates (the wheel degenerates gracefully near u64::MAX).
        let horizon = self.epoch.saturating_add(self.mask + 1);
        while let Some(last) = self.overflow.last() {
            let g = self.global_bucket(last.time);
            if g >= horizon && horizon != u64::MAX {
                break;
            }
            let entry = self.overflow.pop().expect("checked non-empty");
            // Migrated events are never behind the cursor: their bucket is
            // at or after the (fresh, not-yet-drained) current epoch.
            let slot = (g.max(self.epoch) & self.mask) as usize;
            self.bucket_append(slot, entry);
            self.wheel_len += 1;
        }
    }

    fn sort_overflow_if_dirty(&mut self) {
        if self.overflow_dirty {
            sort_desc(&mut self.overflow);
            self.overflow_dirty = false;
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all pending events (the insertion counter keeps counting, so
    /// determinism is preserved across reuse).
    pub fn clear(&mut self) {
        self.lens.iter_mut().for_each(|l| *l = 0);
        self.drain_buf.clear();
        self.draining = false;
        self.spill.clear();
        self.overflow.clear();
        self.overflow_dirty = false;
        self.wheel_len = 0;
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

/// Sort entries descending by `(time, seq)` — drain order is back-to-front.
///
/// Buckets average a handful of entries, where a branchy insertion sort
/// beats the general-purpose `sort_unstable_by` dispatch; large slices
/// (overflow bursts, spilled buckets) fall back to it.
fn sort_desc<E: Clone>(entries: &mut [Entry<E>]) {
    if entries.len() <= 24 {
        for i in 1..entries.len() {
            let (time, seq) = (entries[i].time, entries[i].seq);
            let mut j = i;
            while j > 0 && entries[j - 1].key_before(time, seq) {
                entries.swap(j - 1, j);
                j -= 1;
            }
        }
    } else {
        entries.sort_unstable_by(|a, b| b.time.total_cmp(&a.time).then_with(|| b.seq.cmp(&a.seq)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::with_rate_hint(8.0);
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo_through_spill() {
        // 100 events at one instant: far beyond the stride, so most take
        // the spill lane — order must still be insertion order.
        let mut q = CalendarQueue::with_rate_hint(50.0);
        for i in 0..100 {
            q.push(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_into_epoch_being_drained() {
        let mut q = CalendarQueue::with_rate_hint(4.0);
        q.push(0.10, "first");
        q.push(0.20, "third");
        assert_eq!(q.pop(), Some((0.10, "first")));
        // Lands in the epoch currently being drained, before the pending
        // 0.20 — and a nominally-stale time behaves like the heap (next).
        q.push(0.15, "second");
        q.push(0.12, "also-second-but-later-seq");
        assert_eq!(q.pop().unwrap().1, "also-second-but-later-seq");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn far_future_overflow_and_jump() {
        let mut q = CalendarQueue::with_rate_hint(16.0);
        q.push(1_000.0, "far");
        q.push(2_000.0, "farther");
        q.push(0.5, "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((0.5, "near")));
        assert_eq!(q.pop(), Some((1_000.0, "far")));
        assert_eq!(q.pop(), Some((2_000.0, "farther")));
        assert!(q.is_empty());
    }

    #[test]
    fn unit_service_pattern_stays_in_wheel() {
        // now + 1.0 completions: the dominant pattern. Interleave pushes
        // and pops as a simulator would.
        let mut q = CalendarQueue::with_rate_hint(4.0);
        q.push(0.0, 0u32);
        let mut popped = Vec::new();
        for i in 1..=1000u32 {
            let (t, v) = q.pop().expect("queue drained early");
            popped.push(v);
            if i <= 999 {
                q.push(t + 1.0, i);
            }
        }
        assert_eq!(popped.len(), 1000);
        assert!(popped.windows(2).all(|w| w[0] < w[1]));
        assert!(q.overflow.is_empty(), "unit steps must never overflow");
    }

    #[test]
    fn matches_heap_on_random_monotone_stream() {
        use crate::events::EventQueue;
        // LCG-driven random DES-like interleaving; both queues must agree
        // event for event.
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::with_rate_hint(32.0);
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut lcg = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..64u32 {
            let t = lcg() * 3.0;
            heap.push(t, i);
            cal.push(t, i);
        }
        let mut id = 64u32;
        for _ in 0..20_000 {
            let (th, vh) = heap.pop().expect("heap empty");
            let (tc, vc) = cal.pop().expect("calendar empty");
            assert_eq!((th, vh), (tc, vc));
            let now = th;
            // Schedule 0-2 follow-ups, mixing sub-unit, unit, and far gaps.
            let r = lcg();
            let n = if (0.45..0.55).contains(&r) { 2 } else { 1 };
            for _ in 0..n {
                let gap = match (lcg() * 4.0) as u32 {
                    0 => lcg() * 0.05,
                    1 => 1.0,
                    2 => lcg() * 1.5,
                    _ => 5.0 + lcg() * 50.0,
                };
                heap.push(now + gap, id);
                cal.push(now + gap, id);
                id += 1;
            }
            assert_eq!(heap.len(), cal.len());
        }
        // Drain the rest.
        while let Some(a) = heap.pop() {
            assert_eq!(Some(a), cal.pop());
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn matches_heap_with_simultaneous_bursts() {
        use crate::events::EventQueue;
        // Slotted-time pattern: bursts of equal-time events (spill lane)
        // interleaved with unit completions.
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::with_rate_hint(64.0);
        let mut id = 0u32;
        for burst in 0..50 {
            let t = burst as f64 * 0.5;
            for _ in 0..40 {
                heap.push(t + 1.0, id);
                cal.push(t + 1.0, id);
                id += 1;
            }
            for _ in 0..30 {
                let a = heap.pop();
                assert_eq!(a, cal.pop());
                if let Some((now, _)) = a {
                    heap.push(now + 1.0, id);
                    cal.push(now + 1.0, id);
                    id += 1;
                }
            }
        }
        while let Some(a) = heap.pop() {
            assert_eq!(Some(a), cal.pop());
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = CalendarQueue::with_rate_hint(8.0);
        q.push(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_keeps_counter() {
        let mut q = CalendarQueue::with_rate_hint(8.0);
        q.push(1.0, 1);
        q.push(900.0, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        q.push(1.0, 3);
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.pop(), Some((1.0, 3)));
    }

    #[test]
    fn zero_time_events() {
        let mut q = CalendarQueue::with_rate_hint(8.0);
        q.push(0.0, "a");
        q.push(0.0, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_in_debug() {
        let mut q = CalendarQueue::with_rate_hint(8.0);
        q.push(f64::NAN, ());
    }

    #[test]
    fn astronomically_far_events_do_not_overflow_epoch_arithmetic() {
        // Bucket indices saturate near u64::MAX (e.g. a first arrival drawn
        // from Exp(1e-20)); the epoch walk must degrade gracefully instead
        // of overflowing (debug) or spinning (release).
        let mut q = CalendarQueue::with_rate_hint(8.0);
        q.push(3.0e18, "huge");
        q.push(1.0, "near");
        q.push(f64::MAX, "max");
        assert_eq!(q.pop(), Some((1.0, "near")));
        assert_eq!(q.pop(), Some((3.0e18, "huge")));
        assert_eq!(q.pop(), Some((f64::MAX, "max")));
        assert_eq!(q.pop(), None);
        // Still usable afterwards (epoch is pinned at the end of the
        // representable range; new far-future pushes keep working).
        q.push(4.0e18, "later");
        assert_eq!(q.pop(), Some((4.0e18, "later")));
    }

    #[test]
    fn extreme_rate_hints_clamp() {
        let mut tiny = CalendarQueue::with_rate_hint(0.0);
        let mut huge = CalendarQueue::with_rate_hint(1e12);
        for i in 0..100 {
            tiny.push(i as f64 * 0.37, i);
            huge.push(i as f64 * 0.37, i);
        }
        for i in 0..100 {
            assert_eq!(tiny.pop().unwrap().1, i);
            assert_eq!(huge.pop().unwrap().1, i);
        }
    }
}
