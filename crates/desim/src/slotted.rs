//! Slotted time (paper §3.4).
//!
//! The time axis is divided into slots of duration `r = 1/m` for an integer
//! `m ≥ 1` ("1/r is integer" in the paper, so packets fit slots exactly).
//! Every node generates a Poisson-distributed **batch** of packets at the
//! beginning of each slot, with mean `λ·r`, keeping the traffic intensity
//! equal to the continuous-time model's.

use serde::{Deserialize, Serialize};

/// A slotted-time clock: slot `k` begins at `k * r`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlotClock {
    /// Slot duration `r`; the paper requires `1/r` integer and `r ≤ 1`.
    slot: f64,
    /// Inverse slot duration (`1/r`).
    per_unit: u32,
}

impl SlotClock {
    /// Clock with `per_unit` slots per unit time (`r = 1/per_unit`).
    pub fn per_unit_time(per_unit: u32) -> SlotClock {
        assert!(per_unit >= 1, "need at least one slot per unit time");
        SlotClock {
            slot: 1.0 / per_unit as f64,
            per_unit,
        }
    }

    /// Slot duration `r`.
    #[inline]
    pub fn slot(self) -> f64 {
        self.slot
    }

    /// Number of slots per unit time (`1/r`).
    #[inline]
    pub fn slots_per_unit(self) -> u32 {
        self.per_unit
    }

    /// Start time of slot `k`.
    #[inline]
    pub fn start_of(self, k: u64) -> f64 {
        k as f64 * self.slot
    }

    /// Index of the slot containing time `t` (boundaries belong to the
    /// starting slot).
    ///
    /// Slot durations like 1/3 are not representable in binary floating
    /// point, so the division is nudged by 1 ns-scale epsilon to keep exact
    /// boundaries in their own slot.
    #[inline]
    pub fn slot_of(self, t: f64) -> u64 {
        debug_assert!(t >= 0.0);
        (t * self.per_unit as f64 + 1e-9).floor() as u64
    }

    /// The first slot boundary at or after `t`.
    #[inline]
    pub fn next_boundary(self, t: f64) -> f64 {
        let k = (t * self.per_unit as f64 - 1e-9).ceil().max(0.0) as u64;
        self.start_of(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_exact_for_unit_slots() {
        let c = SlotClock::per_unit_time(1);
        assert_eq!(c.slot(), 1.0);
        assert_eq!(c.start_of(17), 17.0);
        assert_eq!(c.slot_of(16.999), 16);
        assert_eq!(c.slot_of(17.0), 17);
    }

    #[test]
    fn quarter_slots() {
        let c = SlotClock::per_unit_time(4);
        assert_eq!(c.slot(), 0.25);
        assert_eq!(c.start_of(3), 0.75);
        assert_eq!(c.slot_of(0.74), 2);
        assert_eq!(c.slot_of(0.75), 3);
        assert_eq!(c.next_boundary(0.6), 0.75);
        assert_eq!(c.next_boundary(0.75), 0.75);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn rejects_zero() {
        SlotClock::per_unit_time(0);
    }

    #[test]
    fn slot_of_inverts_start_of() {
        let c = SlotClock::per_unit_time(3);
        for k in 0..1000u64 {
            assert_eq!(c.slot_of(c.start_of(k)), k);
        }
    }
}
