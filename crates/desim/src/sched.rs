//! Pluggable future-event-list backend: binary heap or calendar queue.
//!
//! Both backends pop in exactly the same `(time, insertion-seq)` order, so
//! a simulation is a bit-identical deterministic function of its seed under
//! either; [`SchedulerKind`] picks the cost model. The calendar queue is
//! the default — it exploits the unit-service structure of the paper's
//! model for amortized `O(1)` scheduling — and the heap remains available
//! for differential testing and for workloads with pathological time
//! distributions.

use crate::calendar::CalendarQueue;
use crate::events::EventQueue;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which future-event-list implementation a simulator drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerKind {
    /// Binary min-heap keyed on `(time, seq)` — `O(log n)` per operation,
    /// insensitive to the event-time distribution.
    Heap,
    /// Bucketed calendar queue / time wheel — amortized `O(1)` per
    /// operation on the unit-service workloads this workspace simulates.
    #[default]
    Calendar,
}

impl SchedulerKind {
    /// Human-readable name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A future-event list with a runtime-selected backend.
///
/// The enum dispatch is a predictable two-way branch; the queue operations
/// behind it dominate, so no generic plumbing through the simulators is
/// needed.
pub enum Scheduler<E: Clone> {
    /// Heap-backed.
    Heap(EventQueue<E>),
    /// Calendar-backed.
    Calendar(CalendarQueue<E>),
}

impl<E: Clone> Scheduler<E> {
    /// Build the chosen backend. `events_per_unit` sizes the calendar's
    /// buckets (ignored by the heap); correctness never depends on it.
    pub fn new(kind: SchedulerKind, events_per_unit: f64) -> Scheduler<E> {
        match kind {
            SchedulerKind::Heap => Scheduler::Heap(EventQueue::new()),
            SchedulerKind::Calendar => {
                Scheduler::Calendar(CalendarQueue::with_rate_hint(events_per_unit))
            }
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            Scheduler::Heap(_) => SchedulerKind::Heap,
            Scheduler::Calendar(_) => SchedulerKind::Calendar,
        }
    }

    /// Schedule `payload` at `time` (debug builds validate the time).
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        match self {
            Scheduler::Heap(q) => q.push(time, payload),
            Scheduler::Calendar(q) => q.push(time, payload),
        }
    }

    /// Pop the earliest event (ties: insertion order).
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Scheduler::Heap(q) => q.pop(),
            Scheduler::Calendar(q) => q.pop(),
        }
    }

    /// Pop the earliest event only if its time is at or before `bound`
    /// (ties: insertion order) — one call instead of `peek_time` +
    /// conditional `pop`, for merging the queue with an out-of-queue
    /// self-scheduling event stream.
    #[inline]
    pub fn pop_at_or_before(&mut self, bound: SimTime) -> Option<(SimTime, E)> {
        match self {
            Scheduler::Heap(q) => q.pop_at_or_before(bound),
            Scheduler::Calendar(q) => q.pop_at_or_before(bound),
        }
    }

    /// Time of the next event without removing it.
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            Scheduler::Heap(q) => q.peek_time(),
            Scheduler::Calendar(q) => q.peek_time(),
        }
    }

    /// Payload of the next event without removing it — what the next
    /// `pop` will return.
    #[inline]
    pub fn peek_payload(&mut self) -> Option<&E> {
        match self {
            Scheduler::Heap(q) => q.peek_payload(),
            Scheduler::Calendar(q) => q.peek_payload(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            Scheduler::Heap(q) => q.len(),
            Scheduler::Calendar(q) => q.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        match self {
            Scheduler::Heap(q) => q.scheduled_total(),
            Scheduler::Calendar(q) => q.scheduled_total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kind_is_calendar() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Calendar);
        assert_ne!(SchedulerKind::Heap.name(), SchedulerKind::Calendar.name());
    }

    #[test]
    fn both_backends_agree_on_simple_stream() {
        let mut heap = Scheduler::new(SchedulerKind::Heap, 8.0);
        let mut cal = Scheduler::new(SchedulerKind::Calendar, 8.0);
        assert_eq!(heap.kind(), SchedulerKind::Heap);
        assert_eq!(cal.kind(), SchedulerKind::Calendar);
        for (t, v) in [(2.5, 1), (0.25, 2), (2.5, 3), (7.0, 4), (0.25, 5)] {
            heap.push(t, v);
            cal.push(t, v);
        }
        assert_eq!(heap.len(), cal.len());
        assert_eq!(heap.peek_time(), cal.peek_time());
        for _ in 0..5 {
            assert_eq!(heap.pop(), cal.pop());
        }
        assert!(heap.is_empty() && cal.is_empty());
        assert_eq!(heap.scheduled_total(), 5);
        assert_eq!(cal.scheduled_total(), 5);
    }
}
