//! Future-event list.
//!
//! A binary min-heap keyed on `(time, sequence)` where the sequence number
//! is a global insertion counter: simultaneous events fire in insertion
//! order, which makes every simulation in this workspace a deterministic
//! function of its seed. Times are totally ordered with `f64::total_cmp`
//! (NaN is rejected on push).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: payload `E` at time `time`.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Future-event list with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedule `payload` at `time`.
    ///
    /// Debug builds panic on NaN or negative time. Release builds skip the
    /// check — this is the hottest line in the workspace (every event of
    /// every simulation passes through it), and the simulators validate
    /// their configurations once at construction instead; `f64::total_cmp`
    /// keeps the heap well-ordered even if a NaN slips through.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        debug_assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Pop the earliest event (ties: insertion order).
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Pop the earliest event only if its time is at or before `bound` —
    /// the one-call merge primitive for simulators that keep a
    /// self-scheduling stream (next firing known in advance) outside the
    /// queue. Equivalent to `peek_time` + conditional `pop`.
    #[inline]
    pub fn pop_at_or_before(&mut self, bound: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().is_some_and(|e| e.time <= bound) {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Payload of the next event without removing it.
    #[inline]
    pub fn peek_payload(&self) -> Option<&E> {
        self.heap.peek().map(|e| &e.payload)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discard all pending events (the insertion counter keeps counting, so
    /// determinism is preserved across reuse).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn interleaved_ties_and_order() {
        let mut q = EventQueue::new();
        q.push(2.0, "t2-first");
        q.push(1.0, "t1");
        q.push(2.0, "t2-second");
        q.push(0.5, "t05");
        assert_eq!(q.pop().unwrap().1, "t05");
        assert_eq!(q.pop().unwrap().1, "t1");
        assert_eq!(q.pop().unwrap().1, "t2-first");
        assert_eq!(q.pop().unwrap().1, "t2-second");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_in_debug() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bad event time")]
    fn rejects_negative_in_debug() {
        let mut q = EventQueue::new();
        q.push(-1.0, ());
    }

    #[test]
    fn clear_keeps_counter() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        q.push(1.0, 3);
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn large_random_sequence_is_sorted() {
        // Pseudo-random insertion using a simple LCG (no rand dependency in
        // unit tests of the queue itself).
        let mut q = EventQueue::new();
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (x >> 11) as f64 / (1u64 << 53) as f64 * 1000.0;
            q.push(t, ());
        }
        let mut last = -1.0;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
