//! Minimal run-loop over an [`EventQueue`].
//!
//! A simulation is a [`Process`]: a state machine that handles one event at
//! a time and may schedule further events. [`run_until`] drains the queue up
//! to a horizon. Simulators that need finer control (the packet-level
//! simulators in `hyperroute-core`) drive their queues directly; this
//! abstraction exists so small models (single queues, the Fig. 2 network)
//! share one tested loop.

use crate::events::EventQueue;
use crate::time::SimTime;

/// Why [`run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The next event lies at or beyond the horizon (it remains queued).
    HorizonReached,
    /// No events remain.
    QueueEmpty,
    /// The process requested an early stop.
    ProcessStopped,
}

/// A discrete-event state machine.
pub trait Process<E> {
    /// Handle `event` occurring at `now`; schedule follow-ups on `queue`.
    /// Return `false` to stop the simulation immediately.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>) -> bool;
}

/// Run `process` until `horizon` (events strictly before it), the queue
/// empties, or the process stops. Returns the stop reason and the number of
/// events processed.
pub fn run_until<E, P: Process<E>>(
    process: &mut P,
    queue: &mut EventQueue<E>,
    horizon: SimTime,
) -> (StopReason, u64) {
    let mut processed = 0;
    loop {
        match queue.peek_time() {
            None => return (StopReason::QueueEmpty, processed),
            Some(t) if t >= horizon => return (StopReason::HorizonReached, processed),
            Some(_) => {
                let (now, ev) = queue.pop().expect("peeked event vanished");
                processed += 1;
                if !process.handle(now, ev, queue) {
                    return (StopReason::ProcessStopped, processed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy process: a counter that reschedules itself every `step` until a
    /// fixed number of firings.
    struct Ticker {
        step: f64,
        remaining: u32,
        fired_at: Vec<f64>,
    }

    impl Process<()> for Ticker {
        fn handle(&mut self, now: f64, _ev: (), q: &mut EventQueue<()>) -> bool {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                q.push(now + self.step, ());
            }
            true
        }
    }

    #[test]
    fn ticker_fires_until_queue_empty() {
        let mut t = Ticker {
            step: 0.5,
            remaining: 4,
            fired_at: vec![],
        };
        let mut q = EventQueue::new();
        q.push(0.0, ());
        let (reason, n) = run_until(&mut t, &mut q, 100.0);
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(n, 5);
        assert_eq!(t.fired_at, vec![0.0, 0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn horizon_stops_and_preserves_future_events() {
        let mut t = Ticker {
            step: 1.0,
            remaining: 100,
            fired_at: vec![],
        };
        let mut q = EventQueue::new();
        q.push(0.0, ());
        let (reason, n) = run_until(&mut t, &mut q, 3.5);
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(n, 4); // events at 0,1,2,3
        assert_eq!(q.peek_time(), Some(4.0));
        // Resume from where we stopped.
        let (reason2, n2) = run_until(&mut t, &mut q, 6.5);
        assert_eq!(reason2, StopReason::HorizonReached);
        assert_eq!(n2, 3); // 4,5,6
    }

    struct StopAfter(u32);
    impl Process<u32> for StopAfter {
        fn handle(&mut self, _now: f64, ev: u32, _q: &mut EventQueue<u32>) -> bool {
            ev < self.0
        }
    }

    #[test]
    fn process_can_stop_early() {
        let mut p = StopAfter(2);
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(i as f64, i);
        }
        let (reason, n) = run_until(&mut p, &mut q, f64::MAX);
        assert_eq!(reason, StopReason::ProcessStopped);
        assert_eq!(n, 3); // events 0,1 continue; 2 stops
    }
}
