//! Streaming statistics for steady-state estimation.
//!
//! The paper's quantities are stationary expectations: the per-packet delay
//! `T`, the mean number-in-system `N` (related by Little's law), and
//! per-server occupancy distributions (geometric under the product form).
//! These collectors estimate them from finite runs:
//!
//! * [`Welford`] — numerically stable mean/variance of i.i.d.-ish samples
//!   (per-packet delays);
//! * [`TimeWeighted`] — time-average of a piecewise-constant signal
//!   (number in system);
//! * [`OccupancyHistogram`] — fraction of time a server spends at each
//!   occupancy (for the geometric product-form check);
//! * [`Reservoir`] — uniform sample for quantiles;
//! * [`BatchMeans`] — batch-means confidence intervals for steady-state
//!   means.

use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Count-and-sum accumulator for streaming means.
///
/// The hot-path sibling of [`Welford`]: one add per observation, no
/// division, no variance. The simulators push one of these per delivered
/// packet, where Welford's per-push division is measurable; use [`Welford`]
/// whenever a variance is needed.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Tally {
    count: u64,
    sum: f64,
}

impl Tally {
    /// Empty accumulator.
    pub fn new() -> Tally {
        Tally::default()
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (σ/√n). Biased for autocorrelated series;
    /// use [`BatchMeans`] for steady-state CIs.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merge another accumulator (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Time-average of a piecewise-constant real signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the value is held
/// constant between updates. `mean(t)` integrates up to `t`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_t: SimTime,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Signal starting at `t0` with initial `value`.
    pub fn new(t0: SimTime, value: f64) -> TimeWeighted {
        TimeWeighted {
            start: t0,
            last_t: t0,
            value,
            integral: 0.0,
            peak: value,
        }
    }

    /// Record that the signal takes `value` from time `t` on.
    /// `t` must not decrease between calls.
    #[inline]
    pub fn set(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            t >= self.last_t,
            "time went backwards: {t} < {}",
            self.last_t
        );
        self.integral += self.value * (t - self.last_t);
        self.last_t = t;
        self.value = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Add `delta` to the current value at time `t`.
    #[inline]
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-average over `[t0, t]`; `t` must be ≥ the last update time.
    pub fn mean(&self, t: SimTime) -> f64 {
        debug_assert!(t >= self.last_t);
        let span = t - self.start;
        if span <= 0.0 {
            return self.value;
        }
        (self.integral + self.value * (t - self.last_t)) / span
    }

    /// Restart integration from time `t`, keeping the current value.
    /// Used to discard a warm-up transient.
    pub fn reset(&mut self, t: SimTime) {
        self.start = t;
        self.last_t = t;
        self.integral = 0.0;
        self.peak = self.value;
    }
}

/// Time-average of a piecewise-constant signal, without peak tracking.
///
/// The hot-path sibling of [`TimeWeighted`]: the packet simulators update
/// one of these per dimension on **every** enqueue and completion, where
/// the peak comparison is dead weight (only the mean is reported).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TimeIntegral {
    start: SimTime,
    last_t: SimTime,
    value: f64,
    integral: f64,
}

impl TimeIntegral {
    /// Signal starting at `t0` with initial `value`.
    pub fn new(t0: SimTime, value: f64) -> TimeIntegral {
        TimeIntegral {
            start: t0,
            last_t: t0,
            value,
            integral: 0.0,
        }
    }

    /// Add `delta` to the signal at time `t` (`t` must not decrease).
    #[inline]
    pub fn add(&mut self, t: SimTime, delta: f64) {
        debug_assert!(t >= self.last_t, "time went backwards");
        self.integral += self.value * (t - self.last_t);
        self.last_t = t;
        self.value += delta;
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-average over `[t0, t]`; `t` must be ≥ the last update time.
    pub fn mean(&self, t: SimTime) -> f64 {
        debug_assert!(t >= self.last_t);
        let span = t - self.start;
        if span <= 0.0 {
            return self.value;
        }
        (self.integral + self.value * (t - self.last_t)) / span
    }

    /// Restart integration from time `t`, keeping the current value
    /// (discards a warm-up transient).
    pub fn reset(&mut self, t: SimTime) {
        self.start = t;
        self.last_t = t;
        self.integral = 0.0;
    }
}

/// Fraction of time a non-negative integer signal (queue occupancy) spends
/// at each value — the empirical stationary occupancy distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OccupancyHistogram {
    last_t: SimTime,
    start: SimTime,
    current: usize,
    time_at: Vec<f64>,
    overflow: f64,
}

impl OccupancyHistogram {
    /// Histogram with buckets `0..cap` (time above `cap-1` pools in an
    /// overflow bucket), starting at time `t0` with occupancy `initial`.
    pub fn new(t0: SimTime, initial: usize, cap: usize) -> OccupancyHistogram {
        assert!(cap >= 1);
        OccupancyHistogram {
            last_t: t0,
            start: t0,
            current: initial,
            time_at: vec![0.0; cap],
            overflow: 0.0,
        }
    }

    /// Record that occupancy becomes `value` at time `t`.
    #[inline]
    pub fn set(&mut self, t: SimTime, value: usize) {
        debug_assert!(t >= self.last_t);
        let dt = t - self.last_t;
        if self.current < self.time_at.len() {
            self.time_at[self.current] += dt;
        } else {
            self.overflow += dt;
        }
        self.last_t = t;
        self.current = value;
    }

    /// Current occupancy.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Fraction of time spent at occupancy `n`, up to time `t`.
    pub fn fraction(&self, n: usize, t: SimTime) -> f64 {
        let span = t - self.start;
        if span <= 0.0 {
            return 0.0;
        }
        let mut time = if n < self.time_at.len() {
            self.time_at[n]
        } else {
            0.0
        };
        if n == self.current && t > self.last_t {
            time += t - self.last_t;
        }
        time / span
    }

    /// Fraction of time spent above the histogram cap.
    pub fn overflow_fraction(&self, t: SimTime) -> f64 {
        let span = t - self.start;
        if span <= 0.0 {
            return 0.0;
        }
        let mut extra = 0.0;
        if self.current >= self.time_at.len() && t > self.last_t {
            extra = t - self.last_t;
        }
        (self.overflow + extra) / span
    }

    /// Restart integration at time `t` (discard warm-up).
    pub fn reset(&mut self, t: SimTime) {
        self.start = t;
        self.last_t = t;
        self.time_at.iter_mut().for_each(|x| *x = 0.0);
        self.overflow = 0.0;
    }
}

/// Fixed-size uniform reservoir sample (Vitter's algorithm R), for delay
/// quantiles without storing every packet.
#[derive(Clone, Debug)]
pub struct Reservoir {
    sample: Vec<f64>,
    capacity: usize,
    seen: u64,
    rng: SimRng,
}

impl Reservoir {
    /// Reservoir holding at most `capacity` values.
    pub fn new(capacity: usize, seed: u64) -> Reservoir {
        assert!(capacity >= 1);
        Reservoir {
            sample: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: SimRng::new(seed),
        }
    }

    /// Offer one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(x);
        } else {
            // Uniform j in [0, seen) by integer multiply-shift — the same
            // algorithm-R acceptance, without the float round trip.
            let j = ((self.rng.next_u64() as u128 * self.seen as u128) >> 64) as u64;
            if (j as usize) < self.capacity {
                self.sample[j as usize] = x;
            }
        }
    }

    /// Number of observations offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Empirical quantile `q ∈ [0, 1]` of the retained sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sample.is_empty() {
            return None;
        }
        let mut s = self.sample.clone();
        s.sort_by(f64::total_cmp);
        let idx = ((q * (s.len() - 1) as f64).round() as usize).min(s.len() - 1);
        Some(s[idx])
    }
}

/// Batch-means confidence interval for the steady-state mean of an
/// autocorrelated series.
///
/// Observations are grouped into consecutive batches of `batch_size`; the
/// batch means are treated as approximately i.i.d. normal (standard
/// steady-state simulation methodology).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current: Tally,
    batches: Welford,
}

impl BatchMeans {
    /// Accumulator grouping observations in batches of `batch_size`.
    pub fn new(batch_size: u64) -> BatchMeans {
        assert!(batch_size >= 1);
        BatchMeans {
            batch_size,
            current: Tally::new(),
            batches: Welford::new(),
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Tally::new();
        }
    }

    /// Number of completed batches.
    pub fn num_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Grand mean over completed batches (falls back to the running batch
    /// when none completed).
    pub fn mean(&self) -> f64 {
        if self.batches.count() > 0 {
            self.batches.mean()
        } else {
            self.current.mean()
        }
    }

    /// Half-width of the ~95% confidence interval on the steady-state mean.
    ///
    /// Uses a small t-quantile table for few batches and 1.96 beyond 30.
    pub fn ci95_half_width(&self) -> f64 {
        let k = self.batches.count();
        if k < 2 {
            return f64::INFINITY;
        }
        // t_{0.975, k-1} for k-1 = 1..30.
        const T: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        let dof = (k - 1) as usize;
        let t = if dof <= 30 { T[dof - 1] } else { 1.96 };
        t * self.batches.std_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_err(), 0.0);
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(1.0, 2.0); // 0 on [0,1)
        tw.set(3.0, 0.0); // 2 on [1,3)
                          // mean over [0,4] = (0*1 + 2*2 + 0*1)/4 = 1.0
        assert!((tw.mean(4.0) - 1.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 2.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_add_and_reset() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.add(2.0, 1.0); // value 2 from t=2
        tw.reset(2.0);
        tw.set(4.0, 0.0); // 2 on [2,4)
        assert!((tw.mean(6.0) - 1.0).abs() < 1e-12); // (2*2 + 0*2)/4
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(5.0, 3.0);
        assert_eq!(tw.mean(5.0), 3.0);
    }

    #[test]
    fn occupancy_histogram_fractions() {
        let mut h = OccupancyHistogram::new(0.0, 0, 8);
        h.set(1.0, 1); // 0 on [0,1)
        h.set(2.0, 2); // 1 on [1,2)
        h.set(4.0, 0); // 2 on [2,4)
                       // At t=5: 0 for 1+1=2 of 5; 1 for 1 of 5; 2 for 2 of 5.
        assert!((h.fraction(0, 5.0) - 0.4).abs() < 1e-12);
        assert!((h.fraction(1, 5.0) - 0.2).abs() < 1e-12);
        assert!((h.fraction(2, 5.0) - 0.4).abs() < 1e-12);
        assert_eq!(h.fraction(3, 5.0), 0.0);
        assert_eq!(h.overflow_fraction(5.0), 0.0);
    }

    #[test]
    fn occupancy_histogram_overflow_and_reset() {
        let mut h = OccupancyHistogram::new(0.0, 10, 4);
        h.set(2.0, 1); // occupancy 10 (overflow) on [0,2)
        assert!((h.overflow_fraction(4.0) - 0.5).abs() < 1e-12);
        h.reset(4.0);
        assert_eq!(h.overflow_fraction(6.0), 0.0);
        assert!((h.fraction(1, 6.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = OccupancyHistogram::new(0.0, 0, 16);
        let mut t = 0.0;
        let mut x: u64 = 12345;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t += ((x >> 40) as f64 / (1u64 << 24) as f64) + 0.001;
            h.set(t, (x % 13) as usize);
        }
        let end = t + 1.0;
        let total: f64 =
            (0..16).map(|n| h.fraction(n, end)).sum::<f64>() + h.overflow_fraction(end);
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn reservoir_keeps_everything_when_small() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.push(i as f64);
        }
        assert_eq!(r.seen(), 50);
        assert_eq!(r.quantile(0.0), Some(0.0));
        assert_eq!(r.quantile(1.0), Some(49.0));
        assert_eq!(
            r.quantile(0.5),
            Some(24.0).map(|_| r.quantile(0.5).unwrap())
        );
    }

    #[test]
    fn reservoir_quantiles_approximate_uniform() {
        let mut r = Reservoir::new(2000, 7);
        let mut rng = SimRng::new(99);
        for _ in 0..200_000 {
            r.push(rng.uniform01());
        }
        let med = r.quantile(0.5).unwrap();
        let p90 = r.quantile(0.9).unwrap();
        assert!((med - 0.5).abs() < 0.05, "median {med}");
        assert!((p90 - 0.9).abs() < 0.05, "p90 {p90}");
    }

    #[test]
    fn batch_means_iid_normal_ci_covers() {
        // For i.i.d. data the CI half-width should shrink like 1/sqrt(k).
        let mut bm = BatchMeans::new(100);
        let mut rng = SimRng::new(11);
        for _ in 0..100 * 40 {
            bm.push(rng.uniform01());
        }
        assert_eq!(bm.num_batches(), 40);
        assert!((bm.mean() - 0.5).abs() < 0.02);
        let hw = bm.ci95_half_width();
        assert!(hw > 0.0 && hw < 0.05, "half width {hw}");
    }

    #[test]
    fn batch_means_too_few_batches_infinite_ci() {
        let mut bm = BatchMeans::new(10);
        for i in 0..15 {
            bm.push(i as f64);
        }
        assert_eq!(bm.num_batches(), 1);
        assert!(bm.ci95_half_width().is_infinite());
    }
}
