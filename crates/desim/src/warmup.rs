//! Warm-up (initial-transient) detection via MSER-5.
//!
//! The experiment harnesses default to a fixed 20% warm-up fraction; this
//! module provides the MSER-5 rule (White 1997) as a data-driven
//! alternative, used by the high-load stability probes where transients
//! are longest: group the observation series into batches of 5, then pick
//! the truncation point that minimises the standard error of the remaining
//! batch means.

/// MSER statistic for truncating the first `k` of `ys`: the squared
/// standard error of the mean of the remainder.
fn mser_stat(ys: &[f64], k: usize) -> f64 {
    let rest = &ys[k..];
    let n = rest.len() as f64;
    let mean = rest.iter().sum::<f64>() / n;
    rest.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (n * n)
}

/// MSER-5 truncation: returns the index into `samples` before which
/// observations should be discarded. The search is limited to the first
/// half of the series (the standard guard against degenerate minima).
pub fn mser5_truncation_index(samples: &[f64]) -> usize {
    const BATCH: usize = 5;
    if samples.len() < 4 * BATCH {
        return 0;
    }
    let batches: Vec<f64> = samples
        .chunks_exact(BATCH)
        .map(|c| c.iter().sum::<f64>() / BATCH as f64)
        .collect();
    let max_k = batches.len() / 2;
    let best_k = (0..=max_k)
        .min_by(|&a, &b| mser_stat(&batches, a).total_cmp(&mser_stat(&batches, b)))
        .unwrap_or(0);
    best_k * BATCH
}

/// Mean of the post-truncation portion of `samples` under MSER-5.
pub fn truncated_mean(samples: &[f64]) -> f64 {
    let k = mser5_truncation_index(samples);
    let rest = &samples[k..];
    if rest.is_empty() {
        return 0.0;
    }
    rest.iter().sum::<f64>() / rest.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn stationary_series_keeps_everything_early() {
        let mut rng = SimRng::new(1);
        let ys: Vec<f64> = (0..500).map(|_| 5.0 + rng.uniform01()).collect();
        let k = mser5_truncation_index(&ys);
        // No transient: truncation should stay small.
        assert!(k <= ys.len() / 4, "truncated {k} of {}", ys.len());
        assert!((truncated_mean(&ys) - 5.5).abs() < 0.1);
    }

    #[test]
    fn detects_initial_transient() {
        // Ramp from 0 to 10 over the first 100 samples, then stationary.
        let mut rng = SimRng::new(2);
        let ys: Vec<f64> = (0..600)
            .map(|i| {
                let level = if i < 100 { i as f64 / 10.0 } else { 10.0 };
                level + rng.uniform01() * 0.5
            })
            .collect();
        let k = mser5_truncation_index(&ys);
        assert!(k >= 50, "failed to cut the ramp (k = {k})");
        assert!((truncated_mean(&ys) - 10.25).abs() < 0.3);
    }

    #[test]
    fn short_series_untouched() {
        let ys = vec![1.0; 10];
        assert_eq!(mser5_truncation_index(&ys), 0);
    }

    #[test]
    fn truncation_never_exceeds_half() {
        let mut rng = SimRng::new(3);
        let ys: Vec<f64> = (0..300).map(|i| i as f64 + rng.uniform01()).collect();
        // Even for a pure trend the guard caps truncation at half.
        assert!(mser5_truncation_index(&ys) <= 150);
    }

    #[test]
    fn empty_truncated_mean_is_zero() {
        assert_eq!(truncated_mean(&[]), 0.0);
    }
}
