//! Seedable random streams and the samplers the model needs.
//!
//! The paper's traffic model needs exactly three primitives: exponential
//! inter-arrival times (Poisson processes), Bernoulli bit-flips (Lemma 1's
//! destination sampling and Lemma 4's Markovian routing), and Poisson batch
//! sizes (slotted time, §3.4). All are implemented here over `rand`'s
//! `SmallRng` so no external distribution crate is needed and every stream
//! is reproducible from a `u64` seed.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Stream seeded from a `u64`.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream (e.g. one per node / per server)
    /// without correlating with future draws from `self`.
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.inner.next_u64())
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// 64 uniform random bits (one raw generator step — the cheapest draw;
    /// batch samplers slice it into independent sub-draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `0..n`. Panics when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // Strict inequality: p == 0 never succeeds, p == 1 always does
        // (uniform01 < 1.0 is guaranteed).
        self.uniform01() < p
    }

    /// Exponential variate with the given `rate` (mean `1/rate`).
    ///
    /// Inverse-CDF transform; uses `1 - U ∈ (0, 1]` so `ln` never sees 0.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.uniform01();
        -u.ln() / rate
    }

    /// Poisson variate with the given `mean`.
    ///
    /// Knuth's product method for small means; for large means the variate
    /// is split as a sum of two independent halves (Poisson additivity),
    /// which keeps the product above floating-point underflow while staying
    /// exact in distribution.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0, "Poisson mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            // exp(-30) ≈ 9e-14 is still comfortably above underflow, so
            // recurse only above that.
            let half = mean / 2.0;
            return self.poisson(half) + self.poisson(half);
        }
        let threshold = (-mean).exp();
        let mut k = 0u64;
        let mut prod = 1.0;
        loop {
            prod *= self.uniform01();
            if prod <= threshold {
                return k;
            }
            k += 1;
        }
    }

    /// Sample an index from the discrete distribution given as
    /// `(index, probability)` pairs; returns `None` with the residual
    /// probability. This is exactly the paper's Markovian routing step
    /// (forward to one of the listed servers, or depart).
    pub fn route<T: Copy>(&mut self, alternatives: &[(T, f64)]) -> Option<T> {
        let mut u = self.uniform01();
        for &(t, q) in alternatives {
            if u < q {
                return Some(t);
            }
            u -= q;
        }
        None
    }

    /// Access the raw `rand` RNG (escape hatch for proptest interop).
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

/// SplitMix64 finaliser: a high-quality bijective mixing of a `u64`.
///
/// Used for *derived-seed* schemes — e.g. a parameter sweep gives grid
/// point `i` the seed `splitmix64(base + (i+1)·GOLDEN)` so every point
/// gets an independent, reproducible stream that is a pure function of
/// `(base, i)` and never collides across neighbouring points (the
/// function is a bijection). Reference: Steele, Lea & Flood,
/// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform01(), b.uniform01());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.uniform01(), c.uniform01());
    }

    #[test]
    fn split_streams_diverge() {
        let mut root = SimRng::new(7);
        let mut s1 = root.split();
        let mut s2 = root.split();
        let xs: Vec<f64> = (0..10).map(|_| s1.uniform01()).collect();
        let ys: Vec<f64> = (0..10).map(|_| s2.uniform01()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = SimRng::new(1);
        let rate = 2.5;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.exp(rate);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "empirical mean {mean} vs {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_memoryless_tail() {
        // P(X > 1) = e^{-rate}.
        let mut rng = SimRng::new(2);
        let rate = 1.0;
        let n = 100_000;
        let tail = (0..n).filter(|_| rng.exp(rate) > 1.0).count() as f64 / n as f64;
        assert!((tail - (-1.0f64).exp()).abs() < 0.01);
    }

    #[test]
    fn bernoulli_extremes_and_mean() {
        let mut rng = SimRng::new(3);
        assert!(!(0..1000).any(|_| rng.bernoulli(0.0)));
        assert!((0..1000).all(|_| rng.bernoulli(1.0)));
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count() as f64;
        assert!((hits / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn poisson_mean_and_variance_small() {
        let mut rng = SimRng::new(4);
        let mean = 3.2;
        let n = 100_000;
        let samples: Vec<u64> = (0..n).map(|_| rng.poisson(mean)).collect();
        let m = samples.iter().sum::<u64>() as f64 / n as f64;
        let v = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 0.05, "mean {m}");
        assert!((v - mean).abs() < 0.1, "variance {v}");
    }

    #[test]
    fn poisson_large_mean_splits_correctly() {
        let mut rng = SimRng::new(5);
        let mean = 250.0;
        let n = 20_000;
        let m = (0..n).map(|_| rng.poisson(mean)).sum::<u64>() as f64 / n as f64;
        assert!((m - mean).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = SimRng::new(6);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn route_respects_probabilities() {
        let mut rng = SimRng::new(8);
        let alts = [(0usize, 0.2), (1usize, 0.5)];
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            match rng.route(&alts) {
                Some(i) => counts[i] += 1,
                None => counts[2] += 1,
            }
        }
        let f: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((f[0] - 0.2).abs() < 0.01);
        assert!((f[1] - 0.5).abs() < 0.01);
        assert!((f[2] - 0.3).abs() < 0.01);
    }

    #[test]
    fn route_empty_always_departs() {
        let mut rng = SimRng::new(9);
        let alts: [(usize, f64); 0] = [];
        assert_eq!(rng.route(&alts), None);
    }

    #[test]
    fn poisson_process_via_exponential_count() {
        // Number of exp(rate) gaps fitting in [0, T] is Poisson(rate*T).
        let mut rng = SimRng::new(10);
        let (rate, horizon) = (0.7, 50.0);
        let reps = 2_000;
        let mut counts = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut t = rng.exp(rate);
            let mut k = 0u64;
            while t <= horizon {
                k += 1;
                t += rng.exp(rate);
            }
            counts.push(k);
        }
        let m = counts.iter().sum::<u64>() as f64 / reps as f64;
        assert!((m - rate * horizon).abs() < 0.5, "mean {m}");
    }
}
