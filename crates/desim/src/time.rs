//! Simulation time.
//!
//! Continuous time is an `f64` number of unit packet-transmission times.
//! All service completions add exactly `1.0`, which is representable, so the
//! FIFO departure recursion `D_i = max(D_{i-1}, t_i) + 1` incurs no rounding
//! as long as arrival timestamps are finite; ties between distinct events
//! are broken deterministically by the event queue, not by time arithmetic.

/// Simulation time, in unit packet-transmission times.
pub type SimTime = f64;

/// The unit packet transmission (service) time from the paper's model.
pub const SERVICE_TIME: SimTime = 1.0;

/// Assert that a timestamp is usable (finite, non-negative).
#[inline]
pub fn check(t: SimTime) -> SimTime {
    debug_assert!(t.is_finite() && t >= 0.0, "bad simulation time {t}");
    t
}

/// Approximate equality for derived time quantities (integrals, averages).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_service_is_exact() {
        let mut t = 0.0;
        for _ in 0..1_000_000 {
            t += SERVICE_TIME;
        }
        assert_eq!(t, 1_000_000.0);
    }

    #[test]
    fn approx_eq_scales() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.01, 1e-9));
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
    }
}
