//! Flight recorder and telemetry probes: hop-level tracing and
//! log-bucketed distributions over any `hyperroute-core` run, with zero
//! effect on the simulation.
//!
//! Both observers in this crate ride the [`Observer`] hop hooks the
//! engines fire on every enqueue, service completion, drop and
//! delivery. Neither touches the run's random draws, so a traced run
//! produces a **byte-identical** [`Report`] to an untraced one — the
//! determinism contract the corpus gate enforces. Telemetry is attached
//! to the report *after* the run ([`TelemetryProbe::attach`]), as the
//! opt-in `telemetry` key; unobserved reports simply omit it.
//!
//! # The two probes
//!
//! [`FlightRecorder`] captures the full hop path (time, node, arc,
//! queue depth, escape flag) of a **deterministically sampled** subset
//! of packets. Sampling hashes the engine-assigned packet id against
//! its own seed — independent of the run RNG, so the same `(seed,
//! rate)` picks the same packets on every rerun. Finished traces live
//! in a bounded ring buffer and export as NDJSON
//! ([`FlightRecorder::to_ndjson`]) or as a `chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev) JSON file
//! ([`FlightRecorder::to_chrome_trace`], one track per packet).
//!
//! [`TelemetryProbe`] aggregates instead of recording: power-of-two
//! log histograms of per-packet delay, per-hop queue wait, paid
//! deflections and escape-walk lengths, plus per-arc occupancy-time
//! integrals and peak queue depths — the
//! [`hyperroute_core::telemetry::TelemetryExt`] report extension.
//!
//! Run both at once with the tuple observer:
//!
//! ```
//! use hyperroute_core::scenario::{Scenario, Topology};
//! use hyperroute_telemetry::{FlightRecorder, TelemetryProbe};
//!
//! let scenario = Scenario::builder(Topology::Hypercube { dim: 4 })
//!     .lambda(1.0).p(0.5).horizon(200.0).warmup(50.0).seed(7)
//!     .build().expect("valid scenario");
//! let mut tap = (
//!     FlightRecorder::new(0xF11847, 0.05, 1024),
//!     TelemetryProbe::new(),
//! );
//! let mut report = scenario.run_observed(&mut tap).expect("runs");
//! assert_eq!(report, scenario.run().expect("rerun")); // byte-identical
//! let (recorder, probe) = tap;
//! probe.attach(&mut report); // now report.telemetry is Some(..)
//! let ndjson = recorder.to_ndjson();
//! assert!(report.telemetry.is_some() && ndjson.lines().count() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::collections::VecDeque;

use hyperroute_core::engine::NO_TRACE;
use hyperroute_core::observe::Observer;
use hyperroute_core::scenario::Report;
use hyperroute_core::telemetry::{ArcTelemetry, LogHistogram, TelemetryExt};
use hyperroute_desim::splitmix64;
use serde::Serialize;

/// The id the engines report for packets whose layout carries no trace
/// id (e.g. the butterfly's packed packet): such packets are never
/// sampled and never tracked per-packet.
const ANONYMOUS: u64 = NO_TRACE as u64;

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// One hop of a recorded packet: where it queued, when, and behind how
/// many others.
#[derive(Clone, Debug, Serialize)]
pub struct HopRecord {
    /// Time the packet joined the arc queue.
    pub t: f64,
    /// Node the packet departed from.
    pub node: u32,
    /// Dense arc index it queued on.
    pub arc: u32,
    /// Packets occupying the arc after this one joined (1 = uncontended).
    pub queue_depth: u32,
    /// Whether this hop was taken in escape (recovery-walk) mode.
    pub escape: bool,
}

/// How a recorded packet's journey ended.
#[derive(Clone, Debug, Serialize)]
pub enum TraceEnd {
    /// Delivered at `t` after `hops` hops, `deflections` of them paid.
    Delivered {
        /// Delivery time.
        t: f64,
        /// Total hops taken.
        hops: u16,
        /// Paid (non-improving) deflections en route.
        deflections: u16,
    },
    /// Dropped at node `node` at time `t` (dead arc or routing failure).
    Dropped {
        /// Drop time.
        t: f64,
        /// Node where the packet was dropped.
        node: u32,
    },
}

/// The full recorded journey of one sampled packet.
#[derive(Clone, Debug, Serialize)]
pub struct TraceRecord {
    /// Engine-assigned packet id (birth-sequence number).
    pub id: u64,
    /// Node the packet was generated at.
    pub source: u32,
    /// Generation time.
    pub born: f64,
    /// Every hop, in order.
    pub hops: Vec<HopRecord>,
    /// The journey's end, or `None` if the packet was still in flight
    /// when the recorder was sealed.
    pub end: Option<TraceEnd>,
}

/// Hop-level tracer for a deterministically sampled subset of packets.
///
/// Sampling is a pure function of the recorder's own seed and the
/// engine-assigned packet id (`splitmix64(seed ^ id) < rate·2^64`), so
/// it consumes none of the run's randomness: attaching a recorder
/// never changes the report, and the same seed re-picks the same
/// packets on a rerun. Finished traces are kept in a bounded ring —
/// when full, the oldest trace is evicted (counted in
/// [`FlightRecorder::evicted`]).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    seed: u64,
    threshold: u64,
    capacity: usize,
    active: HashMap<u64, TraceRecord>,
    completed: VecDeque<TraceRecord>,
    evicted: u64,
}

impl FlightRecorder {
    /// Recorder sampling roughly `rate` of all packets (clamped to
    /// `[0, 1]`), keeping at most `capacity` finished traces.
    pub fn new(seed: u64, rate: f64, capacity: usize) -> FlightRecorder {
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else if rate > 0.0 {
            (rate * 18_446_744_073_709_551_616.0) as u64
        } else {
            0
        };
        FlightRecorder {
            seed,
            threshold,
            capacity: capacity.max(1),
            active: HashMap::new(),
            completed: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Whether packet `id` is in the recorded sample.
    #[inline]
    fn sampled(&self, id: u64) -> bool {
        id != ANONYMOUS
            && (self.threshold == u64::MAX || splitmix64(self.seed ^ id) < self.threshold)
    }

    fn finish(&mut self, id: u64, end: TraceEnd) {
        if let Some(mut rec) = self.active.remove(&id) {
            rec.end = Some(end);
            if self.completed.len() == self.capacity {
                self.completed.pop_front();
                self.evicted += 1;
            }
            self.completed.push_back(rec);
        }
    }

    /// Move still-in-flight traces (drained runs leave none) into the
    /// finished ring with `end: None`, ordered by packet id so sealed
    /// output is deterministic. Call once after the run.
    pub fn seal(&mut self) {
        let mut leftovers: Vec<TraceRecord> = self.active.drain().map(|(_, rec)| rec).collect();
        leftovers.sort_by_key(|rec| rec.id);
        for rec in leftovers {
            if self.completed.len() == self.capacity {
                self.completed.pop_front();
                self.evicted += 1;
            }
            self.completed.push_back(rec);
        }
    }

    /// Finished traces, oldest first (completion order).
    pub fn traces(&self) -> impl Iterator<Item = &TraceRecord> {
        self.completed.iter()
    }

    /// Number of finished traces currently held.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no trace has finished yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Finished traces evicted from the full ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Export the finished traces as NDJSON: one self-contained JSON
    /// object per line, in completion order. Stable across reruns of
    /// the same scenario — the golden-trace test byte-compares it.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for rec in &self.completed {
            out.push_str(&serde_json::to_string(rec).expect("traces always serialise"));
            out.push('\n');
        }
        out
    }

    /// Export the finished traces as a `chrome://tracing` / Perfetto
    /// JSON object. Each packet becomes one track (`tid` = packet id);
    /// each hop a 1-time-unit `"X"` slice at its queue-join time;
    /// drops an instant event. Simulated time maps to microseconds.
    /// Events are globally sorted by timestamp.
    pub fn to_chrome_trace(&self) -> String {
        const US: f64 = 1_000_000.0; // one sim time unit → 1 s on screen
        let mut events: Vec<ChromeEvent> = Vec::new();
        for rec in &self.completed {
            for hop in &rec.hops {
                events.push(ChromeEvent {
                    name: if hop.escape { "escape-hop" } else { "hop" },
                    cat: "packet",
                    ph: "X",
                    ts: hop.t * US,
                    dur: Some(US),
                    pid: 0,
                    tid: rec.id,
                    args: ChromeArgs {
                        node: Some(hop.node),
                        arc: Some(hop.arc),
                        queue_depth: Some(hop.queue_depth),
                    },
                });
            }
            if let Some(TraceEnd::Dropped { t, node }) = rec.end {
                events.push(ChromeEvent {
                    name: "dropped",
                    cat: "packet",
                    ph: "i",
                    ts: t * US,
                    dur: None,
                    pid: 0,
                    tid: rec.id,
                    args: ChromeArgs {
                        node: Some(node),
                        arc: None,
                        queue_depth: None,
                    },
                });
            }
        }
        events.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(a.tid.cmp(&b.tid)));
        let doc = ChromeTrace {
            trace_events: events,
            display_time_unit: "ms",
        };
        serde_json::to_string(&doc).expect("trace always serialises")
    }
}

impl Observer for FlightRecorder {
    fn on_generated(&mut self, t: f64, packet_id: u64, source: u32) {
        if self.sampled(packet_id) {
            self.active.insert(
                packet_id,
                TraceRecord {
                    id: packet_id,
                    source,
                    born: t,
                    hops: Vec::new(),
                    end: None,
                },
            );
        }
    }

    fn on_hop(&mut self, t: f64, packet_id: u64, node: u32, arc: u32, queue_depth: u32) {
        if let Some(rec) = self.active.get_mut(&packet_id) {
            rec.hops.push(HopRecord {
                t,
                node,
                arc,
                queue_depth,
                escape: false,
            });
        }
    }

    fn on_escape_hop(&mut self, _t: f64, packet_id: u64, _node: u32) {
        if let Some(rec) = self.active.get_mut(&packet_id) {
            if let Some(hop) = rec.hops.last_mut() {
                hop.escape = true;
            }
        }
    }

    fn on_drop(&mut self, t: f64, packet_id: u64, node: u32) {
        self.finish(packet_id, TraceEnd::Dropped { t, node });
    }

    fn on_packet_delivered(
        &mut self,
        t: f64,
        packet_id: u64,
        _born: f64,
        hops: u16,
        deflections: u16,
    ) {
        self.finish(
            packet_id,
            TraceEnd::Delivered {
                t,
                hops,
                deflections,
            },
        );
    }
}

/// One event of the Chrome trace-event JSON format.
#[derive(Serialize)]
struct ChromeEvent {
    name: &'static str,
    cat: &'static str,
    ph: &'static str,
    ts: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    dur: Option<f64>,
    pid: u32,
    tid: u64,
    args: ChromeArgs,
}

#[derive(Serialize)]
struct ChromeArgs {
    #[serde(skip_serializing_if = "Option::is_none")]
    node: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    arc: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    queue_depth: Option<u32>,
}

/// The top-level Chrome trace document (`traceEvents` key is the
/// format's required camelCase name, so it is spelled out manually).
struct ChromeTrace {
    trace_events: Vec<ChromeEvent>,
    display_time_unit: &'static str,
}

impl Serialize for ChromeTrace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "traceEvents".to_string(),
                serde::Value::Array(self.trace_events.iter().map(|e| e.to_value()).collect()),
            ),
            (
                "displayTimeUnit".to_string(),
                serde::Value::String(self.display_time_unit.to_string()),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// Telemetry probe
// ---------------------------------------------------------------------

/// Per-packet bookkeeping for the wait/escape derivations.
#[derive(Clone, Copy, Debug)]
struct PacketTrack {
    /// Queue-join time of the packet's most recent hop.
    last_hop_t: f64,
    /// Length of the escape walk in progress (0 = not walking).
    escape_run: u32,
    /// Whether the most recent hop was an escape hop.
    last_was_escape: bool,
}

/// Aggregating observer that builds a
/// [`TelemetryExt`] report extension: log histograms
/// of delay, queue wait, deflections and escape-walk lengths, plus
/// per-arc occupancy-time integrals and peak depths.
///
/// Queue waits are derived, not measured: service takes exactly one
/// time unit, so a packet that joined an arc queue at `t₀` and reached
/// its next queue (or its destination) at `t₁` waited `t₁ − t₀ − 1`.
/// Per-packet derivations are skipped for packet layouts without trace
/// ids (the butterfly); per-arc and delay telemetry covers every run.
#[derive(Clone, Debug, Default)]
pub struct TelemetryProbe {
    delay: Option<LogHistogram>,
    queue_wait: Option<LogHistogram>,
    deflections: Option<LogHistogram>,
    escape_walks: Option<LogHistogram>,
    tracks: HashMap<u64, PacketTrack>,
    /// Per-arc `∫ depth dt` accumulated so far.
    occupancy_time: Vec<f64>,
    /// Per-arc time of the last depth change.
    last_event: Vec<f64>,
    /// Per-arc current depth (waiting + in service).
    depth: Vec<u32>,
    /// Per-arc peak depth.
    peak: Vec<u32>,
}

impl TelemetryProbe {
    /// Fresh probe with empty histograms.
    pub fn new() -> TelemetryProbe {
        TelemetryProbe {
            delay: Some(LogHistogram::for_times()),
            queue_wait: Some(LogHistogram::for_times()),
            deflections: Some(LogHistogram::for_counts()),
            escape_walks: Some(LogHistogram::for_counts()),
            ..TelemetryProbe::default()
        }
    }

    fn ensure_arc(&mut self, arc: usize) {
        if arc >= self.depth.len() {
            self.occupancy_time.resize(arc + 1, 0.0);
            self.last_event.resize(arc + 1, 0.0);
            self.depth.resize(arc + 1, 0);
            self.peak.resize(arc + 1, 0);
        }
    }

    /// Advance arc `arc` to time `t` at its current depth, then switch
    /// it to `depth`.
    fn set_depth(&mut self, t: f64, arc: usize, depth: u32) {
        self.ensure_arc(arc);
        self.occupancy_time[arc] += f64::from(self.depth[arc]) * (t - self.last_event[arc]);
        self.last_event[arc] = t;
        self.depth[arc] = depth;
        self.peak[arc] = self.peak[arc].max(depth);
    }

    fn hist(slot: &mut Option<LogHistogram>) -> &mut LogHistogram {
        slot.get_or_insert_with(LogHistogram::for_counts)
    }

    /// Consume the probe into the report extension it accumulated.
    pub fn into_ext(mut self) -> TelemetryExt {
        TelemetryExt {
            delay: self.delay.take().unwrap_or_else(LogHistogram::for_times),
            queue_wait: self
                .queue_wait
                .take()
                .unwrap_or_else(LogHistogram::for_times),
            deflections: self
                .deflections
                .take()
                .unwrap_or_else(LogHistogram::for_counts),
            escape_walks: self
                .escape_walks
                .take()
                .unwrap_or_else(LogHistogram::for_counts),
            arcs: ArcTelemetry {
                occupancy_time: self.occupancy_time,
                peak_depth: self.peak,
            },
        }
    }

    /// Attach the accumulated telemetry to a finished report (the
    /// opt-in `telemetry` key; the report body is untouched).
    pub fn attach(self, report: &mut Report) {
        report.telemetry = Some(self.into_ext());
    }
}

impl Observer for TelemetryProbe {
    fn on_delivered(&mut self, t: f64, born: f64) {
        Self::hist(&mut self.delay).record(t - born);
    }

    fn on_hop(&mut self, t: f64, packet_id: u64, _node: u32, arc: u32, queue_depth: u32) {
        self.set_depth(t, arc as usize, queue_depth);
        if packet_id == ANONYMOUS {
            return;
        }
        match self.tracks.get_mut(&packet_id) {
            Some(track) => {
                Self::hist(&mut self.queue_wait).record(t - track.last_hop_t - 1.0);
                // A non-escape hop after an active walk ends the walk.
                if !track.last_was_escape && track.escape_run > 0 {
                    let run = track.escape_run;
                    track.escape_run = 0;
                    Self::hist(&mut self.escape_walks).record(f64::from(run));
                }
                track.last_hop_t = t;
                track.last_was_escape = false;
            }
            None => {
                self.tracks.insert(
                    packet_id,
                    PacketTrack {
                        last_hop_t: t,
                        escape_run: 0,
                        last_was_escape: false,
                    },
                );
            }
        }
    }

    fn on_escape_hop(&mut self, _t: f64, packet_id: u64, _node: u32) {
        if let Some(track) = self.tracks.get_mut(&packet_id) {
            track.escape_run += 1;
            track.last_was_escape = true;
        }
    }

    fn on_service_end(&mut self, t: f64, arc: u32, queue_depth: u32) {
        self.set_depth(t, arc as usize, queue_depth);
    }

    fn on_drop(&mut self, t: f64, packet_id: u64, _node: u32) {
        if let Some(track) = self.tracks.remove(&packet_id) {
            Self::hist(&mut self.queue_wait).record(t - track.last_hop_t - 1.0);
            if track.escape_run > 0 {
                Self::hist(&mut self.escape_walks).record(f64::from(track.escape_run));
            }
        }
    }

    fn on_packet_delivered(
        &mut self,
        t: f64,
        packet_id: u64,
        _born: f64,
        _hops: u16,
        deflections: u16,
    ) {
        Self::hist(&mut self.deflections).record(f64::from(deflections));
        if let Some(track) = self.tracks.remove(&packet_id) {
            Self::hist(&mut self.queue_wait).record(t - track.last_hop_t - 1.0);
            if track.escape_run > 0 {
                Self::hist(&mut self.escape_walks).record(f64::from(track.escape_run));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperroute_core::config::{FaultFallback, FaultMode, FaultSpec};
    use hyperroute_core::scenario::{Scenario, Topology};

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::builder(Topology::Hypercube { dim: 4 })
            .lambda(1.2)
            .p(0.5)
            .horizon(300.0)
            .warmup(50.0)
            .seed(seed)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn recorder_never_changes_the_report() {
        let s = small_scenario(11);
        let baseline = s.run().expect("baseline");
        let mut tap = (FlightRecorder::new(1, 0.25, 256), TelemetryProbe::new());
        let observed = s.run_observed(&mut tap).expect("observed");
        assert_eq!(baseline, observed);
        assert_eq!(
            serde_json::to_string(&baseline).unwrap(),
            serde_json::to_string(&observed).unwrap(),
        );
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_id() {
        let s = small_scenario(12);
        let run = |seed: u64| {
            let mut rec = FlightRecorder::new(seed, 0.2, 4096);
            s.run_observed(&mut rec).expect("runs");
            rec.seal();
            rec.to_ndjson()
        };
        assert_eq!(run(42), run(42), "same recorder seed, same traces");
        assert_ne!(run(42), run(43), "recorder seed selects the sample");
    }

    #[test]
    fn traces_are_contiguous_unit_service_journeys() {
        let s = small_scenario(13);
        let mut rec = FlightRecorder::new(7, 1.0, 1 << 16);
        let report = s.run_observed(&mut rec).expect("runs");
        rec.seal();
        assert_eq!(rec.len() as u64 + rec.evicted(), report.generated);
        let mut delivered_with_hops = 0;
        for trace in rec.traces() {
            // Hops are time-ordered, each separated by at least the
            // unit service time of the previous hop.
            for pair in trace.hops.windows(2) {
                assert!(
                    pair[1].t >= pair[0].t + 1.0,
                    "hop at {} follows hop at {}",
                    pair[1].t,
                    pair[0].t
                );
            }
            match trace.end {
                Some(TraceEnd::Delivered { t, hops, .. }) => {
                    assert_eq!(usize::from(hops), trace.hops.len());
                    if let Some(last) = trace.hops.last() {
                        assert!(t >= last.t + 1.0);
                        delivered_with_hops += 1;
                    }
                }
                Some(TraceEnd::Dropped { .. }) => {}
                None => panic!("drained hypercube run left an open trace"),
            }
        }
        assert!(delivered_with_hops > 0, "no multi-hop deliveries traced");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let s = small_scenario(14);
        let mut rec = FlightRecorder::new(7, 1.0, 8);
        let report = s.run_observed(&mut rec).expect("runs");
        assert_eq!(rec.len(), 8);
        assert_eq!(rec.evicted(), report.generated - 8);
        // Survivors are the most recently finished traces.
        let ids: Vec<u64> = rec.traces().map(|t| t.id).collect();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn chrome_trace_is_valid_and_monotone() {
        let s = small_scenario(15);
        let mut rec = FlightRecorder::new(3, 0.5, 1 << 12);
        s.run_observed(&mut rec).expect("runs");
        let json = rec.to_chrome_trace();
        let doc = serde_json::parse(&json).expect("chrome trace parses");
        let events = match doc.get("traceEvents") {
            Some(serde::Value::Array(events)) => events,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        assert!(!events.is_empty());
        let mut last_ts = f64::NEG_INFINITY;
        for ev in events {
            let ts = match ev.get("ts") {
                Some(serde::Value::F64(x)) => *x,
                Some(serde::Value::U64(x)) => *x as f64,
                other => panic!("event without numeric ts: {other:?}"),
            };
            assert!(ts >= last_ts, "timestamps not monotone: {ts} < {last_ts}");
            assert!(ts.is_finite());
            last_ts = ts;
            for key in ["name", "ph", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "event missing {key}");
            }
        }
    }

    #[test]
    fn probe_histograms_match_report_aggregates() {
        let s = small_scenario(16);
        let mut probe = TelemetryProbe::new();
        let mut report = s.run_observed(&mut probe).expect("runs");
        probe.attach(&mut report);
        let ext = report.telemetry.as_ref().expect("attached");
        // Every delivery recorded one delay sample.
        assert_eq!(ext.delay.count, report.delivered);
        // Greedy hypercube routing never deflects or escapes.
        assert_eq!(ext.deflections.counts, vec![ext.deflections.count]);
        assert_eq!(ext.escape_walks.count, 0);
        // Waits are non-negative (unit service, conservative queues)
        // and peaks reach at least the busiest uncontended depth.
        assert!(ext.queue_wait.min >= -1e-9);
        assert!(ext.arcs.peak_depth.iter().any(|&p| p >= 1));
        // Occupancy integrals are finite and non-negative.
        assert!(ext
            .arcs
            .occupancy_time
            .iter()
            .all(|&x| x.is_finite() && x >= -1e-9));
    }

    #[test]
    fn attached_telemetry_round_trips_and_baseline_stays_clean() {
        let s = small_scenario(17);
        let mut probe = TelemetryProbe::new();
        let mut report = s.run_observed(&mut probe).expect("runs");
        let plain = serde_json::to_string(&report).unwrap();
        assert!(
            !plain.contains("telemetry"),
            "unattached report must not mention telemetry"
        );
        probe.attach(&mut report);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"telemetry\""));
        let back: Report = serde_json::from_str(&json).expect("parses");
        assert_eq!(report, back);
    }

    #[test]
    fn escape_walks_are_recorded_under_the_escape_fallback() {
        // A 30%-dead torus under `Escape` pays recovery walks; the
        // probe must see them, and their total length must agree with
        // the per-delivery deflection counter.
        let mut s = Scenario::builder(Topology::Torus { radix: 5, dim: 2 })
            .lambda(0.3)
            .horizon(2_000.0)
            .warmup(400.0)
            .seed(21)
            .build()
            .expect("valid scenario");
        s.workload.faults = Some(FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 0.3,
                seed: 4,
            },
            fallback: FaultFallback::Escape { ttl: 8 },
            dynamics: None,
        });
        let mut probe = TelemetryProbe::new();
        let mut report = s.run_observed(&mut probe).expect("runs");
        probe.attach(&mut report);
        let ext = report.telemetry.as_ref().expect("attached");
        assert!(
            ext.escape_walks.count > 0,
            "expected at least one escape walk on the faulty torus"
        );
        assert!(ext.deflections.counts.len() > 1, "no paid deflections?");
        // Walks are whole hops: at least one, and only the *paid* subset
        // is TTL-bounded, so the upper end is finite but above the TTL.
        assert!(ext.escape_walks.min >= 1.0 && ext.escape_walks.max.is_finite());
    }
}
