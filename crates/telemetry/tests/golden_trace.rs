//! Golden-trace regression gate: a tiny seeded scenario's flight-recorder
//! NDJSON export is byte-compared against a checked-in fixture, so any
//! change to hook firing order, trace sampling, or the export format
//! shows up as a reviewable diff instead of silent drift.
//!
//! Regenerate intentionally with
//! `HYPERROUTE_UPDATE_GOLDEN=1 cargo test -p hyperroute-telemetry --test
//! golden_trace` and commit the new fixture.

use hyperroute_core::scenario::{Scenario, Topology};
use hyperroute_telemetry::FlightRecorder;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/flight_trace.ndjson"
);

fn recorded_trace() -> String {
    let scenario = Scenario::builder(Topology::Hypercube { dim: 3 })
        .lambda(0.4)
        .p(0.5)
        .horizon(15.0)
        .warmup(3.0)
        .seed(7)
        .build()
        .unwrap();
    let mut recorder = FlightRecorder::new(0x00F1_1C47, 1.0, 256);
    scenario.run_observed(&mut recorder).unwrap();
    recorder.seal();
    recorder.to_ndjson()
}

#[test]
fn tiny_seeded_scenario_trace_matches_the_checked_in_golden() {
    let got = recorded_trace();
    if std::env::var_os("HYPERROUTE_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden fixture missing: regenerate with HYPERROUTE_UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "flight trace drifted from tests/golden/flight_trace.ndjson; \
         if the change is intended, regenerate with HYPERROUTE_UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_scenario_trace_is_reproducible_within_a_process() {
    assert_eq!(recorded_trace(), recorded_trace());
}
