//! Property test of the telemetry non-interference contract: running any
//! scenario with a [`FlightRecorder`] **and** a [`TelemetryProbe`]
//! attached (as one composed observer) yields a `Report` byte-identical
//! to the unobserved run — across every engine-backed topology arm and
//! both scheduler backends.
//!
//! This is the load-bearing guarantee behind the corpus gate staying
//! green with telemetry in the tree: observers see every hook the engine
//! fires but never touch its random draws, queues, or metrics, and the
//! telemetry extension only enters a report through an explicit
//! post-run [`TelemetryProbe::attach`].

use hyperroute_core::scenario::{Scenario, Topology};
use hyperroute_desim::SchedulerKind;
use hyperroute_telemetry::{FlightRecorder, TelemetryProbe};
use proptest::prelude::*;

/// The engine-backed topology arms (the equivalent network and the
/// pipelined scheme run off-engine and fire no hop hooks).
fn topology(arm: usize, gseed: u64) -> Topology {
    match arm {
        0 => Topology::Hypercube { dim: 4 },
        1 => Topology::Butterfly { dim: 3 },
        2 => Topology::Ring {
            nodes: 16,
            bidirectional: true,
        },
        3 => Topology::Torus { radix: 4, dim: 2 },
        4 => Topology::DeBruijn { dim: 4 },
        5 => Topology::FatTree { levels: 3 },
        6 => Topology::SmallWorld {
            side: 5,
            dims: 2,
            links: 2,
            alpha: 2.0,
            seed: gseed,
        },
        _ => Topology::Hyperbolic {
            nodes: 64,
            alpha: 0.75,
            radius_offset: 0.0,
            seed: gseed,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn observed_runs_are_byte_identical_to_unobserved_runs(
        arm in 0usize..8,
        heap in any::<bool>(),
        lambda in 0.05f64..0.25,
        seed in any::<u64>(),
        gseed in 0u64..1_000,
    ) {
        let scenario = Scenario::builder(topology(arm, gseed))
            .lambda(lambda)
            .horizon(120.0)
            .warmup(20.0)
            .seed(seed)
            .scheduler(if heap { SchedulerKind::Heap } else { SchedulerKind::Calendar })
            .build()
            .unwrap();
        let baseline = scenario.run().unwrap();
        let baseline_json = serde_json::to_string(&baseline).unwrap();

        // Full-rate recorder and histogram probe composed into one
        // observer, driven in a single pass.
        let mut observers = (
            FlightRecorder::new(seed ^ 0x0B5E_27ED, 1.0, 32),
            TelemetryProbe::new(),
        );
        let observed = scenario.run_observed(&mut observers).unwrap();
        prop_assert_eq!(
            &serde_json::to_string(&observed).unwrap(),
            &baseline_json,
            "observers changed the report (arm {})", arm
        );

        // Attaching is explicit and additive: the telemetry key appears,
        // and the extended report round-trips bit-exactly.
        let (recorder, probe) = observers;
        let mut extended = observed;
        probe.attach(&mut extended);
        let extended_json = serde_json::to_string(&extended).unwrap();
        prop_assert!(extended_json.contains("\"telemetry\""));
        prop_assert!(!baseline_json.contains("\"telemetry\""));
        let back: hyperroute_core::scenario::Report =
            serde_json::from_str(&extended_json).unwrap();
        prop_assert!(back == extended, "telemetry extension lost in round-trip");

        // The recorder sampled every traced packet at rate 1.0; sealed
        // traces are a side channel, never part of the report.
        drop(recorder);
    }
}
