//! Walkthrough: record hop-level flight traces and telemetry histograms
//! for a faulty torus, then export them.
//!
//! ```text
//! cargo run -p hyperroute-telemetry --example flight_recorder
//! ```
//!
//! Writes `flight_trace.ndjson` (one JSON trace per line) and
//! `flight_trace.chrome.json` (load it at `chrome://tracing` or in
//! Perfetto) into the current directory, and prints the telemetry
//! summary that attaches to the report.

use hyperroute_core::config::{FaultFallback, FaultMode, FaultSpec};
use hyperroute_core::scenario::{Scenario, Topology};
use hyperroute_telemetry::{FlightRecorder, TelemetryProbe};

fn main() {
    // A 5×5 torus with 30% of its arcs dead and the GOAFR-style escape
    // fallback — plenty of deflections and escape walks to look at.
    let scenario = Scenario::builder(Topology::Torus { radix: 5, dim: 2 })
        .lambda(0.3)
        .horizon(2_000.0)
        .warmup(400.0)
        .seed(21)
        .faults(Some(FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 0.3,
                seed: 4,
            },
            fallback: FaultFallback::Escape { ttl: 8 },
            dynamics: None,
        }))
        .build()
        .expect("valid scenario");

    // Sample 25% of packets (a pure function of the recorder seed and
    // the packet id — reruns trace the same packets), keep the newest
    // 512 finished traces, and aggregate histograms over *all* packets.
    let mut observers = (
        FlightRecorder::new(0xF11C47, 0.25, 512),
        TelemetryProbe::new(),
    );
    let mut report = scenario.run_observed(&mut observers).expect("runs");
    let (mut recorder, probe) = observers;

    recorder.seal(); // flush still-in-flight packets as unfinished traces
    std::fs::write("flight_trace.ndjson", recorder.to_ndjson()).expect("write ndjson");
    std::fs::write("flight_trace.chrome.json", recorder.to_chrome_trace())
        .expect("write chrome trace");
    println!(
        "traced {} packets ({} evicted by the ring buffer) -> flight_trace.ndjson, \
         flight_trace.chrome.json",
        recorder.len(),
        recorder.evicted()
    );

    // The histograms attach to the report as the opt-in `telemetry` key.
    probe.attach(&mut report);
    let telemetry = report.telemetry.as_ref().expect("attached above");
    println!(
        "delivered {} of {} generated; mean delay {:.3} (p99 bound {:.1})",
        report.delivered,
        report.generated,
        telemetry.delay.mean(),
        telemetry.delay.quantile_bound(0.99),
    );
    println!(
        "deflections: mean {:.3} over {} packets; escape walks: {} recorded, longest {:.0} hops",
        telemetry.deflections.mean(),
        telemetry.deflections.count,
        telemetry.escape_walks.count,
        telemetry.escape_walks.max,
    );
    let busiest = telemetry
        .arcs
        .occupancy_time
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("arcs exist");
    println!(
        "busiest arc {} carried {:.1} packet-time-units (peak queue {})",
        busiest.0, busiest.1, telemetry.arcs.peak_depth[busiest.0]
    );
}
