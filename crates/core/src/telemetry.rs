//! Opt-in telemetry data types: log-bucketed histograms and per-arc
//! load summaries.
//!
//! These are the *serialisable* halves of the flight-recorder stack: the
//! `hyperroute-telemetry` crate builds them from observer hooks and
//! attaches the result to a [`crate::scenario::Report`] **after** the
//! run. Nothing here touches the simulation — a run with telemetry
//! attached produces a byte-identical report body, and the `telemetry`
//! key is simply absent (not `null`) on unobserved runs, so every
//! pre-existing corpus baseline round-trips unchanged.

use serde::{Deserialize, Serialize};

use crate::scenario::{f64_eq, f64_slice_eq};

/// An HDR-style histogram over non-negative values with power-of-two
/// bucket boundaries.
///
/// Bucket `0` holds values in `[0, least)` (plus any non-finite or
/// negative input); bucket `k ≥ 1` holds `[least·2^(k−1), least·2^k)`.
/// Bucketing is pure integer arithmetic on the IEEE-754 exponent, so it
/// is deterministic across platforms — no `log2` rounding at bucket
/// boundaries. The vector grows lazily to the highest touched bucket.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Upper bound of bucket 0 and scale of every boundary; a power of
    /// two.
    pub least: f64,
    /// Per-bucket sample counts, trimmed to the highest touched bucket.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of recorded values (for the mean).
    pub sum: f64,
    /// Smallest recorded value (`+∞` when empty).
    pub min: f64,
    /// Largest recorded value (`-∞` when empty).
    pub max: f64,
}

impl LogHistogram {
    /// Empty histogram with the given bucket-0 bound (must be a power
    /// of two, e.g. `2.0^-10` for times or `1.0` for counts).
    pub fn new(least: f64) -> LogHistogram {
        // A positive power of two has an all-zero mantissa.
        assert!(
            least.is_finite() && least > 0.0 && least.to_bits() & ((1u64 << 52) - 1) == 0,
            "least must be a positive power of two, got {least}"
        );
        LogHistogram {
            least,
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Histogram sized for simulated-time quantities (waits, delays):
    /// bucket 0 spans `[0, 2^-10)`, a resolution of about a thousandth
    /// of one unit service time.
    pub fn for_times() -> LogHistogram {
        LogHistogram::new(2.0_f64.powi(-10))
    }

    /// Histogram sized for small integer counts (hops, deflections):
    /// bucket 0 is exactly the zeros, bucket `k` holds `[2^(k−1), 2^k)`.
    pub fn for_counts() -> LogHistogram {
        LogHistogram::new(1.0)
    }

    /// Bucket index for a value: exponent distance from `least`, shifted
    /// so bucket 0 is everything below `least`.
    #[inline]
    fn bucket(&self, v: f64) -> usize {
        if v.is_nan() || v < self.least {
            return 0; // below least, negative, or NaN
        }
        let e = ((v.to_bits() >> 52) & 0x7FF) as i64;
        let e0 = ((self.least.to_bits() >> 52) & 0x7FF) as i64;
        (e - e0 + 1) as usize
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        let b = self.bucket(v);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the recorded values (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Inclusive upper bound of bucket `k` (`least·2^k` for `k ≥ 1`).
    pub fn bucket_bound(&self, k: usize) -> f64 {
        if k == 0 {
            self.least
        } else {
            self.least * 2.0_f64.powi(k as i32)
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0 ≤ q ≤ 1`), clamped to the observed `max`; NaN when empty.
    /// A conservative estimate with at most 2× relative error — enough
    /// for tail monitoring without storing samples.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_bound(k).min(self.max);
            }
        }
        self.max
    }
}

impl PartialEq for LogHistogram {
    fn eq(&self, other: &Self) -> bool {
        f64_eq(self.least, other.least)
            && self.counts == other.counts
            && self.count == other.count
            && f64_eq(self.sum, other.sum)
            && f64_eq(self.min, other.min)
            && f64_eq(self.max, other.max)
    }
}

/// Per-arc load summary accumulated from hop and service-end hooks.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArcTelemetry {
    /// Per-arc integral of queue depth (waiting + in service) over
    /// time: `∫ depth(t) dt` from the first event at the arc to the
    /// last. Dividing by the horizon gives the time-averaged occupancy.
    pub occupancy_time: Vec<f64>,
    /// Per-arc peak queue depth (waiting + in service).
    pub peak_depth: Vec<u32>,
}

impl PartialEq for ArcTelemetry {
    fn eq(&self, other: &Self) -> bool {
        f64_slice_eq(&self.occupancy_time, &other.occupancy_time)
            && self.peak_depth == other.peak_depth
    }
}

/// The telemetry extension of a [`crate::scenario::Report`]: log-bucketed
/// distributions and per-arc load, attached only when a run was driven
/// under a telemetry probe.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TelemetryExt {
    /// Per-packet delay (delivery time − birth time), all deliveries.
    pub delay: LogHistogram,
    /// Per-hop queue wait: time between joining an arc queue and
    /// starting service there (0 for uncontended hops).
    pub queue_wait: LogHistogram,
    /// Paid deflections per delivered packet (bucket 0 = clean routes).
    pub deflections: LogHistogram,
    /// Length of each completed escape walk, in hops.
    pub escape_walks: LogHistogram,
    /// Per-arc occupancy integrals and peaks.
    pub arcs: ArcTelemetry,
}

impl PartialEq for TelemetryExt {
    fn eq(&self, other: &Self) -> bool {
        self.delay == other.delay
            && self.queue_wait == other.queue_wait
            && self.deflections == other.deflections
            && self.escape_walks == other.escape_walks
            && self.arcs == other.arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_powers_of_two() {
        let mut h = LogHistogram::for_counts();
        // bucket 0 = [0,1), 1 = [1,2), 2 = [2,4), 3 = [4,8) …
        for v in [0.0, 0.5, 1.0, 1.9, 2.0, 3.0, 4.0, 7.5, 8.0] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![2, 2, 2, 2, 1]);
        assert_eq!(h.count, 9);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 8.0);
    }

    #[test]
    fn boundary_values_land_in_upper_bucket() {
        let mut h = LogHistogram::for_times();
        let least = 2.0_f64.powi(-10);
        h.record(least); // exactly the bucket-0 bound → bucket 1
        h.record(least * 2.0); // exactly the bucket-1 bound → bucket 2
        assert_eq!(h.counts, vec![0, 1, 1]);
    }

    #[test]
    fn degenerate_inputs_fold_into_bucket_zero() {
        let mut h = LogHistogram::for_counts();
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.counts, vec![2]);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn mean_and_quantile_bounds() {
        let mut h = LogHistogram::for_counts();
        for v in [1.0, 1.0, 2.0, 100.0] {
            h.record(v);
        }
        assert!((h.mean() - 26.0).abs() < 1e-12);
        // Median rank 2 lands in bucket [1,2) whose bound is 2.
        assert_eq!(h.quantile_bound(0.5), 2.0);
        // The top sample's bucket bound (128) is clamped to max = 100.
        assert_eq!(h.quantile_bound(1.0), 100.0);
        assert!(LogHistogram::for_counts().quantile_bound(0.5).is_nan());
    }

    #[test]
    fn serde_round_trip_is_partial_eq() {
        let mut h = LogHistogram::for_times();
        for v in [0.0, 0.25, 3.5] {
            h.record(v);
        }
        let ext = TelemetryExt {
            delay: h.clone(),
            queue_wait: h.clone(),
            deflections: LogHistogram::for_counts(),
            escape_walks: LogHistogram::for_counts(),
            arcs: ArcTelemetry {
                occupancy_time: vec![0.0, 1.5, f64::NAN],
                peak_depth: vec![0, 3, 1],
            },
        };
        let json = serde_json::to_string(&ext).expect("serialise");
        let back: TelemetryExt = serde_json::from_str(&json).expect("parse");
        // NaN → null → NaN and ±∞ → null → NaN both satisfy f64_eq.
        assert_eq!(ext, back);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_least() {
        LogHistogram::new(3.0);
    }
}
