//! Ring instantiation of the generic engine — greedy routing in rings
//! (the Papillon direction), and the worked example for "how to add a
//! topology in ~100 lines".
//!
//! Every node of an `n`-node ring generates packets as an independent
//! Poisson process (merged network-wide, like the hypercube's sources);
//! destinations are uniform over all `n` nodes (a destination equal to
//! the origin is delivered instantly with zero hops, like the hypercube's
//! `(1-p)^d` mass). Greedy routing walks the shorter way around —
//! clockwise always on unidirectional rings, ties at the antipode break
//! clockwise on bidirectional ones — so per-hop progress is strict and
//! paths are deterministic. Per-arc unit-service FIFO queues, contention
//! policies, slotted arrivals, warm-up and drain all come from the shared
//! [`Engine`] for free.
//!
//! What this module actually contains — the entire marginal cost of the
//! topology — is: a 24-byte packet, the packed arc word, the greedy
//! direction choice (delegated to [`hyperroute_topology::Ring`]), and the
//! per-direction rate statistics of its [`Report`].

use crate::engine::{Advance, Engine, EngineCfg, EnginePacket, EngineSpec, Spawn};
use crate::observe::{NullObserver, Observer};
use crate::scenario::{Report, ReportExt, RingExt, Scenario, Topology};
use hyperroute_desim::SimRng;
use hyperroute_topology::{Ring, RingDirection};

/// An in-flight ring packet: birth time, absolute destination node, hops
/// taken. Its current node is implied by the arc queue holding it.
#[derive(Clone, Copy, Debug)]
pub struct RingPacket {
    born: f64,
    dest: u32,
    hops: u16,
}

impl EnginePacket for RingPacket {
    #[inline]
    fn born(&self) -> f64 {
        self.born
    }
}

/// Bits of the packed arc word holding the arc's head node (the engine's
/// busy bit is 31; direction needs no bit — the per-direction stats are
/// taken at `choose_arc`, and `advance` only follows the head).
const ARC_NODE_MASK: u32 = (1 << 30) - 1;

/// The ring's per-topology half of the generic engine.
pub struct RingSpec {
    ring: Ring,
    cw_arrivals: u64,
    ccw_arrivals: u64,
}

impl EngineSpec for RingSpec {
    type Pkt = RingPacket;

    fn num_sources(&self) -> usize {
        self.ring.num_nodes()
    }

    fn num_arcs(&self) -> usize {
        self.ring.num_arcs()
    }

    fn arc_meta(&self, arc: usize) -> u32 {
        let (tail, dir) = self.ring.arc_from_index(arc);
        self.ring.step(tail, dir) as u32
    }

    fn mean_hops_hint(&self) -> f64 {
        self.ring.mean_path_length()
    }

    fn generate(&mut self, t: f64, source: u32, dest_rng: &mut SimRng) -> Spawn<RingPacket> {
        let dest = dest_rng.below(self.ring.num_nodes()) as u32;
        if dest == source {
            Spawn::SelfDeliver
        } else {
            Spawn::Route(RingPacket {
                born: t,
                dest,
                hops: 0,
            })
        }
    }

    fn choose_arc(
        &mut self,
        _t: f64,
        in_window: bool,
        node: u32,
        pkt: &mut RingPacket,
        _route_rng: &mut SimRng,
    ) -> u32 {
        let dir = self.ring.greedy_direction(node as u64, pkt.dest as u64);
        if in_window {
            match dir {
                RingDirection::Clockwise => self.cw_arrivals += 1,
                RingDirection::CounterClockwise => self.ccw_arrivals += 1,
            }
        }
        self.ring.arc_index(node as u64, dir) as u32
    }

    fn note_service_end(&mut self, _t: f64, _meta: u32) {}

    fn advance(&mut self, meta: u32, pkt: &mut RingPacket) -> Advance {
        pkt.hops += 1;
        let node = meta & ARC_NODE_MASK;
        if node == pkt.dest {
            Advance::Deliver(pkt.hops)
        } else {
            Advance::Forward(node)
        }
    }

    fn note_deliver(&mut self, _pkt: &RingPacket, _in_window: bool) {}
}

/// The ring simulator: a [`RingSpec`] driven by the generic [`Engine`].
/// Construct through [`crate::scenario::Scenario`] with
/// [`crate::scenario::Topology::Ring`].
pub struct RingSim {
    engine: Engine<RingSpec>,
}

impl RingSim {
    /// Build the simulator from a validated ring scenario.
    pub(crate) fn from_scenario(s: &Scenario) -> RingSim {
        let Topology::Ring {
            nodes,
            bidirectional,
        } = s.topology
        else {
            unreachable!("ring simulator on a non-ring scenario");
        };
        let spec = RingSpec {
            ring: Ring::new(nodes, bidirectional),
            cw_arrivals: 0,
            ccw_arrivals: 0,
        };
        let cfg = EngineCfg {
            lambda: s.workload.lambda,
            arrivals: s.workload.arrivals,
            contention: s.policy.contention,
            scheduler: s.run.scheduler,
            horizon: s.run.horizon,
            warmup: s.run.warmup,
            seed: s.run.seed,
            drain: s.run.drain,
        };
        RingSim {
            engine: Engine::new(spec, cfg),
        }
    }

    /// Run to completion and summarise.
    pub fn run(self) -> Report {
        self.run_observed(&mut NullObserver)
    }

    /// Run to completion under a streaming [`Observer`] and summarise
    /// (bit-identical to an unobserved run).
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> Report {
        self.engine.drive(obs);
        self.report()
    }

    fn report(&self) -> Report {
        let engine = &self.engine;
        let spec = engine.spec();
        let cfg = engine.cfg();
        let collector = engine.collector();
        let span = cfg.horizon - cfg.warmup;
        let arcs_per_direction = spec.ring.num_nodes() as f64;
        Report {
            delay: collector.delay_stats(),
            mean_in_system: collector.mean_in_system(cfg.horizon),
            peak_in_system: collector.peak_in_system(),
            throughput: collector.throughput(cfg.horizon),
            little_error: collector.little_check(cfg.horizon).relative_error(),
            generated: collector.generated(),
            delivered: collector.delivered_total(),
            events: engine.events_processed(),
            ext: ReportExt::Ring(RingExt {
                rho: spec.ring.load_factor(cfg.lambda),
                mean_hops: collector.mean_hops(),
                zero_hop_fraction: collector.zero_hop_fraction(),
                clockwise_arc_rate: spec.cw_arrivals as f64 / (span * arcs_per_direction),
                counter_clockwise_arc_rate: if spec.ring.bidirectional() {
                    spec.ccw_arrivals as f64 / (span * arcs_per_direction)
                } else {
                    0.0
                },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArrivalModel, ContentionPolicy};

    fn base_scenario(nodes: usize, bidirectional: bool, lambda: f64) -> Scenario {
        Scenario::builder(Topology::Ring {
            nodes,
            bidirectional,
        })
        .lambda(lambda)
        .horizon(3_000.0)
        .warmup(500.0)
        .seed(41)
        .build()
        .expect("valid scenario")
    }

    fn ring(r: &Report) -> &RingExt {
        let ReportExt::Ring(ext) = &r.ext else {
            panic!("wrong report extension");
        };
        ext
    }

    #[test]
    fn everything_delivered_and_mean_hops_match() {
        // 16-node bidirectional ring: mean greedy path = (Σ min(k, 16-k))/16
        // = 4.0 hops, zero-hop fraction 1/16.
        let r = RingSim::from_scenario(&base_scenario(16, true, 0.2)).run();
        assert_eq!(r.generated, r.delivered);
        assert!(r.generated > 5_000);
        assert!(
            (ring(&r).mean_hops - 4.0).abs() < 0.1,
            "hops {}",
            ring(&r).mean_hops
        );
        assert!(
            (ring(&r).zero_hop_fraction - 1.0 / 16.0).abs() < 0.01,
            "zero-hop {}",
            ring(&r).zero_hop_fraction
        );
    }

    #[test]
    fn unidirectional_ring_never_uses_ccw_arcs() {
        let r = RingSim::from_scenario(&base_scenario(12, false, 0.1)).run();
        assert_eq!(ring(&r).counter_clockwise_arc_rate, 0.0);
        // Per-arc clockwise rate = λ · (n-1)/2 = 0.55.
        assert!(
            (ring(&r).clockwise_arc_rate - 0.55).abs() < 0.05,
            "cw rate {}",
            ring(&r).clockwise_arc_rate
        );
        assert_eq!(r.generated, r.delivered);
    }

    #[test]
    fn bidirectional_ring_splits_load_between_directions() {
        let r = RingSim::from_scenario(&base_scenario(16, true, 0.2)).run();
        let (cw, ccw) = (
            ring(&r).clockwise_arc_rate,
            ring(&r).counter_clockwise_arc_rate,
        );
        // Clockwise carries slightly more (antipode ties go clockwise):
        // cw hops per packet = (1+2+3+4+4+3+2+1... computed) /16.
        assert!(cw > ccw, "cw {cw} vs ccw {ccw}");
        assert!(ccw > 0.0);
        // Total per-node rate λ·mean_hops splits across the 2 directions.
        assert!(
            (cw + ccw - 0.2 * 4.0).abs() < 0.06,
            "cw {cw} + ccw {ccw} vs λ·E[hops] = 0.8"
        );
    }

    #[test]
    fn delay_grows_near_ring_capacity() {
        // Unidirectional n=9: capacity λ(n-1)/2 < 1 ⇒ λ < 0.25.
        let light = RingSim::from_scenario(&base_scenario(9, false, 0.05)).run();
        let heavy = RingSim::from_scenario(&base_scenario(9, false, 0.22)).run();
        assert!(ring(&heavy).rho > ring(&light).rho);
        assert!(ring(&heavy).rho < 1.0);
        assert!(heavy.delay.mean > light.delay.mean);
        assert_eq!(heavy.generated, heavy.delivered);
    }

    #[test]
    fn little_law_and_determinism() {
        let a = RingSim::from_scenario(&base_scenario(16, true, 0.3)).run();
        assert!(a.little_error < 0.05, "little {}", a.little_error);
        let b = RingSim::from_scenario(&base_scenario(16, true, 0.3)).run();
        assert_eq!(a.delay.mean, b.delay.mean);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn slotted_arrivals_and_contention_policies_run_on_the_ring() {
        // Engine-generic features apply to the new topology for free.
        let mut s = base_scenario(12, true, 0.3);
        s.workload.arrivals = ArrivalModel::Slotted { slots_per_unit: 2 };
        s.policy.contention = ContentionPolicy::Lifo;
        let r = RingSim::from_scenario(&s).run();
        assert_eq!(r.generated, r.delivered);
        assert!(r.delay.mean >= 1.0);
    }
}
