//! Zero-cost-when-off phase timers for the engine hot loop.
//!
//! Built with `--features profile`, the engine wall-clocks four phases
//! of every event — scheduler pop, arc choice, metrics tally, observer
//! dispatch — and adds the totals to a thread-local accumulator that
//! the bench harness drains into the `profile` section of
//! `BENCH_engine.json`. Without the feature (the default, and what
//! every corpus/CI run uses) [`Tick`] is a zero-sized type and every
//! method an empty `#[inline(always)]` body, so the instrumented call
//! sites compile to exactly the uninstrumented code.
//!
//! Timer readings are wall-clock and therefore **never** part of a
//! [`Report`](crate::scenario::Report) — reports stay byte-identical
//! whether or not the feature is on; only the side-channel summary
//! differs.

/// The instrumented phases of the engine's event loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Popping the next event (completion queue merged with the
    /// arrival stream).
    SchedPop = 0,
    /// The spec's routing decision plus queue insertion.
    ArcChoice = 1,
    /// Metrics accounting at generations and deliveries.
    Metrics = 2,
    /// Per-event observer dispatch.
    Observer = 3,
    /// Sharded-run window synchronisation: the coordinator's
    /// send/receive barrier around each lookahead window
    /// ([`crate::parallel::ParallelEngine`]); zero on single-threaded
    /// runs.
    ShardSync = 4,
}

/// Number of phases (array size for the accumulators).
const PHASES: usize = 5;

/// Phase names in `Phase` discriminant order, as emitted in bench JSON.
pub const PHASE_NAMES: [&str; PHASES] = [
    "sched_pop",
    "arc_choice",
    "metrics",
    "observer",
    "shard_sync",
];

/// Whether this build carries the timers.
pub const fn enabled() -> bool {
    cfg!(feature = "profile")
}

/// A started phase measurement. Zero-sized (and free) when the
/// `profile` feature is off.
#[derive(Clone, Copy, Debug)]
pub struct Tick(#[cfg(feature = "profile")] std::time::Instant);

impl Tick {
    /// Start timing a phase.
    #[inline(always)]
    pub fn start() -> Tick {
        Tick(
            #[cfg(feature = "profile")]
            std::time::Instant::now(),
        )
    }
}

/// Per-engine phase accumulators (a pair of zero-length arrays when
/// profiling is off).
#[derive(Clone, Debug, Default)]
pub struct PhaseTimers {
    #[cfg(feature = "profile")]
    nanos: [u64; PHASES],
    #[cfg(feature = "profile")]
    hits: [u64; PHASES],
}

impl PhaseTimers {
    /// Fresh zeroed timers.
    pub fn new() -> PhaseTimers {
        PhaseTimers::default()
    }

    /// Charge the time since `tick` to `phase`.
    #[inline(always)]
    pub fn record(&mut self, phase: Phase, tick: Tick) {
        #[cfg(feature = "profile")]
        {
            self.nanos[phase as usize] += tick.0.elapsed().as_nanos() as u64;
            self.hits[phase as usize] += 1;
        }
        #[cfg(not(feature = "profile"))]
        let _ = (phase, tick);
    }

    /// Fold this engine's totals into the thread-local accumulator
    /// (drained by [`take`]). The engine calls this once per drive.
    pub fn flush(&self) {
        #[cfg(feature = "profile")]
        TOTALS.with(|cell| {
            let mut totals = cell.borrow_mut();
            for i in 0..PHASES {
                totals.0[i] += self.nanos[i];
                totals.1[i] += self.hits[i];
            }
        });
    }
}

#[cfg(feature = "profile")]
thread_local! {
    static TOTALS: std::cell::RefCell<([u64; PHASES], [u64; PHASES])> =
        const { std::cell::RefCell::new(([0; PHASES], [0; PHASES])) };
}

/// One phase's accumulated cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name as emitted in bench JSON.
    pub name: &'static str,
    /// Total wall-clock nanoseconds charged to the phase.
    pub nanos: u64,
    /// Number of timed occurrences.
    pub hits: u64,
}

/// Snapshot of the profiling state after some runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileSummary {
    /// Whether the build carries timers (`false` ⇒ all stats zero).
    pub enabled: bool,
    /// Per-phase totals, in [`PHASE_NAMES`] order.
    pub phases: [PhaseStat; PHASES],
}

/// Drain the calling thread's accumulated totals (engines flush into
/// them at the end of every drive). Always callable; with the feature
/// off it reports `enabled: false` and zeros.
pub fn take() -> ProfileSummary {
    let mut phases = [PhaseStat {
        name: "",
        nanos: 0,
        hits: 0,
    }; PHASES];
    for (i, slot) in phases.iter_mut().enumerate() {
        slot.name = PHASE_NAMES[i];
    }
    #[cfg(feature = "profile")]
    TOTALS.with(|cell| {
        let mut totals = cell.borrow_mut();
        for (i, slot) in phases.iter_mut().enumerate() {
            slot.nanos = totals.0[i];
            slot.hits = totals.1[i];
        }
        *totals = ([0; PHASES], [0; PHASES]);
    });
    ProfileSummary {
        enabled: enabled(),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_matches_build_configuration() {
        let summary = take();
        assert_eq!(summary.enabled, cfg!(feature = "profile"));
        assert_eq!(summary.phases.len(), PHASE_NAMES.len());
        for (stat, name) in summary.phases.iter().zip(PHASE_NAMES) {
            assert_eq!(stat.name, name);
            if !enabled() {
                assert_eq!((stat.nanos, stat.hits), (0, 0), "untimed build not zero");
            }
        }
    }

    #[test]
    fn record_without_feature_is_inert() {
        let mut timers = PhaseTimers::new();
        let tick = Tick::start();
        timers.record(Phase::SchedPop, tick);
        timers.flush();
        // With the feature off this whole dance is no-ops; with it on,
        // the flush lands in the thread-local which `take` drains.
        let summary = take();
        if enabled() {
            assert_eq!(summary.phases[Phase::SchedPop as usize].hits, 1);
            // Draining resets.
            assert_eq!(take().phases[Phase::SchedPop as usize].hits, 0);
        }
    }

    #[cfg(feature = "profile")]
    #[test]
    fn timed_engine_charges_every_phase() {
        use crate::scenario::{Scenario, Topology};
        let _ = take(); // discard anything earlier tests left behind
        let build = |workers| {
            Scenario::builder(Topology::Hypercube { dim: 4 })
                .lambda(1.0)
                .p(0.5)
                .horizon(200.0)
                .warmup(50.0)
                .seed(3)
                .workers(workers)
                .build()
                .expect("valid scenario")
        };
        // A single-threaded drive charges the four hot-loop phases; a
        // sharded one charges the window barrier on the coordinator
        // thread (which is this thread, so `take` sees it).
        build(1).run().expect("runs");
        build(2).run().expect("runs sharded");
        let summary = take();
        assert!(summary.enabled);
        for stat in &summary.phases {
            assert!(stat.hits > 0, "phase {} never timed", stat.name);
        }
    }
}
