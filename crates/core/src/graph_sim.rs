//! The blanket graph simulator: **any** [`RoutingTopology`] runs on the
//! generic engine with zero per-topology event code.
//!
//! PR 4 proved the engine/topology split with a hand-written ring spec;
//! this module closes the loop. [`GraphSpec`] is one [`EngineSpec`]
//! parameterised over the routing trait: the packet is a 32-byte record
//! (birth, destination, and the recovery/stretch state riding in one
//! headroom block), the greedy step is the trait's `next_arc`, and the
//! packed arc word is the arc's head node. Adding a topology is now
//! exactly the trait impl — the ring, the torus (`k`-ary `d`-cube), the
//! de Bruijn graph and the generated sparse topologies
//! (`hyperroute-sparse`) all route through this one spec, and the ring
//! replays its former hand-written spec **draw for draw** (its corpus
//! baselines are byte-identical across the port).
//!
//! The sparse topologies relax the greedy contract: `next_arc` may
//! return `None` away from the destination when metric greedy stalls.
//! The spec maps that to the route-outcome taxonomy `SUCCESS |
//! LOCAL_MINIMUM | DEAD_END` (tallied in [`OutcomeExt`]) and — when the
//! fault spec selects [`FaultFallback::Escape`] — runs a GOAFR-style
//! best-neighbour escape with a per-packet TTL instead of dropping.
//!
//! On top of the blanket spec sit the two workload extensions the
//! ROADMAP's related-work directions call for:
//!
//! * **Arc-fault masks** (Angel et al., *Routing Complexity of Faulty
//!   Networks*): a seeded or explicit set of dead arcs, optionally grown
//!   mid-run by a seeded fault-arrival process
//!   ([`FaultSpec::dynamics`](crate::config::FaultSpec)). When a packet's
//!   greedy arc is dead, the [`FaultFallback`] hook picks one of four
//!   recoveries — `Drop`, `Detour` (first live strict-progress arc),
//!   `Retry` (paid deflections onto any live arc, bounded by a per-packet
//!   budget carried in the packet itself), or `Multipath` (the
//!   topology's ranked alternate arcs) — see the crate docs for the
//!   worked four-way example. Drops are first-class: the engine keeps
//!   `generated == delivered + dropped` exact, and the report's
//!   [`GraphExt`] carries the split.
//! * **Skewed destination laws**: uniform, Eq.-(1) bit-flips (for the
//!   faulty hypercube), an arbitrary weighted-node pmf, and Papillon's
//!   power-law ring offsets — see [`GraphDestination`].

use crate::config::{FaultArrivals, FaultFallback, FaultMode, FaultSpec};
use crate::engine::{Advance, ArcChoice, Engine, EngineCfg, EnginePacket, EngineSpec, Spawn};
use crate::metrics::{MetricsCollector, ShardedArcTally};
use crate::observe::{NullObserver, Observer};
use crate::packet::sample_flip_mask;
use crate::parallel::{ParallelEngine, ShardSpec, ShardableSpec};
use crate::scenario::{GraphExt, OutcomeExt, Report, ReportExt, Scenario, StretchExt};
use hyperroute_desim::{splitmix64, SimRng};
use hyperroute_topology::RoutingTopology;

/// Sticky "ever escaped" bit of [`GraphPacket::state`] — survives escape
/// exit so delivery can count the packet as recovered.
const ESCAPE_STICKY: u32 = 1 << 31;

/// Low 31 bits of [`GraphPacket::state`]: `d_entry + 1` while the packet
/// is in escape mode (0 = routing greedily).
const ESCAPE_DEPTH: u32 = ESCAPE_STICKY - 1;

/// An in-flight packet of the blanket spec: birth time, absolute
/// destination node, and the recovery/stretch state — previous node,
/// escape word, birth distance, hops taken, and paid deflections spent.
/// The per-packet state of the `Retry`/`Multipath`/`Escape` fallbacks
/// rides in one extra 16-byte headroom block (sst-macro packs its PAR
/// retry header the same way), so the packet is four words. Its current
/// node is implied by the arc queue holding it.
#[derive(Clone, Copy, Debug)]
pub struct GraphPacket {
    born: f64,
    dest: u32,
    /// Node this packet left on its previous hop (`u32::MAX` at birth) —
    /// the escape fallback avoids bouncing straight back across the arc
    /// it arrived on unless that is the only live option.
    prev: u32,
    /// Escape word: [`ESCAPE_STICKY`] is the sticky "ever escaped" flag,
    /// the [`ESCAPE_DEPTH`] bits hold the quantised entry distance plus
    /// one while escaping (0 = plain greedy).
    state: u32,
    /// Quantised `distance(source, dest)` at birth — the stretch
    /// denominator. Relative to the topology's distance function: exact
    /// hops for the dense topologies, the quantised embedding metric for
    /// the sparse ones.
    dist0: u32,
    /// Engine-assigned trace id (birth-sequence number), stamped by the
    /// engine at generation; rides in what used to be padding.
    trace: u32,
    hops: u16,
    tries: u16,
}

impl EnginePacket for GraphPacket {
    #[inline]
    fn born(&self) -> f64 {
        self.born
    }

    #[inline]
    fn set_trace_id(&mut self, id: u32) {
        self.trace = id;
    }

    #[inline]
    fn trace_id(&self) -> u32 {
        self.trace
    }

    #[inline]
    fn deflections(&self) -> u16 {
        self.tries
    }
}

/// Destination law of a [`GraphSpec`] — the lowered, sampler-ready form
/// of [`DestinationSpec`](crate::config::DestinationSpec).
#[derive(Clone, Debug)]
pub enum GraphDestination {
    /// Uniform over all nodes (destination = origin self-delivers).
    Uniform,
    /// Eq. (1) bit-flips: destination = origin ⊕ mask with each of `dim`
    /// bits flipped independently with probability `p` (the faulty
    /// hypercube's law).
    FlipMask {
        /// Word width (the hypercube dimension).
        dim: usize,
        /// Per-bit flip probability.
        p: f64,
    },
    /// Inverse-CDF sampling over absolute destination nodes.
    NodeCdf(Vec<f64>),
    /// Inverse-CDF sampling over clockwise ring offsets `1..n`
    /// (translation-invariant; never self-destined): destination =
    /// `(origin + 1 + index) mod n`.
    OffsetCdf(Vec<f64>),
    /// The faulty butterfly's law: from source row `x` (a level-0 node
    /// id) route to the level-`d` node of row `x ⊕ mask` with each of
    /// `dim` mask bits flipped independently with probability `p` — the
    /// Eq. (1) bit-flip law lifted onto the level-major butterfly
    /// encoding. Never self-delivers (source and destination sit on
    /// different levels).
    RowFlip {
        /// Butterfly dimension `d` (row width and destination level).
        dim: usize,
        /// Per-bit flip probability.
        p: f64,
    },
    /// Uniform over the first `count` node ids — the fat tree's law
    /// (destinations are the leaves, node ids `0..2^L`; destination =
    /// origin self-delivers).
    LeafUniform(
        /// Number of leaves.
        usize,
    ),
}

impl GraphDestination {
    /// Lower a weighted-node pmf (entries pre-validated by the scenario
    /// layer) into its sampling CDF.
    pub fn from_node_pmf(pmf: &[f64]) -> GraphDestination {
        GraphDestination::NodeCdf(cdf_of(pmf))
    }

    /// Lower a Papillon power-law over clockwise offsets `ℓ ∈ 1..n`
    /// (`P(ℓ) ∝ ℓ^-alpha`) into its sampling CDF.
    pub fn ring_power_law(nodes: usize, alpha: f64) -> GraphDestination {
        let weights: Vec<f64> = (1..nodes).map(|l| (l as f64).powf(-alpha)).collect();
        let total: f64 = weights.iter().sum();
        GraphDestination::OffsetCdf(cdf_of_scaled(&weights, total))
    }
}

fn cdf_of(pmf: &[f64]) -> Vec<f64> {
    cdf_of_scaled(pmf, 1.0)
}

fn cdf_of_scaled(weights: &[f64], total: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = weights
        .iter()
        .map(|&w| {
            acc += w / total;
            acc
        })
        .collect();
    // Guard the final bucket against rounding, like `MaskSampler`.
    *cdf.last_mut().expect("nonempty pmf") = 1.0;
    cdf
}

/// Paid (non-progress) deflections a `Multipath` packet may spend before
/// it drops — a termination backstop, not a tuning knob: ranked
/// alternates regress by a bounded stretch, so honest recoveries use a
/// handful. Mirrors `Retry`'s explicit per-packet budget.
const MULTIPATH_DEFLECTION_CAP: u16 = 64;

/// The realised dead-arc set, the adjacency index the detour-style
/// fallbacks scan, and the pre-drawn dynamic fault-arrival schedule.
/// `Clone` hands every shard worker its own copy: the mask and schedule
/// are functions of the fault seeds alone, and arcs only ever die, so
/// each shard advancing `apply_until` along its own (monotone) event
/// times sees the same mask the single-threaded run would at the same
/// instant.
#[derive(Clone)]
struct FaultState {
    dead: Vec<bool>,
    dead_count: u64,
    fallback: FaultFallback,
    /// CSR adjacency over dense arc indices, grouped by tail node — the
    /// deterministic scan order of [`FaultFallback::Detour`] and
    /// [`FaultFallback::Retry`].
    out_start: Vec<u32>,
    out_arcs: Vec<u32>,
    /// Dynamic arc deaths `(time, arc)` in time order, pre-drawn from the
    /// dedicated fault-arrival RNG so the pattern is a function of the
    /// arrival seed alone; applied lazily as simulation time passes.
    schedule: Vec<(f64, u32)>,
    cursor: usize,
    /// Scratch for [`RoutingTopology::alternate_arcs`] enumerations.
    alt_buf: Vec<usize>,
}

impl FaultState {
    fn build<T: RoutingTopology>(topo: &T, spec: &FaultSpec, horizon: f64) -> FaultState {
        let num_arcs = topo.num_arcs();
        let mut dead = vec![false; num_arcs];
        match &spec.mode {
            FaultMode::Seeded { fraction, seed } => {
                let kill = ((fraction * num_arcs as f64).round() as usize).min(num_arcs);
                // Partial Fisher–Yates over a dedicated RNG: the fault
                // pattern is a function of the fault seed alone, not the
                // run seed.
                let mut rng = SimRng::new(*seed);
                let mut idx: Vec<u32> = (0..num_arcs as u32).collect();
                for i in 0..kill {
                    let j = i + rng.below(num_arcs - i);
                    idx.swap(i, j);
                    dead[idx[i] as usize] = true;
                }
            }
            FaultMode::Explicit { arcs } => {
                for &arc in arcs {
                    dead[arc] = true;
                }
            }
        }
        // Dynamic deaths: exponential interarrivals up to the generation
        // horizon, each killing a uniformly-chosen arc (re-killing a dead
        // arc is an idempotent no-op, so the effective rate tapers).
        let schedule = match spec.dynamics {
            Some(FaultArrivals { rate, seed }) if rate > 0.0 => {
                let mut rng = SimRng::new(seed);
                let mut t = 0.0;
                let mut events = Vec::new();
                loop {
                    t += rng.exp(rate);
                    if t >= horizon {
                        break;
                    }
                    events.push((t, rng.below(num_arcs) as u32));
                }
                events
            }
            _ => Vec::new(),
        };
        // Counting-sort CSR of arcs by tail node (most topologies already
        // enumerate node-major, but the trait does not promise it). Only
        // the out-arc-scanning fallbacks (Detour, Retry, Escape) ever
        // read it; Drop and Multipath runs skip the build — two full arc
        // passes and ~8 bytes/arc on large topologies. Topologies whose
        // arc indices are already tail-grouped (`out_arc_range`, i.e. the
        // sparse CSR graphs) skip it too: at 10⁷ arcs the duplicate index
        // would double the adjacency footprint for nothing.
        let scans_csr = matches!(
            spec.fallback,
            FaultFallback::Detour | FaultFallback::Retry { .. } | FaultFallback::Escape { .. }
        ) && topo.out_arc_range(0).is_none();
        let (out_start, out_arcs) = if scans_csr {
            let nodes = topo.num_nodes();
            let mut out_start = vec![0u32; nodes + 1];
            for arc in 0..num_arcs {
                out_start[topo.arc_tail(arc) as usize + 1] += 1;
            }
            for i in 0..nodes {
                out_start[i + 1] += out_start[i];
            }
            let mut cursor = out_start.clone();
            let mut out_arcs = vec![0u32; num_arcs];
            for arc in 0..num_arcs {
                let tail = topo.arc_tail(arc) as usize;
                out_arcs[cursor[tail] as usize] = arc as u32;
                cursor[tail] += 1;
            }
            (out_start, out_arcs)
        } else {
            (Vec::new(), Vec::new())
        };
        FaultState {
            dead_count: dead.iter().filter(|&&d| d).count() as u64,
            dead,
            fallback: spec.fallback,
            out_start,
            out_arcs,
            schedule,
            cursor: 0,
            alt_buf: Vec::new(),
        }
    }

    /// Apply every scheduled arc death at or before `t`. Arcs only ever
    /// die (never revive), so the strict-progress termination arguments
    /// of the fallbacks are unaffected by dynamics.
    fn apply_until(&mut self, t: f64) {
        while let Some(&(when, arc)) = self.schedule.get(self.cursor) {
            if when > t {
                break;
            }
            self.cursor += 1;
            if !self.dead[arc as usize] {
                self.dead[arc as usize] = true;
                self.dead_count += 1;
            }
        }
    }

    /// Visit `node`'s outgoing arcs in dense index order, stopping when
    /// `f` returns `true` — through the topology's own tail-grouped arc
    /// ranges when it has them, else through the counting-sort index
    /// built at construction.
    #[inline]
    fn scan_out<T: RoutingTopology>(&self, topo: &T, node: u64, mut f: impl FnMut(usize) -> bool) {
        if let Some(range) = topo.out_arc_range(node) {
            for a in range {
                if f(a) {
                    return;
                }
            }
        } else {
            let range =
                self.out_start[node as usize] as usize..self.out_start[node as usize + 1] as usize;
            for &a in &self.out_arcs[range] {
                if f(a as usize) {
                    return;
                }
            }
        }
    }

    /// First live outgoing arc of `node` (dense index order) whose head
    /// is strictly closer to `dest`, or `None` (→ drop).
    fn detour<T: RoutingTopology>(&self, topo: &T, node: u64, dest: u64) -> Option<usize> {
        let here = topo.distance(node, dest);
        let mut found = None;
        self.scan_out(topo, node, |a| {
            if !self.dead[a] && topo.distance(topo.arc_head(a), dest) < here {
                found = Some(a);
                true
            } else {
                false
            }
        });
        found
    }

    /// `Retry`: a free detour when one exists; otherwise spend one unit
    /// of the packet's budget on **any** live arc out of the node —
    /// dense CSR order first, then the topology's ranked alternates
    /// (which reach arcs whose tail differs from `node`, like the
    /// butterfly's level-`d` wrap back into a fresh pass). Returns the
    /// arc and whether it was paid, or `None` (→ drop).
    fn retry<T: RoutingTopology>(
        &mut self,
        topo: &T,
        node: u64,
        dest: u64,
        tries: u16,
        budget: u16,
    ) -> Option<(usize, bool)> {
        if let Some(live) = self.detour(topo, node, dest) {
            return Some((live, false));
        }
        if tries >= budget {
            return None;
        }
        let mut any = None;
        self.scan_out(topo, node, |a| {
            if !self.dead[a] {
                any = Some(a);
                true
            } else {
                false
            }
        });
        if let Some(any) = any {
            return Some((any, true));
        }
        self.alt_buf.clear();
        topo.alternate_arcs(node, dest, &mut self.alt_buf);
        self.alt_buf
            .iter()
            .find(|&&a| !self.dead[a])
            .map(|&a| (a, true))
    }

    /// `Multipath`: the first live arc of the topology's ranked
    /// alternates — free when it makes strict progress, else one of the
    /// packet's capped paid deflections. Returns the arc and whether it
    /// was paid, or `None` (→ drop).
    fn multipath<T: RoutingTopology>(
        &mut self,
        topo: &T,
        node: u64,
        dest: u64,
        tries: u16,
    ) -> Option<(usize, bool)> {
        self.alt_buf.clear();
        topo.alternate_arcs(node, dest, &mut self.alt_buf);
        let here = topo.distance(node, dest);
        for &alt in &self.alt_buf {
            if self.dead[alt] {
                continue;
            }
            if topo.distance(topo.arc_head(alt), dest) < here {
                return Some((alt, false));
            }
            if tries < MULTIPATH_DEFLECTION_CAP {
                return Some((alt, true));
            }
        }
        None
    }

    /// `Escape`: the live out-arc whose head is closest to `dest` even
    /// when that regresses (GOAFR's last-resort step), avoiding the node
    /// the packet just came from unless it is the only live option.
    /// Equidistant candidates break by a per-packet splitmix hash
    /// (`salt` mixes the packet's trace id with its paid-hop count), so
    /// stuck packets revisiting a plateau spread over different
    /// neighbours instead of all herding down the lowest arc index —
    /// without touching any shared RNG stream, which keeps the walk a
    /// pure function of packet state (replayable across shard workers
    /// and bit-identical across reruns). Returns the arc and its head's
    /// quantised distance, or `None` when every out-arc is dead (a dead
    /// end). The caller decides paid-vs-free against the TTL.
    fn escape<T: RoutingTopology>(
        &self,
        topo: &T,
        node: u64,
        dest: u64,
        prev: u32,
        salt: u64,
    ) -> Option<(usize, usize)> {
        let mut best: Option<(usize, u64, usize)> = None;
        let mut back: Option<(usize, u64, usize)> = None;
        self.scan_out(topo, node, |a| {
            if !self.dead[a] {
                let head = topo.arc_head(a);
                let d = topo.distance(head, dest);
                let h = splitmix64(salt ^ a as u64);
                let slot = if head == prev as u64 {
                    &mut back
                } else {
                    &mut best
                };
                if slot.is_none_or(|(bd, bh, _)| d < bd || (d == bd && h < bh)) {
                    *slot = Some((d, h, a));
                }
            }
            false
        });
        best.or(back).map(|(d, _, a)| (a, d))
    }
}

/// Per-packet escape tie-break salt: the packet's trace id (its unique
/// birth-sequence number) mixed with the paid hops spent so far, so two
/// stuck packets — or one packet re-crossing the same plateau after
/// paying another hop — rank equidistant neighbours differently.
#[inline]
fn escape_salt(pkt: &GraphPacket) -> u64 {
    splitmix64((pkt.trace as u64) ^ ((pkt.tries as u64) << 32))
}

/// Whether `node` has no live outgoing arc at all — the `DEAD_END`
/// outcome. Answerable only when some out-arc index exists (the
/// topology's own ranges or the fault CSR); otherwise conservatively
/// `false` (the drop counts as a local minimum).
fn no_live_out<T: RoutingTopology>(faults: Option<&FaultState>, topo: &T, node: u64) -> bool {
    if let Some(range) = topo.out_arc_range(node) {
        match faults {
            Some(f) => range.into_iter().all(|a| f.dead[a]),
            None => range.is_empty(),
        }
    } else if let Some(f) = faults {
        if f.out_start.is_empty() {
            return false;
        }
        let range = f.out_start[node as usize] as usize..f.out_start[node as usize + 1] as usize;
        f.out_arcs[range].iter().all(|&a| f.dead[a as usize])
    } else {
        false
    }
}

/// In-window route-outcome tallies (the `SUCCESS | LOCAL_MINIMUM |
/// DEAD_END` taxonomy; success is the collector's delivered count).
#[derive(Default)]
struct OutcomeTally {
    /// Drops at a node that still had a live out-arc (metric local
    /// minimum, or an exhausted escape TTL).
    local_minimum: u64,
    /// Drops at a node with no live out-arc at all.
    dead_end: u64,
    /// Deliveries that passed through escape mode at least once.
    recovered: u64,
    /// Paid escape hops summed over those recovered deliveries.
    escape_hops: u64,
}

/// In-window stretch tallies over delivered packets.
#[derive(Default)]
struct StretchTally {
    delivered: u64,
    /// Sum of paid deflections (`pkt.tries`) over deliveries.
    deflections: u64,
    /// Deliveries with at least one paid deflection.
    deflected: u64,
    /// Sum of `hops / max(dist0, 1)` over all deliveries.
    stretch_sum: f64,
    /// Same ratio, deflection-free deliveries only.
    clean_sum: f64,
    /// Same ratio, deflected deliveries only.
    deflected_sum: f64,
    /// Sum of `hops - dist0` (signed: long-range links can beat the
    /// lattice metric, so the excess can be negative on a small world).
    excess_sum: i64,
}

/// The blanket per-topology half of the generic engine: routing delegated
/// to `T`'s [`RoutingTopology`] impl, destination law and fault mask as
/// data.
pub struct GraphSpec<T: RoutingTopology> {
    topo: T,
    dest: GraphDestination,
    faults: Option<FaultState>,
    hint: f64,
    /// In-window packet arrivals per arc (feeds the per-direction ring
    /// rates and the [`GraphExt`] rate summary). Saturating counters
    /// sharded by node range: untouched ranges of a ≥10⁷-arc graph
    /// allocate nothing, and a window long enough to overflow one arc
    /// 4 × 10⁹ times saturates harmlessly instead of wrapping.
    arc_arrivals: ShardedArcTally,
    dropped_in_window: u64,
    /// Whether the scenario asked for the stretch extension (tallying is
    /// cheap and always on; this gates emission only).
    stretch_on: bool,
    outcomes: OutcomeTally,
    stretch: StretchTally,
    /// Why the packet `choose_arc` just condemned is being dropped —
    /// consumed by the engine's immediately-following `note_drop`, which
    /// knows the *birth*-window flag the taxonomy is measured over.
    pending_drop: Option<DropKind>,
}

/// Outcome classification of a drop decided in `choose_arc`, handed to
/// `note_drop` (which applies the birth-window gate).
#[derive(Clone, Copy, Debug)]
enum DropKind {
    /// A live out-neighbour existed but none improved the metric (or the
    /// escape TTL ran out trying).
    LocalMinimum,
    /// No live out-arc at all.
    DeadEnd,
}

impl<T: RoutingTopology> GraphSpec<T> {
    /// Build the spec (materialising the fault mask and pre-drawing the
    /// dynamic fault-arrival schedule up to `horizon`, if any).
    /// `stretch` opts the report into the [`StretchExt`] block.
    pub fn new(
        topo: T,
        dest: GraphDestination,
        faults: Option<&FaultSpec>,
        horizon: f64,
        stretch: bool,
    ) -> GraphSpec<T> {
        let faults = faults.map(|f| FaultState::build(&topo, f, horizon));
        GraphSpec {
            hint: topo.mean_distance_hint(),
            arc_arrivals: ShardedArcTally::new(topo.num_arcs()),
            dropped_in_window: 0,
            stretch_on: stretch,
            outcomes: OutcomeTally::default(),
            stretch: StretchTally::default(),
            pending_drop: None,
            topo,
            dest,
            faults,
        }
    }

    /// The routed topology (for per-topology report assembly).
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// In-window packet arrivals per dense arc index (saturating,
    /// node-range sharded).
    pub fn arc_arrivals(&self) -> &ShardedArcTally {
        &self.arc_arrivals
    }

    /// Number of dead arcs in the fault mask (0 without one).
    pub fn dead_arcs(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.dead_count)
    }

    /// Packets born in the measurement window that were dropped.
    pub fn dropped_in_window(&self) -> u64 {
        self.dropped_in_window
    }
}

impl<T: RoutingTopology> EngineSpec for GraphSpec<T> {
    type Pkt = GraphPacket;

    fn num_sources(&self) -> usize {
        self.topo.num_sources()
    }

    fn num_arcs(&self) -> usize {
        self.topo.num_arcs()
    }

    fn arc_meta(&self, arc: usize) -> u32 {
        self.topo.arc_head(arc) as u32
    }

    fn mean_hops_hint(&self) -> f64 {
        self.hint
    }

    fn generate(&mut self, t: f64, source: u32, dest_rng: &mut SimRng) -> Spawn<GraphPacket> {
        let n = self.topo.num_nodes();
        let dest = match &self.dest {
            GraphDestination::Uniform => dest_rng.below(n) as u32,
            GraphDestination::FlipMask { dim, p } => source ^ sample_flip_mask(dest_rng, *dim, *p),
            GraphDestination::NodeCdf(cdf) => {
                let u = dest_rng.uniform01();
                cdf.partition_point(|&c| c <= u) as u32
            }
            GraphDestination::OffsetCdf(cdf) => {
                let u = dest_rng.uniform01();
                let offset = cdf.partition_point(|&c| c <= u) as u64 + 1;
                ((source as u64 + offset) % n as u64) as u32
            }
            GraphDestination::RowFlip { dim, p } => {
                ((*dim as u32) << *dim) | (source ^ sample_flip_mask(dest_rng, *dim, *p))
            }
            GraphDestination::LeafUniform(count) => dest_rng.below(*count) as u32,
        };
        if dest == source {
            Spawn::SelfDeliver
        } else {
            Spawn::Route(GraphPacket {
                born: t,
                dest,
                prev: u32::MAX,
                state: 0,
                dist0: u32::try_from(self.topo.distance(source as u64, dest as u64))
                    .unwrap_or(u32::MAX),
                trace: u32::MAX,
                hops: 0,
                tries: 0,
            })
        }
    }

    fn choose_arc(
        &mut self,
        t: f64,
        in_window: bool,
        node: u32,
        pkt: &mut GraphPacket,
        _route_rng: &mut SimRng,
    ) -> ArcChoice {
        let (node, dest) = (node as u64, pkt.dest as u64);
        let prev = pkt.prev;
        pkt.prev = node as u32;
        let topo = &self.topo;
        if let Some(faults) = self.faults.as_mut() {
            faults.apply_until(t);
        }

        // Escape-mode continuation: keep taking best-neighbour hops until
        // the packet sits strictly closer than where it got stuck, then
        // resume plain greedy.
        if pkt.state & ESCAPE_DEPTH != 0 {
            let d_here = topo.distance(node, dest);
            if (d_here as u64) + 1 < (pkt.state & ESCAPE_DEPTH) as u64 {
                pkt.state &= ESCAPE_STICKY;
            } else {
                let faults = self
                    .faults
                    .as_ref()
                    .expect("escape mode implies a fault spec");
                let FaultFallback::Escape { ttl } = faults.fallback else {
                    unreachable!("escape mode implies the escape fallback");
                };
                return match faults.escape(topo, node, dest, prev, escape_salt(pkt)) {
                    None => {
                        self.pending_drop = Some(DropKind::DeadEnd);
                        ArcChoice::Drop
                    }
                    Some((arc, d_head)) => {
                        if d_head >= d_here {
                            if pkt.tries >= ttl {
                                self.pending_drop = Some(DropKind::LocalMinimum);
                                return ArcChoice::Drop;
                            }
                            pkt.tries += 1;
                        }
                        if in_window {
                            self.arc_arrivals.bump(arc);
                        }
                        ArcChoice::Arc(arc as u32)
                    }
                };
            }
        }

        // The greedy arc — absent at a metric local minimum or dead end
        // (the sparse topologies' relaxed contract; dense topologies
        // always have one away from the destination).
        let greedy = topo.next_arc(node, dest);
        let blocked = match greedy {
            Some(a) => self.faults.as_ref().is_some_and(|f| f.dead[a]),
            None => true,
        };
        if !blocked {
            let arc = greedy.expect("unblocked implies a greedy arc");
            if in_window {
                self.arc_arrivals.bump(arc);
            }
            return ArcChoice::Arc(arc as u32);
        }

        // Greedy unavailable — dead arc or stall. Consult the fallback.
        let recovery: Option<(usize, bool)> = match self.faults.as_mut() {
            None => None,
            Some(faults) => match faults.fallback {
                FaultFallback::Drop => None,
                FaultFallback::Detour => faults.detour(topo, node, dest).map(|a| (a, false)),
                FaultFallback::Retry { budget } => {
                    faults.retry(topo, node, dest, pkt.tries, budget)
                }
                FaultFallback::Multipath => faults.multipath(topo, node, dest, pkt.tries),
                FaultFallback::Escape { ttl } => {
                    let d_here = topo.distance(node, dest);
                    match faults.escape(topo, node, dest, prev, escape_salt(pkt)) {
                        None => None,
                        Some((arc, d_head)) => {
                            let paid = d_head >= d_here;
                            if paid && pkt.tries >= ttl {
                                None
                            } else {
                                pkt.state = ESCAPE_STICKY
                                    | (d_here.min(ESCAPE_DEPTH as usize - 2) as u32 + 1);
                                Some((arc, paid))
                            }
                        }
                    }
                }
            },
        };
        match recovery {
            Some((arc, paid)) => {
                pkt.tries += paid as u16;
                if in_window {
                    self.arc_arrivals.bump(arc);
                }
                ArcChoice::Arc(arc as u32)
            }
            None => {
                // Outcome taxonomy: classify metric stalls (and escape
                // failures); dead-greedy-arc drops under the other
                // fallbacks stay plain fault drops.
                let escape = matches!(
                    self.faults.as_ref().map(|f| f.fallback),
                    Some(FaultFallback::Escape { .. })
                );
                if greedy.is_none() || escape {
                    self.pending_drop = Some(if no_live_out(self.faults.as_ref(), topo, node) {
                        DropKind::DeadEnd
                    } else {
                        DropKind::LocalMinimum
                    });
                }
                ArcChoice::Drop
            }
        }
    }

    fn note_service_end(&mut self, _t: f64, _meta: u32) {}

    fn advance(&mut self, meta: u32, pkt: &mut GraphPacket) -> Advance {
        pkt.hops += 1;
        if meta == pkt.dest {
            Advance::Deliver(pkt.hops)
        } else {
            Advance::Forward(meta)
        }
    }

    fn note_deliver(&mut self, pkt: &GraphPacket, in_window: bool) {
        if !in_window {
            return;
        }
        if pkt.state & ESCAPE_STICKY != 0 {
            self.outcomes.recovered += 1;
            self.outcomes.escape_hops += pkt.tries as u64;
        }
        let s = &mut self.stretch;
        s.delivered += 1;
        s.deflections += pkt.tries as u64;
        let ratio = pkt.hops as f64 / pkt.dist0.max(1) as f64;
        s.stretch_sum += ratio;
        if pkt.tries > 0 {
            s.deflected += 1;
            s.deflected_sum += ratio;
        } else {
            s.clean_sum += ratio;
        }
        s.excess_sum += pkt.hops as i64 - pkt.dist0 as i64;
    }

    fn note_drop(&mut self, _pkt: &GraphPacket, in_window: bool) {
        let kind = self.pending_drop.take();
        if in_window {
            self.dropped_in_window += 1;
            match kind {
                Some(DropKind::LocalMinimum) => self.outcomes.local_minimum += 1,
                Some(DropKind::DeadEnd) => self.outcomes.dead_end += 1,
                // Plain fault drop under a non-escape fallback.
                None => {}
            }
        }
    }

    #[inline]
    fn in_escape(&self, pkt: &GraphPacket) -> bool {
        // Queried right after `choose_arc`, so the depth word reflects the
        // hop just chosen (set on fallback entry, cleared on recovery).
        pkt.state & ESCAPE_DEPTH != 0
    }
}

/// Drop-taxonomy wire codes ([`ShardSpec::take_drop_code`] →
/// [`ShardableSpec::replay_drop`]).
const DROP_PLAIN: u8 = 0;
const DROP_LOCAL_MINIMUM: u8 = 1;
const DROP_DEAD_END: u8 = 2;

impl<T: RoutingTopology> ShardSpec for GraphSpec<T> {
    fn take_drop_code(&mut self) -> u8 {
        match self.pending_drop.take() {
            None => DROP_PLAIN,
            Some(DropKind::LocalMinimum) => DROP_LOCAL_MINIMUM,
            Some(DropKind::DeadEnd) => DROP_DEAD_END,
        }
    }
}

impl<T> ShardableSpec for GraphSpec<T>
where
    T: RoutingTopology + Clone + Send + Sync,
{
    type Shard = GraphSpec<T>;

    fn shard(&self) -> GraphSpec<T> {
        GraphSpec {
            topo: self.topo.clone(),
            dest: self.dest.clone(),
            faults: self.faults.clone(),
            hint: self.hint,
            arc_arrivals: ShardedArcTally::new(self.topo.num_arcs()),
            dropped_in_window: 0,
            stretch_on: self.stretch_on,
            outcomes: OutcomeTally::default(),
            stretch: StretchTally::default(),
            pending_drop: None,
        }
    }

    fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    fn arc_tail(&self, arc: usize) -> u32 {
        self.topo.arc_tail(arc) as u32
    }

    fn replay_drop(&mut self, pkt: &GraphPacket, in_window: bool, code: u8) {
        self.pending_drop = match code {
            DROP_LOCAL_MINIMUM => Some(DropKind::LocalMinimum),
            DROP_DEAD_END => Some(DropKind::DeadEnd),
            _ => None,
        };
        self.note_drop(pkt, in_window);
    }

    fn absorb(&mut self, shard: &GraphSpec<T>) {
        // Per-arc arrival counts are the one shard-side tally; the
        // outcome/stretch/drop accounting accrues on the primary spec
        // through `note_deliver`/`replay_drop` during record replay.
        self.arc_arrivals.absorb(&shard.arc_arrivals);
    }

    fn finish(&mut self, t_last: f64) {
        // Catch the primary mask up to the last routing decision so the
        // reported `dead_arcs` matches the single-threaded run (whose
        // mask advanced inside every `choose_arc`).
        if let Some(faults) = self.faults.as_mut() {
            faults.apply_until(t_last);
        }
    }
}

impl<T: RoutingTopology> GraphSpec<T> {
    /// Move the topology behind an [`std::sync::Arc`] so shard workers
    /// can share one copy ([`ShardableSpec::shard`] clones the handle,
    /// not the graph). The single-threaded path never pays the
    /// indirection — the conversion happens only on the `workers > 1`
    /// branch.
    fn into_shared(self) -> GraphSpec<std::sync::Arc<T>> {
        GraphSpec {
            topo: std::sync::Arc::new(self.topo),
            dest: self.dest,
            faults: self.faults,
            hint: self.hint,
            arc_arrivals: self.arc_arrivals,
            dropped_in_window: self.dropped_in_window,
            stretch_on: self.stretch_on,
            outcomes: self.outcomes,
            stretch: self.stretch,
            pending_drop: self.pending_drop,
        }
    }
}

impl<T: RoutingTopology> GraphSpec<std::sync::Arc<T>> {
    /// Reclaim the topology after a sharded run (every worker has
    /// dropped its handle by the time the drive returns).
    fn into_owned(self) -> GraphSpec<T> {
        let Ok(topo) = std::sync::Arc::try_unwrap(self.topo) else {
            unreachable!("shard workers outlived the drive");
        };
        GraphSpec {
            topo,
            dest: self.dest,
            faults: self.faults,
            hint: self.hint,
            arc_arrivals: self.arc_arrivals,
            dropped_in_window: self.dropped_in_window,
            stretch_on: self.stretch_on,
            outcomes: self.outcomes,
            stretch: self.stretch,
            pending_drop: self.pending_drop,
        }
    }
}

/// How a [`GraphSim`] renders its per-topology report extension.
pub type ExtBuilder<T> = fn(&GraphSpec<T>, &EngineCfg, &MetricsCollector) -> ReportExt;

/// The blanket graph simulator: a [`GraphSpec`] driven by the generic
/// [`Engine`], plus a per-topology extension builder (the **only**
/// topology-specific code left). Construct through
/// [`crate::scenario::Scenario`].
pub struct GraphSim<T: RoutingTopology> {
    engine: Engine<GraphSpec<T>>,
    ext: ExtBuilder<T>,
    workers: usize,
}

impl<T: RoutingTopology> GraphSim<T> {
    /// Build the simulator from a scenario's run parameters.
    ///
    /// [`crate::scenario::Scenario::into_simulator`] is the validated
    /// front door; this constructor stays public for harnesses that need
    /// to measure combinations validation deliberately refuses (E27 uses
    /// it for the butterfly's counterfactual drop baseline).
    pub fn from_parts(
        topo: T,
        dest: GraphDestination,
        s: &Scenario,
        ext: ExtBuilder<T>,
    ) -> GraphSim<T> {
        let spec = GraphSpec::new(
            topo,
            dest,
            s.workload.faults.as_ref(),
            s.run.horizon,
            s.workload.stretch.unwrap_or(false),
        );
        let cfg = EngineCfg {
            lambda: s.workload.lambda,
            arrivals: s.workload.arrivals,
            contention: s.policy.contention,
            scheduler: s.run.scheduler,
            horizon: s.run.horizon,
            warmup: s.run.warmup,
            seed: s.run.seed,
            drain: s.run.drain,
        };
        GraphSim {
            engine: Engine::new(spec, cfg),
            ext,
            workers: s.run.intra_workers(),
        }
    }

    /// Run to completion and summarise.
    pub fn run(self) -> Report
    where
        T: Send + Sync,
    {
        self.run_observed(&mut NullObserver)
    }

    /// Run to completion under a streaming [`Observer`] and summarise
    /// (bit-identical to an unobserved run).
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> Report
    where
        T: Send + Sync,
    {
        if self.workers > 1 {
            let (spec, cfg) = self.engine.into_spec_cfg();
            let mut par = ParallelEngine::new(spec.into_shared(), cfg, self.workers);
            par.drive(obs);
            let (spec, cfg, collector, events) = par.into_parts();
            return Self::assemble(&spec.into_owned(), &cfg, &collector, events, self.ext);
        }
        self.engine.drive(obs);
        let engine = &self.engine;
        Self::assemble(
            engine.spec(),
            engine.cfg(),
            engine.collector(),
            engine.events_processed(),
            self.ext,
        )
    }

    fn assemble(
        spec: &GraphSpec<T>,
        cfg: &EngineCfg,
        collector: &MetricsCollector,
        events: u64,
        ext: ExtBuilder<T>,
    ) -> Report {
        Report {
            delay: collector.delay_stats(),
            mean_in_system: collector.mean_in_system(cfg.horizon),
            peak_in_system: collector.peak_in_system(),
            throughput: collector.throughput(cfg.horizon),
            little_error: collector.little_check(cfg.horizon).relative_error(),
            generated: collector.generated(),
            delivered: collector.delivered_total(),
            events,
            ext: ext(spec, cfg, collector),
            telemetry: None,
        }
    }
}

/// Shared [`GraphExt`] assembly; `emit_outcomes` controls whether the
/// route-outcome taxonomy block is attached (always for sparse
/// topologies, only under the escape fallback for dense ones — keeping
/// the pre-existing dense baselines byte-identical).
fn assemble<T: RoutingTopology>(
    spec: &GraphSpec<T>,
    cfg: &EngineCfg,
    collector: &MetricsCollector,
    emit_outcomes: bool,
) -> GraphExt {
    let span = cfg.horizon - cfg.warmup;
    let arcs = spec.topology().num_arcs() as u64;
    let live = arcs - spec.dead_arcs();
    let total: u64 = spec.arc_arrivals().total();
    let max = spec.arc_arrivals().max();
    let delivered_measured = collector.delay_stats().count;
    let dropped_measured = spec.dropped_in_window();
    let measured = delivered_measured + dropped_measured;
    let outcomes = emit_outcomes.then(|| {
        let o = &spec.outcomes;
        OutcomeExt {
            success: delivered_measured,
            local_minimum: o.local_minimum,
            dead_end: o.dead_end,
            recovered: o.recovered,
            mean_escape_hops: o.escape_hops as f64 / o.recovered as f64,
        }
    });
    let stretch = spec.stretch_on.then(|| {
        let s = &spec.stretch;
        StretchExt {
            mean_stretch: s.stretch_sum / s.delivered as f64,
            mean_deflections: s.deflections as f64 / s.delivered as f64,
            deflected_fraction: s.deflected as f64 / s.delivered as f64,
            clean_stretch: s.clean_sum / (s.delivered - s.deflected) as f64,
            deflected_stretch: s.deflected_sum / s.deflected as f64,
            mean_excess_hops: s.excess_sum as f64 / s.delivered as f64,
        }
    });
    GraphExt {
        nodes: spec.topology().num_nodes() as u64,
        arcs,
        dead_arcs: spec.dead_arcs(),
        mean_hops: collector.mean_hops(),
        zero_hop_fraction: collector.zero_hop_fraction(),
        mean_arc_rate: if live == 0 {
            0.0
        } else {
            total as f64 / (span * live as f64)
        },
        max_arc_rate: max as f64 / span,
        dropped: collector.dropped_total(),
        dropped_in_window: dropped_measured,
        delivery_fraction: if measured == 0 {
            f64::NAN
        } else {
            delivered_measured as f64 / measured as f64
        },
        outcomes,
        stretch,
    }
}

/// The generic [`GraphExt`] extension builder — what every dense
/// topology gets unless it installs a specialised one (the plain ring
/// keeps its byte-compatible `RingExt`). Outcome taxonomy appears only
/// when the escape fallback is configured.
pub fn graph_ext<T: RoutingTopology>(
    spec: &GraphSpec<T>,
    cfg: &EngineCfg,
    collector: &MetricsCollector,
) -> ReportExt {
    let emit = spec
        .faults
        .as_ref()
        .is_some_and(|f| matches!(f.fallback, FaultFallback::Escape { .. }));
    ReportExt::Graph(assemble(spec, cfg, collector, emit))
}

/// The sparse-topology extension builder: identical to [`graph_ext`]
/// but always emits the `SUCCESS | LOCAL_MINIMUM | DEAD_END` outcome
/// taxonomy — metric greedy can stall even without faults.
pub fn sparse_ext<T: RoutingTopology>(
    spec: &GraphSpec<T>,
    cfg: &EngineCfg,
    collector: &MetricsCollector,
) -> ReportExt {
    ReportExt::Graph(assemble(spec, cfg, collector, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ContentionPolicy, DestinationSpec};
    use crate::scenario::{Scenario, Topology};

    fn torus_scenario(radix: usize, dim: usize, lambda: f64) -> Scenario {
        Scenario::builder(Topology::Torus { radix, dim })
            .lambda(lambda)
            .horizon(2_000.0)
            .warmup(400.0)
            .seed(21)
            .build()
            .expect("valid scenario")
    }

    fn graph(r: &Report) -> &GraphExt {
        r.graph().expect("graph extension")
    }

    #[test]
    fn torus_delivers_everything_with_theoretical_hops() {
        // 4-ary 2-cube: E[hops] = 2·⌊16/4⌋/4 = 2.0, zero-hop mass 1/16.
        let r = torus_scenario(4, 2, 0.5).run().unwrap();
        assert_eq!(r.generated, r.delivered);
        assert!(r.generated > 10_000);
        let g = graph(&r);
        assert!((g.mean_hops - 2.0).abs() < 0.05, "hops {}", g.mean_hops);
        assert!(
            (g.zero_hop_fraction - 1.0 / 16.0).abs() < 0.01,
            "zero-hop {}",
            g.zero_hop_fraction
        );
        assert_eq!(g.dead_arcs, 0);
        assert_eq!(g.dropped, 0);
        assert!((g.delivery_fraction - 1.0).abs() < 1e-12);
        assert!(r.little_error < 0.05, "little {}", r.little_error);
    }

    #[test]
    fn debruijn_delivers_with_near_diameter_hops() {
        let r = Scenario::builder(Topology::DeBruijn { dim: 5 })
            .lambda(0.2)
            .horizon(2_000.0)
            .warmup(400.0)
            .seed(3)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.generated, r.delivered);
        let g = graph(&r);
        // Mean distance sits between n-2 and n for the shift graph.
        assert!(
            g.mean_hops > 3.0 && g.mean_hops < 5.0,
            "hops {}",
            g.mean_hops
        );
        assert_eq!(g.nodes, 32);
        assert_eq!(g.arcs, 62);
    }

    #[test]
    fn torus_one_dim_matches_bidirectional_ring() {
        // A k-ary 1-cube IS the bidirectional ring; same seed, same λ —
        // the uniform destination draw and the greedy step coincide, so
        // the common report fields agree exactly.
        let t = torus_scenario(16, 1, 0.2).run().unwrap();
        let r = Scenario::builder(Topology::Ring {
            nodes: 16,
            bidirectional: true,
        })
        .lambda(0.2)
        .horizon(2_000.0)
        .warmup(400.0)
        .seed(21)
        .build()
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(t.delay, r.delay);
        assert_eq!(t.generated, r.generated);
        assert_eq!(t.events, r.events);
    }

    #[test]
    fn seeded_faults_split_delivered_and_dropped() {
        let mut s = torus_scenario(4, 2, 0.4);
        s.workload.faults = Some(FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 0.25,
                seed: 99,
            },
            fallback: FaultFallback::Drop,
            dynamics: None,
        });
        let r = s.run().unwrap();
        let g = graph(&r);
        assert_eq!(g.dead_arcs, 16); // 0.25 · 64
        assert!(g.dropped > 0, "a quarter of arcs dead but nothing dropped");
        assert_eq!(r.generated, r.delivered + g.dropped, "conservation");
        assert!(g.delivery_fraction < 1.0 && g.delivery_fraction > 0.0);
    }

    #[test]
    fn detour_fallback_delivers_more_than_drop() {
        let faulty = |fallback| {
            let mut s = torus_scenario(5, 2, 0.3);
            s.workload.faults = Some(FaultSpec {
                mode: FaultMode::Seeded {
                    fraction: 0.15,
                    seed: 4,
                },
                fallback,
                dynamics: None,
            });
            s.run().unwrap()
        };
        let dropped = faulty(FaultFallback::Drop);
        let detoured = faulty(FaultFallback::Detour);
        let (gd, gt) = (graph(&dropped), graph(&detoured));
        assert!(
            gt.delivery_fraction > gd.delivery_fraction,
            "detour {} vs drop {}",
            gt.delivery_fraction,
            gd.delivery_fraction
        );
        assert_eq!(dropped.generated, dropped.delivered + gd.dropped);
        assert_eq!(detoured.generated, detoured.delivered + gt.dropped);
    }

    #[test]
    fn explicit_fault_on_unidirectional_ring_drops_all_crossing_traffic() {
        // Killing one arc of a clockwise-only ring partitions every route
        // that crosses it; with Drop fallback those packets must all drop
        // (there is no alternative arc, so Detour behaves identically).
        for fallback in [FaultFallback::Drop, FaultFallback::Detour] {
            let mut s = Scenario::builder(Topology::Ring {
                nodes: 8,
                bidirectional: false,
            })
            .lambda(0.1)
            .horizon(1_000.0)
            .warmup(100.0)
            .seed(11)
            .build()
            .unwrap();
            s.workload.faults = Some(FaultSpec {
                mode: FaultMode::Explicit { arcs: vec![3] },
                fallback,
                dynamics: None,
            });
            let r = s.run().unwrap();
            let g = graph(&r);
            assert_eq!(g.dead_arcs, 1);
            assert!(g.dropped > 0);
            assert_eq!(r.generated, r.delivered + g.dropped);
            // Uniform destinations: arc 3 carries 7/16 of routes... just
            // bound it loosely.
            let frac = g.dropped as f64 / r.generated as f64;
            assert!(frac > 0.2 && frac < 0.6, "drop fraction {frac}");
        }
    }

    #[test]
    fn node_pmf_point_mass_sends_everything_to_one_node() {
        let mut pmf = vec![0.0; 25];
        pmf[7] = 1.0;
        let s = Scenario::builder(Topology::Torus { radix: 5, dim: 2 })
            .lambda(0.1)
            .dest(DestinationSpec::node_pmf(pmf).unwrap())
            .horizon(1_000.0)
            .warmup(200.0)
            .seed(5)
            .build()
            .unwrap();
        let r = s.run().unwrap();
        assert_eq!(r.generated, r.delivered);
        let g = graph(&r);
        // 1/25 of packets originate at node 7 and self-deliver.
        assert!((g.zero_hop_fraction - 0.04).abs() < 0.01);
        // Hot-spot demand concentrates on the destination's in-arcs.
        assert!(g.max_arc_rate > 3.0 * g.mean_arc_rate);
    }

    #[test]
    fn ring_power_law_skews_toward_short_hops() {
        let run_alpha = |alpha: f64| {
            let s = Scenario::builder(Topology::Ring {
                nodes: 64,
                bidirectional: true,
            })
            .lambda(0.05)
            .dest(DestinationSpec::RingPowerLaw { alpha })
            .horizon(2_000.0)
            .warmup(400.0)
            .seed(6)
            .build()
            .unwrap();
            s.run().unwrap()
        };
        let skewed = run_alpha(1.5);
        let flat = run_alpha(0.0);
        let (gs, gf) = (graph(&skewed), graph(&flat));
        // Power-law demand prefers nearby destinations → shorter greedy
        // paths; alpha = 0 is uniform over the 63 non-self offsets.
        assert!(
            gs.mean_hops < 0.5 * gf.mean_hops,
            "skewed {} vs flat {}",
            gs.mean_hops,
            gf.mean_hops
        );
        assert_eq!(gs.zero_hop_fraction, 0.0, "power law never self-delivers");
        assert!((gf.mean_hops - 64.0 / 4.0 * 64.0 / 63.0).abs() < 0.3);
        assert_eq!(skewed.generated, skewed.delivered);
    }

    #[test]
    fn faults_compose_with_contention_policies_and_slotted_arrivals() {
        for contention in [
            ContentionPolicy::Fifo,
            ContentionPolicy::Lifo,
            ContentionPolicy::Random,
        ] {
            let mut s = torus_scenario(4, 2, 0.4);
            s.policy.contention = contention;
            s.workload.arrivals = crate::config::ArrivalModel::Slotted { slots_per_unit: 2 };
            s.workload.faults = Some(FaultSpec {
                mode: FaultMode::Seeded {
                    fraction: 0.2,
                    seed: 13,
                },
                fallback: FaultFallback::Detour,
                dynamics: None,
            });
            let r = s.run().unwrap();
            let g = graph(&r);
            assert_eq!(
                r.generated,
                r.delivered + g.dropped,
                "conservation under {contention}"
            );
        }
    }

    // --- The ring on the blanket spec (ports of the retired
    // `ring_sim.rs` suite; the corpus gate already proves byte-identical
    // baselines, these keep the physics honest) ---

    fn ring_scenario(nodes: usize, bidirectional: bool, lambda: f64) -> Scenario {
        Scenario::builder(Topology::Ring {
            nodes,
            bidirectional,
        })
        .lambda(lambda)
        .horizon(3_000.0)
        .warmup(500.0)
        .seed(41)
        .build()
        .expect("valid scenario")
    }

    fn ring(r: &Report) -> &crate::scenario::RingExt {
        r.ring().expect("ring extension")
    }

    #[test]
    fn ring_everything_delivered_and_mean_hops_match() {
        // 16-node bidirectional ring: mean greedy path = 4.0 hops,
        // zero-hop fraction 1/16.
        let r = ring_scenario(16, true, 0.2).run().unwrap();
        assert_eq!(r.generated, r.delivered);
        assert!(r.generated > 5_000);
        assert!(
            (ring(&r).mean_hops - 4.0).abs() < 0.1,
            "hops {}",
            ring(&r).mean_hops
        );
        assert!((ring(&r).zero_hop_fraction - 1.0 / 16.0).abs() < 0.01);
    }

    #[test]
    fn unidirectional_ring_never_uses_ccw_arcs() {
        let r = ring_scenario(12, false, 0.1).run().unwrap();
        assert_eq!(ring(&r).counter_clockwise_arc_rate, 0.0);
        // Per-arc clockwise rate = λ · (n-1)/2 = 0.55.
        assert!((ring(&r).clockwise_arc_rate - 0.55).abs() < 0.05);
        assert_eq!(r.generated, r.delivered);
    }

    #[test]
    fn bidirectional_ring_splits_load_between_directions() {
        let r = ring_scenario(16, true, 0.2).run().unwrap();
        let (cw, ccw) = (
            ring(&r).clockwise_arc_rate,
            ring(&r).counter_clockwise_arc_rate,
        );
        // Clockwise carries slightly more (antipode ties go clockwise).
        assert!(cw > ccw, "cw {cw} vs ccw {ccw}");
        assert!(ccw > 0.0);
        assert!((cw + ccw - 0.2 * 4.0).abs() < 0.06);
    }

    #[test]
    fn ring_delay_grows_near_capacity() {
        // Unidirectional n=9: capacity λ(n-1)/2 < 1 ⇒ λ < 0.25.
        let light = ring_scenario(9, false, 0.05).run().unwrap();
        let heavy = ring_scenario(9, false, 0.22).run().unwrap();
        assert!(ring(&heavy).rho > ring(&light).rho);
        assert!(ring(&heavy).rho < 1.0);
        assert!(heavy.delay.mean > light.delay.mean);
        assert_eq!(heavy.generated, heavy.delivered);
    }

    #[test]
    fn ring_little_law_and_determinism() {
        let a = ring_scenario(16, true, 0.3).run().unwrap();
        assert!(a.little_error < 0.05, "little {}", a.little_error);
        let b = ring_scenario(16, true, 0.3).run().unwrap();
        assert_eq!(a.delay.mean, b.delay.mean);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn fault_pattern_is_a_function_of_the_fault_seed_not_the_run_seed() {
        let run = |run_seed: u64, fault_seed: u64| {
            let mut s = torus_scenario(4, 2, 0.3);
            s.run.seed = run_seed;
            s.workload.faults = Some(FaultSpec {
                mode: FaultMode::Seeded {
                    fraction: 0.25,
                    seed: fault_seed,
                },
                fallback: FaultFallback::Drop,
                dynamics: None,
            });
            s.run().unwrap()
        };
        let a = run(1, 7);
        let b = run(1, 7);
        assert_eq!(a, b, "same seeds, same report");
        let c = run(2, 7);
        assert_ne!(a.delay.mean, c.delay.mean, "run seed changes traffic");
        let d = run(1, 8);
        assert_ne!(
            a.delivered, d.delivered,
            "fault seed changes the dead-arc pattern"
        );
    }

    #[test]
    fn graph_packet_keeps_its_four_word_layout() {
        // born (8) + dest/prev/state/dist0/trace (4 each) + hops/tries
        // (2 each) — four words flat, no padding; growing the packet
        // inflates every arc queue in the engine.
        assert_eq!(std::mem::size_of::<GraphPacket>(), 32);
    }

    fn faulty_torus(fallback: FaultFallback, fraction: f64) -> Report {
        let mut s = torus_scenario(5, 2, 0.3);
        s.workload.faults = Some(FaultSpec {
            mode: FaultMode::Seeded { fraction, seed: 4 },
            fallback,
            dynamics: None,
        });
        s.run().unwrap()
    }

    #[test]
    fn retry_outdelivers_detour_which_outdelivers_drop() {
        // At 30% dead arcs the strict-progress detour often has no live
        // option left; retry's paid deflections route around the hole.
        let dropped = faulty_torus(FaultFallback::Drop, 0.3);
        let detoured = faulty_torus(FaultFallback::Detour, 0.3);
        let retried = faulty_torus(FaultFallback::Retry { budget: 8 }, 0.3);
        let (gd, gt, gr) = (graph(&dropped), graph(&detoured), graph(&retried));
        assert!(
            gr.delivery_fraction > gt.delivery_fraction,
            "retry {} vs detour {}",
            gr.delivery_fraction,
            gt.delivery_fraction
        );
        assert!(gt.delivery_fraction > gd.delivery_fraction);
        for r in [&dropped, &detoured, &retried] {
            assert_eq!(r.generated, r.delivered + graph(r).dropped, "conservation");
        }
    }

    #[test]
    fn multipath_outdelivers_drop_and_conserves() {
        let dropped = faulty_torus(FaultFallback::Drop, 0.25);
        let multi = faulty_torus(FaultFallback::Multipath, 0.25);
        let (gd, gm) = (graph(&dropped), graph(&multi));
        assert!(
            gm.delivery_fraction > gd.delivery_fraction,
            "multipath {} vs drop {}",
            gm.delivery_fraction,
            gd.delivery_fraction
        );
        assert_eq!(multi.generated, multi.delivered + gm.dropped);
        // Reruns are bit-identical (no RNG involved in the fallback).
        let again = faulty_torus(FaultFallback::Multipath, 0.25);
        assert_eq!(multi, again);
    }

    #[test]
    fn dynamic_faults_grow_the_dead_set_mid_run() {
        let run = |rate: f64| {
            let mut s = torus_scenario(4, 2, 0.4);
            s.workload.faults = Some(FaultSpec {
                mode: FaultMode::Explicit { arcs: vec![] },
                fallback: FaultFallback::Detour,
                dynamics: Some(FaultArrivals { rate, seed: 31 }),
            });
            s.run().unwrap()
        };
        let calm = run(0.0);
        // Rate 0 disables the process: identical to a static empty mask.
        assert_eq!(graph(&calm).dead_arcs, 0);
        assert_eq!(graph(&calm).dropped, 0);
        let stormy = run(0.02);
        let g = graph(&stormy);
        assert!(g.dead_arcs > 0, "no arcs died over a 2000-unit horizon");
        assert!(g.dead_arcs < 64, "every arc died");
        assert_eq!(stormy.generated, stormy.delivered + g.dropped);
        // Same arrival seed, same run: bit-identical.
        assert_eq!(stormy, run(0.02));
    }

    #[test]
    fn dynamic_fault_pattern_follows_its_own_seed() {
        let run = |seed: u64| {
            let mut s = torus_scenario(4, 2, 0.4);
            s.workload.faults = Some(FaultSpec {
                mode: FaultMode::Explicit { arcs: vec![] },
                fallback: FaultFallback::Drop,
                dynamics: Some(FaultArrivals { rate: 0.05, seed }),
            });
            s.run().unwrap()
        };
        let a = run(5);
        let b = run(6);
        assert_ne!(
            a.delivered, b.delivered,
            "arrival seed changes the death schedule"
        );
    }

    #[test]
    fn escape_outdelivers_drop_and_classifies_every_measured_drop() {
        let dropped = faulty_torus(FaultFallback::Drop, 0.3);
        let escaped = faulty_torus(FaultFallback::Escape { ttl: 8 }, 0.3);
        let (gd, ge) = (graph(&dropped), graph(&escaped));
        assert!(
            ge.delivery_fraction > gd.delivery_fraction,
            "escape {} vs drop {}",
            ge.delivery_fraction,
            gd.delivery_fraction
        );
        assert_eq!(
            escaped.generated,
            escaped.delivered + ge.dropped,
            "conservation"
        );
        // Outcome taxonomy appears only under the escape fallback, so
        // every pre-existing dense baseline stays byte-identical.
        assert!(gd.outcomes.is_none(), "drop runs must not grow a taxonomy");
        let o = ge.outcomes.as_ref().expect("escape reports outcomes");
        assert!(o.success > 0);
        assert!(o.recovered > 0, "30% dead arcs but nothing ever escaped");
        assert!(o.mean_escape_hops > 0.0);
        // Every measured drop is classified, exhaustively.
        assert_eq!(o.local_minimum + o.dead_end, ge.dropped_in_window);
        // Bit-identical reruns: the fallback uses no RNG.
        assert_eq!(escaped, faulty_torus(FaultFallback::Escape { ttl: 8 }, 0.3));
    }

    #[test]
    fn escape_ttl_bounds_the_paid_walk() {
        // TTL 1 allows a single paid hop per minimum: strictly fewer
        // deliveries than a generous TTL, strictly more than plain drop.
        let tight = faulty_torus(FaultFallback::Escape { ttl: 1 }, 0.3);
        let loose = faulty_torus(FaultFallback::Escape { ttl: 12 }, 0.3);
        let dropped = faulty_torus(FaultFallback::Drop, 0.3);
        assert!(graph(&loose).delivery_fraction >= graph(&tight).delivery_fraction);
        assert!(graph(&tight).delivery_fraction > graph(&dropped).delivery_fraction);
        for r in [&tight, &loose] {
            assert_eq!(r.generated, r.delivered + graph(r).dropped, "conservation");
        }
    }

    #[test]
    fn stretch_accounting_is_opt_in_and_exact_on_the_clean_path() {
        // Fault-free torus: greedy hops equal the initial distance, so
        // every delivery is clean with stretch exactly 1.
        let mut s = torus_scenario(4, 2, 0.4);
        s.workload.stretch = Some(true);
        let r = s.run().unwrap();
        let st = graph(&r).stretch.as_ref().expect("stretch was requested");
        assert_eq!(st.mean_deflections, 0.0);
        assert_eq!(st.deflected_fraction, 0.0);
        assert!(
            (st.mean_stretch - 1.0).abs() < 1e-12,
            "stretch {}",
            st.mean_stretch
        );
        assert!((st.clean_stretch - 1.0).abs() < 1e-12);
        assert!(st.deflected_stretch.is_nan(), "nothing deflected");
        assert_eq!(st.mean_excess_hops, 0.0);
        // Off by default: the plain run reports no stretch block.
        let plain = torus_scenario(4, 2, 0.4).run().unwrap();
        assert!(graph(&plain).stretch.is_none());
    }

    #[test]
    fn faulted_butterfly_multipath_stretch_counts_deflections() {
        // Satellite regression: the multipath-recovered butterfly pays
        // extra passes, and the stretch block must expose them — clean
        // deliveries ride the unique greedy path (stretch exactly 1),
        // deflected ones exceed it.
        let s = Scenario::builder(Topology::Butterfly { dim: 4 })
            .lambda(0.3)
            .p(0.5)
            .horizon(2_000.0)
            .warmup(400.0)
            .seed(17)
            .faults(Some(FaultSpec {
                mode: FaultMode::Seeded {
                    fraction: 0.08,
                    seed: 23,
                },
                fallback: FaultFallback::Multipath,
                dynamics: None,
            }))
            .stretch(true)
            .build()
            .unwrap();
        let r = s.run().unwrap();
        let g = graph(&r);
        let st = g.stretch.as_ref().expect("stretch was requested");
        assert!(st.mean_deflections > 0.0, "8% dead arcs but no deflections");
        assert!(st.deflected_fraction > 0.0 && st.deflected_fraction < 1.0);
        assert!(
            (st.clean_stretch - 1.0).abs() < 1e-12,
            "unique paths are tight"
        );
        assert!(
            st.deflected_stretch > 1.0,
            "back-routed passes must stretch: {}",
            st.deflected_stretch
        );
        assert!(st.mean_stretch > 1.0 && st.mean_stretch < st.deflected_stretch);
        assert!(st.mean_excess_hops > 0.0);
        // Bit-identical reruns, stretch block included.
        assert_eq!(r, s.run().unwrap());
    }
}
