//! The topology-generic simulation core: **one** event loop for every
//! packet-level topology.
//!
//! Before this module existed, the hypercube, butterfly, equivalent-network
//! and pipelined simulators each hand-rolled the same
//! arrival/route/contend/complete machinery (~600 LoC per fork). The
//! per-topology logic — destination sampling, next-arc choice, per-arc
//! bookkeeping, report extensions — is actually a thin skin over a common
//! engine, captured here as the [`EngineSpec`] trait. A topology is now a
//! ~100-line spec — or **zero** lines via the blanket
//! `graph_sim::GraphSpec<T: RoutingTopology>`; everything
//! else — slab packet pool, calendar/heap scheduler, contention policies,
//! warm-up truncation, drain control, metrics, observers — lives here
//! **once**, monomorphised per topology by [`Engine::drive`].
//!
//! # Byte-compatibility with the per-topology loops it replaced
//!
//! The engine replays the retired hand-rolled loops draw for draw: the
//! RNG stream layout (root split order `arrival, dest, route, contention`),
//! the event push order, and every metrics call match exactly, so reports
//! are byte-identical to the pre-refactor engines — the `scenarios/`
//! corpus gate and the differential suites prove it.
//!
//! # Hot-path structure (the PR-1 follow-ups, landed once for all engines)
//!
//! * **Self-scheduling arrival stream out of the event queue.** Arrivals
//!   (and slotted-time slot boundaries) form a self-scheduling chain: each
//!   firing knows the next firing time. Keeping that chain in a one-slot
//!   side channel (`Engine::next_stream`) instead of the scheduler saves
//!   one push + pop per generated packet — the queue holds only service
//!   completions. Merging preserves the old (time, insertion-seq) order:
//!   the queue wins ties, which is exactly where the in-queue arrival
//!   chain's seq numbers put it (completions at a slot instant were always
//!   scheduled before the boundary event that shares their timestamp).
//! * **Next-event prefetch.** After popping a completion the engine peeks
//!   the scheduler's next payload ([`hyperroute_desim::Scheduler::peek_payload`]),
//!   so the next iteration's scheduler state is prepared while the current
//!   event's (data-dependent, cache-hostile) arc state is being updated.
//!   On the calendar backend the useful work is pre-paying the next
//!   *bucket load* (sort + drain-buffer fill) — measured ≈ +5% events/sec
//!   at d = 8, ρ = 0.8. Forcing a read of the payload *bytes* measured
//!   strictly slower: ever since the in-service packet moved inside the
//!   completion event (PR 3), the payload is hot by construction, so only
//!   the reference is taken.

use crate::config::{ArrivalModel, ContentionPolicy};
use crate::metrics::MetricsCollector;
use crate::observe::Observer;
use crate::pool::{ArcBag, ArcFifo, SlabPool};
use crate::profile::{Phase, PhaseTimers, Tick};
use hyperroute_desim::{Scheduler, SchedulerKind, SimRng};

/// Busy flag of a packed per-arc routing word: set while a packet occupies
/// the arc's server (its payload rides in the pending completion event).
/// Specs own bits `0..31` of their [`EngineSpec::arc_meta`] word and must
/// leave this bit clear.
pub const ARC_BUSY: u32 = 1 << 31;

/// What [`EngineSpec::generate`] produced for a newly born packet.
pub enum Spawn<P> {
    /// Destination equals the origin: delivered instantly with zero hops.
    SelfDeliver,
    /// A packet that must be routed, starting at its origin.
    Route(P),
}

/// What happens to a packet after it crosses an arc.
pub enum Advance {
    /// The packet continues from this node (the arc's head).
    Forward(u32),
    /// The packet is at its destination; record a delivery with this hop
    /// count.
    Deliver(u16),
}

/// What [`EngineSpec::choose_arc`] decided for a packet at a node.
///
/// Fault-free specs always return [`ArcChoice::Arc`]; the `Drop` variant
/// exists for faulty-network workloads (Angel et al.'s arc-failure
/// masks), where a packet whose greedy arc is dead and whose fallback
/// finds no live alternative leaves the network undelivered. The engine
/// counts the drop in its [`MetricsCollector`] (keeping the
/// number-in-system trajectory and conservation exact) and notifies the
/// spec through [`EngineSpec::note_drop`].
pub enum ArcChoice {
    /// Enqueue the packet on this arc.
    Arc(u32),
    /// The packet cannot proceed: count it dropped.
    Drop,
}

/// Trace-id sentinel: an [`EnginePacket`] whose representation has no
/// room for a trace id reports this from [`EnginePacket::trace_id`], and
/// telemetry consumers skip hop records carrying it. Real ids are the
/// engine's birth-sequence numbers, which never reach `u32::MAX` in
/// practice (that is ~4·10⁹ packets in one run).
pub const NO_TRACE: u32 = u32::MAX;

/// An in-flight packet the generic engine can carry: `Copy` (it lives in
/// slab slots and scheduler entries) and stamped with its birth time.
pub trait EnginePacket: Copy {
    /// Generation time (drives warm-up truncation of delivery stats).
    fn born(&self) -> f64;

    /// Store the engine-assigned trace id (birth-sequence number) in the
    /// packet. Defaults to discarding it — specs whose packet layout has
    /// spare padding override this (and [`EnginePacket::trace_id`]) to
    /// make the packet traceable by hop-level observers.
    #[inline]
    fn set_trace_id(&mut self, _id: u32) {}

    /// The stored trace id, or [`NO_TRACE`] when the packet is anonymous.
    #[inline]
    fn trace_id(&self) -> u32 {
        NO_TRACE
    }

    /// Non-greedy arc crossings this packet has paid so far (fallback
    /// detours, escape-walk hops). Purely observational; defaults to 0
    /// for specs without deflection state.
    #[inline]
    fn deflections(&self) -> u16 {
        0
    }
}

/// The per-topology half of a packet-level simulation.
///
/// Implementations hold the topology handle, its destination samplers and
/// its per-topology statistics; the [`Engine`] owns everything else. All
/// methods are hot-path — keep them branch-light and allocation-free.
pub trait EngineSpec {
    /// The in-flight packet representation.
    type Pkt: EnginePacket;

    /// Number of packet sources (hypercube nodes, butterfly rows, ring
    /// nodes); arrivals pick one uniformly.
    fn num_sources(&self) -> usize;

    /// Number of directed arcs (dense indices `0..num_arcs()`).
    fn num_arcs(&self) -> usize;

    /// Precomputed routing word of `arc` (target node, dimension/level
    /// bits — whatever [`EngineSpec::advance`] needs), in bits `0..31`.
    /// Bit 31 ([`ARC_BUSY`]) must be clear; the engine owns it.
    fn arc_meta(&self, arc: usize) -> u32;

    /// Expected hops per packet — sizes the scheduler's events-per-unit
    /// hint (correctness never depends on it).
    fn mean_hops_hint(&self) -> f64;

    /// Sample a new packet at `source` born at `t`, drawing from
    /// `dest_rng` exactly as the topology's destination law dictates.
    fn generate(&mut self, t: f64, source: u32, dest_rng: &mut SimRng) -> Spawn<Self::Pkt>;

    /// The arc `pkt` takes out of `node` (mutating `pkt`'s routing state),
    /// plus any per-arc arrival bookkeeping (`in_window` is
    /// `warmup <= t < horizon`). `route_rng` is the dedicated stream for
    /// randomised schemes. Specs with fault masks may return
    /// [`ArcChoice::Drop`] when no usable arc exists.
    fn choose_arc(
        &mut self,
        t: f64,
        in_window: bool,
        node: u32,
        pkt: &mut Self::Pkt,
        route_rng: &mut SimRng,
    ) -> ArcChoice;

    /// A service completed at `t` on the arc with routing word `meta`
    /// (busy bit cleared) — occupancy-style bookkeeping hook.
    fn note_service_end(&mut self, t: f64, meta: u32);

    /// Advance `pkt` across the arc with routing word `meta`: bump its
    /// hop/leg state and decide where it goes next.
    fn advance(&mut self, meta: u32, pkt: &mut Self::Pkt) -> Advance;

    /// A packet is delivered (`in_window` refers to its *birth* time) —
    /// per-topology delivery statistics hook.
    fn note_deliver(&mut self, pkt: &Self::Pkt, in_window: bool);

    /// A packet was dropped after [`EngineSpec::choose_arc`] returned
    /// [`ArcChoice::Drop`] (`in_window` refers to its *birth* time).
    /// Only fault-aware specs ever see this; the default is a no-op.
    fn note_drop(&mut self, _pkt: &Self::Pkt, _in_window: bool) {}

    /// Whether `pkt` is currently walking an escape fallback (queried
    /// right after [`EngineSpec::choose_arc`], so it reflects the hop
    /// just chosen). Drives [`Observer::on_escape_hop`]; specs without
    /// an escape mode keep the default `false`.
    #[inline]
    fn in_escape(&self, _pkt: &Self::Pkt) -> bool {
        false
    }
}

/// Execution parameters of one engine run — the topology-independent
/// subset of a `Scenario`.
#[derive(Clone, Copy, Debug)]
pub struct EngineCfg {
    /// Per-source Poisson generation rate `λ`.
    pub lambda: f64,
    /// Continuous (Poisson) or slotted-batch arrivals (§3.4).
    pub arrivals: ArrivalModel,
    /// Which waiting packet an arc serves next.
    pub contention: ContentionPolicy,
    /// Future-event-list backend (bit-identical results either way).
    pub scheduler: SchedulerKind,
    /// Generation stops at this time.
    pub horizon: f64,
    /// Packets born before this time are not measured.
    pub warmup: f64,
    /// RNG seed; every run is a deterministic function of it.
    pub seed: u64,
    /// Serve out all in-flight packets after the horizon (disable for
    /// instability probes).
    pub drain: bool,
}

/// Per-arc state, exactly 16 bytes: the intrusive waiter list plus the
/// arc's packed routing word (spec bits 0..31, [`ARC_BUSY`] bit 31). Arcs
/// are visited in data-dependent random order, so this is the engine's
/// locality-critical structure — four arcs share a cache line, and the
/// in-service packet rides inside the pending completion event (hot by
/// construction when popped) instead of here.
#[derive(Clone, Copy, Debug)]
struct ArcState {
    waiting: ArcFifo,
    meta: u32,
}

/// The topology-generic event-driven engine. Construct with
/// [`Engine::new`], run with [`Engine::drive`], then read the spec and
/// collector back out to build a report.
pub struct Engine<T: EngineSpec> {
    spec: T,
    cfg: EngineCfg,
    /// One slab for every waiting packet in the network; arcs hold only
    /// intrusive `(head, tail)` lists into it.
    pool: SlabPool<T::Pkt>,
    arcs: Vec<ArcState>,
    /// Indexed waiting storage, allocated (and used) only under
    /// [`ContentionPolicy::Random`] — a uniform pick from an intrusive
    /// list would walk `O(queue)` links.
    bags: Vec<ArcBag<T::Pkt>>,
    /// Service completions only: the arrival stream lives in
    /// `next_stream`, not here.
    events: Scheduler<(u32, T::Pkt)>,
    events_processed: u64,
    /// Next firing of the self-scheduling arrival stream (merged Poisson
    /// arrival or slot boundary), or `None` once generation has ceased.
    next_stream: Option<f64>,
    /// Batched Poisson arrival draws: `(next_time, source)` pairs
    /// pre-drawn in exact stream order (the alternating `exp`/`below`
    /// recurrence), consumed through `arrival_cursor`. Batching is
    /// draw-for-draw invisible — `arrival_rng` feeds nothing else under
    /// the Poisson model, so the eager tail draws past the horizon that
    /// the unbatched path would never make are unobservable — and takes
    /// the refill arithmetic off the per-event path.
    arrival_buf: Vec<(f64, u32)>,
    arrival_cursor: usize,
    arrival_rng: SimRng,
    dest_rng: SimRng,
    route_rng: SimRng,
    contention_rng: SimRng,
    collector: MetricsCollector,
    /// Hot-loop phase timers; a zero-sized no-op unless the crate is
    /// built with `--features profile`.
    timers: PhaseTimers,
}

impl<T: EngineSpec> Engine<T> {
    /// Build an engine around `spec` (allocates the per-arc state).
    pub fn new(spec: T, cfg: EngineCfg) -> Engine<T> {
        let sources = spec.num_sources() as f64;
        let mut root = SimRng::new(cfg.seed);
        let mut arrival_rng = root.split();
        let dest_rng = root.split();
        let route_rng = root.split();
        let contention_rng = root.split();
        // Batch size for the delay CI: aim for ~30 batches over the window.
        let expected = (cfg.lambda * sources * (cfg.horizon - cfg.warmup)).max(64.0);
        let collector = MetricsCollector::new(
            cfg.warmup,
            cfg.horizon,
            (expected / 32.0).ceil() as u64,
            cfg.seed,
        );
        // Calendar sizing hint: arrivals plus one completion per hop.
        let events_per_unit = cfg.lambda * sources * (1.0 + spec.mean_hops_hint());
        let events = Scheduler::new(cfg.scheduler, events_per_unit);
        let next_stream = match cfg.arrivals {
            // First merged arrival (rate λ·sources); deliberately not
            // horizon-checked, mirroring the first in-queue arrival of the
            // retired loops (a near-idle source still fires once).
            ArrivalModel::Poisson => {
                let total_rate = cfg.lambda * sources;
                (total_rate > 0.0).then(|| arrival_rng.exp(total_rate))
            }
            ArrivalModel::Slotted { .. } => Some(0.0),
        };
        let arcs = spec.num_arcs();
        Engine {
            bags: if cfg.contention == ContentionPolicy::Random {
                vec![ArcBag::new(); arcs]
            } else {
                Vec::new()
            },
            pool: SlabPool::with_capacity(1024),
            arcs: (0..arcs)
                .map(|arc| ArcState {
                    waiting: ArcFifo::new(),
                    meta: {
                        let meta = spec.arc_meta(arc);
                        debug_assert_eq!(meta & ARC_BUSY, 0, "spec meta uses the busy bit");
                        meta
                    },
                })
                .collect(),
            spec,
            cfg,
            events,
            events_processed: 0,
            next_stream,
            arrival_buf: Vec::new(),
            arrival_cursor: 0,
            arrival_rng,
            dest_rng,
            route_rng,
            contention_rng,
            collector,
            timers: PhaseTimers::new(),
        }
    }

    /// Drive the simulation to completion under `obs`.
    ///
    /// Monomorphised per `(T, O)`: with
    /// [`NullObserver`](crate::observe::NullObserver) the observer calls
    /// compile away entirely.
    pub fn drive<O: Observer>(&mut self, obs: &mut O) {
        loop {
            // Merge the self-scheduling arrival stream with the completion
            // queue in one scheduler call per iteration. The queue wins
            // ties (`pop_at_or_before` is inclusive) — see the module
            // docs for why this reproduces the retired in-queue arrival
            // order.
            let tick = Tick::start();
            let popped = match self.next_stream {
                Some(stream_t) => self.events.pop_at_or_before(stream_t),
                None => self.events.pop(),
            };
            self.timers.record(Phase::SchedPop, tick);
            let t = match popped {
                Some((t, (arc, pkt))) => {
                    // Software prefetch (PR-1 follow-up): peek the next
                    // event so the scheduler prepares it (calendar: the
                    // next bucket's sort + drain-buffer fill) while this
                    // event's cache-hostile arc update proceeds. See the
                    // module docs for the measurement; the payload bytes
                    // are deliberately not read.
                    if let Some(next) = self.events.peek_payload() {
                        std::hint::black_box(next);
                    }
                    let tick = Tick::start();
                    obs.on_event(t, self.collector.current_in_system());
                    self.timers.record(Phase::Observer, tick);
                    self.events_processed += 1;
                    self.on_complete(t, arc as usize, pkt, obs);
                    t
                }
                None => match self.next_stream {
                    Some(t) => {
                        let tick = Tick::start();
                        obs.on_event(t, self.collector.current_in_system());
                        self.timers.record(Phase::Observer, tick);
                        self.events_processed += 1;
                        match self.cfg.arrivals {
                            ArrivalModel::Poisson => self.on_merged_arrival(t, obs),
                            ArrivalModel::Slotted { .. } => self.on_slot_boundary(t, obs),
                        }
                        t
                    }
                    None => break,
                },
            };
            if !self.cfg.drain && t >= self.cfg.horizon {
                break;
            }
        }
        self.timers.flush();
    }

    /// Poisson arrivals drawn per refill batch (the per-event-class RNG
    /// buffer): one entry is `(t_{k+1}, source_k)` — the recurrence the
    /// unbatched path computed per event, in the same `exp`-then-`below`
    /// draw order, so the consumed stream is bit-identical.
    const ARRIVAL_BATCH: usize = 64;

    #[cold]
    fn refill_arrivals(&mut self, mut t: f64) {
        let total_rate = self.cfg.lambda * self.spec.num_sources() as f64;
        let sources = self.spec.num_sources();
        self.arrival_buf.clear();
        self.arrival_cursor = 0;
        for _ in 0..Self::ARRIVAL_BATCH {
            let next = t + self.arrival_rng.exp(total_rate);
            let source = self.arrival_rng.below(sources) as u32;
            self.arrival_buf.push((next, source));
            t = next;
        }
    }

    fn on_merged_arrival<O: Observer>(&mut self, t: f64, obs: &mut O) {
        // Schedule the next merged arrival first (keeps the stream's draws
        // independent of per-packet sampling).
        if self.arrival_cursor == self.arrival_buf.len() {
            self.refill_arrivals(t);
        }
        let (next, source) = self.arrival_buf[self.arrival_cursor];
        self.arrival_cursor += 1;
        self.next_stream = (next < self.cfg.horizon).then_some(next);
        self.generate(t, source, obs);
    }

    fn on_slot_boundary<O: Observer>(&mut self, t: f64, obs: &mut O) {
        let ArrivalModel::Slotted { slots_per_unit } = self.cfg.arrivals else {
            unreachable!("slot boundary outside slotted model");
        };
        let r = 1.0 / slots_per_unit as f64;
        // Total batch over all sources is Poisson(λ·sources·r), placed
        // uniformly (superposition is exact).
        let mean = self.cfg.lambda * self.spec.num_sources() as f64 * r;
        let batch = self.arrival_rng.poisson(mean);
        for _ in 0..batch {
            let source = self.arrival_rng.below(self.spec.num_sources()) as u32;
            self.generate(t, source, obs);
        }
        let next = t + r;
        self.next_stream = (next < self.cfg.horizon).then_some(next);
    }

    fn generate<O: Observer>(&mut self, t: f64, source: u32, obs: &mut O) {
        // Birth-sequence id: the collector's generated() count *before*
        // this packet is recorded. Deterministic, and costs no RNG draw,
        // so traced and untraced runs stay byte-identical.
        let id = self.collector.generated();
        let tick = Tick::start();
        self.collector.on_generated(t);
        self.timers.record(Phase::Metrics, tick);
        match self.spec.generate(t, source, &mut self.dest_rng) {
            Spawn::SelfDeliver => {
                obs.on_generated(t, id, source);
                self.collector.on_delivered(t, t, 0);
                obs.on_delivered(t, t);
                obs.on_packet_delivered(t, id, t, 0, 0);
            }
            Spawn::Route(mut pkt) => {
                pkt.set_trace_id(id as u32);
                // Read the id back so anonymous packet layouts (no
                // storage) report NO_TRACE here too, matching every
                // later hook for the same packet.
                obs.on_generated(t, pkt.trace_id() as u64, source);
                self.enqueue(t, source, pkt, obs);
            }
        }
    }

    /// Put `pkt` into the queue of the arc the spec chooses out of `node`;
    /// start service if the arc is idle. A spec returning
    /// [`ArcChoice::Drop`] (fault masks with no live fallback) removes the
    /// packet from the system instead: the collector's drop counter and
    /// number-in-system trajectory stay exact, so conservation
    /// (`generated == delivered + dropped`) holds at drain.
    fn enqueue<O: Observer>(&mut self, t: f64, node: u32, mut pkt: T::Pkt, obs: &mut O) {
        let in_window = t >= self.cfg.warmup && t < self.cfg.horizon;
        let tick = Tick::start();
        let choice = self
            .spec
            .choose_arc(t, in_window, node, &mut pkt, &mut self.route_rng);
        self.timers.record(Phase::ArcChoice, tick);
        let arc = match choice {
            ArcChoice::Arc(arc) => arc as usize,
            ArcChoice::Drop => {
                let born = pkt.born();
                let born_in_window = born >= self.cfg.warmup && born < self.cfg.horizon;
                self.spec.note_drop(&pkt, born_in_window);
                self.collector.on_dropped(t);
                obs.on_drop(t, pkt.trace_id() as u64, node);
                return;
            }
        };
        let id = pkt.trace_id() as u64;
        let escape = self.spec.in_escape(&pkt);
        let queue_depth = if self.arcs[arc].meta & ARC_BUSY == 0 {
            self.arcs[arc].meta |= ARC_BUSY;
            self.events.push(t + 1.0, (arc as u32, pkt));
            1
        } else if self.cfg.contention == ContentionPolicy::Random {
            self.bags[arc].insert(pkt);
            1 + self.bags[arc].len() as u32
        } else {
            self.arcs[arc].waiting.push_back(&mut self.pool, pkt);
            1 + self.arcs[arc].waiting.len() as u32
        };
        obs.on_hop(t, id, node, arc as u32, queue_depth);
        if escape {
            obs.on_escape_hop(t, id, node);
        }
    }

    /// Pick the next waiting packet per the contention policy and start
    /// its service. FIFO pops the head of the intrusive list, LIFO the
    /// tail (both `O(1)`). Random draws a uniform position from the arc's
    /// [`ArcBag`] — indexed storage where removal is a `swap_remove`, so
    /// the pick is `O(1)` however long the queue grows.
    fn start_next_service(&mut self, t: f64, arc: usize) {
        debug_assert!(self.arcs[arc].meta & ARC_BUSY != 0);
        let pkt = match self.cfg.contention {
            ContentionPolicy::Fifo => self.arcs[arc].waiting.pop_front(&mut self.pool),
            ContentionPolicy::Lifo => self.arcs[arc].waiting.pop_back(&mut self.pool),
            ContentionPolicy::Random => {
                let len = self.bags[arc].len();
                if len == 0 {
                    None
                } else {
                    let n = self.contention_rng.below(len);
                    self.bags[arc].take(n)
                }
            }
        };
        match pkt {
            Some(pkt) => self.events.push(t + 1.0, (arc as u32, pkt)),
            None => self.arcs[arc].meta &= !ARC_BUSY,
        }
    }

    /// Packets still occupying `arc` (waiting plus any one in service).
    #[inline]
    fn arc_depth(&self, arc: usize) -> u32 {
        let busy = (self.arcs[arc].meta & ARC_BUSY != 0) as u32;
        let waiting = if self.cfg.contention == ContentionPolicy::Random {
            self.bags[arc].len()
        } else {
            self.arcs[arc].waiting.len()
        } as u32;
        busy + waiting
    }

    fn on_complete<O: Observer>(&mut self, t: f64, arc: usize, mut pkt: T::Pkt, obs: &mut O) {
        let meta = self.arcs[arc].meta;
        debug_assert!(meta & ARC_BUSY != 0, "completion on an idle arc");
        let meta = meta & !ARC_BUSY;
        self.spec.note_service_end(t, meta);
        self.start_next_service(t, arc);
        obs.on_service_end(t, arc as u32, self.arc_depth(arc));
        match self.spec.advance(meta, &mut pkt) {
            Advance::Forward(node) => self.enqueue(t, node, pkt, obs),
            Advance::Deliver(hops) => {
                let born = pkt.born();
                let in_window = born >= self.cfg.warmup && born < self.cfg.horizon;
                self.spec.note_deliver(&pkt, in_window);
                let tick = Tick::start();
                self.collector.on_delivered(t, born, hops);
                self.timers.record(Phase::Metrics, tick);
                obs.on_delivered(t, born);
                obs.on_packet_delivered(t, pkt.trace_id() as u64, born, hops, pkt.deflections());
            }
        }
    }

    /// The spec, for report assembly after [`Engine::drive`].
    pub fn spec(&self) -> &T {
        &self.spec
    }

    /// The run parameters.
    pub fn cfg(&self) -> &EngineCfg {
        &self.cfg
    }

    /// The shared metrics collector.
    pub fn collector(&self) -> &MetricsCollector {
        &self.collector
    }

    /// Discrete events processed: arrival-stream firings (merged arrivals
    /// or slot boundaries) plus service completions — the same count the
    /// retired per-topology loops reported.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Take the spec and run parameters back out of a **not-yet-driven**
    /// engine — the hand-off point to the sharded executor
    /// ([`crate::parallel::ParallelEngine`]), which rebuilds the RNGs and
    /// collector from `cfg.seed` exactly as [`Engine::new`] did.
    pub fn into_spec_cfg(self) -> (T, EngineCfg) {
        (self.spec, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_state_is_16_bytes() {
        // Four arcs per cache line keeps the data-dependent arc walk
        // L1-resident at d = 8 (1024 arcs × 16 B = 16 KiB).
        assert_eq!(std::mem::size_of::<ArcState>(), 16);
    }
}
