//! Event-driven packet-level simulation of the butterfly under greedy
//! routing (paper §4).
//!
//! Packets are generated at level-0 nodes by independent Poisson sources
//! (merged network-wide, as in the hypercube simulator) and must reach a
//! random level-`d` node chosen by bit-flips with probability `p`. The
//! path is unique, so greedy routing is the only non-idling choice; FIFO
//! resolves contention.

// The config struct defined here is the deprecated legacy entry point;
// this module necessarily keeps using it internally.
#![allow(deprecated)]

use crate::config::{ArrivalModel, ConfigError};
use crate::metrics::{DelayStats, MetricsCollector};
use crate::observe::{NullObserver, Observer, TimeSeriesProbe};
use crate::packet::sample_flip_mask;
use crate::pool::{ArcFifo, SlabPool};
use hyperroute_desim::{Scheduler, SchedulerKind, SimRng, Tally};
use hyperroute_topology::{ArcKind, Butterfly, ButterflyArc, NodeId};
use serde::{Deserialize, Serialize};

/// Configuration of a butterfly routing simulation.
///
/// Deprecated legacy entry point: build a
/// [`crate::scenario::Scenario`] with
/// [`crate::scenario::Topology::Butterfly`] instead; the scenario path
/// produces byte-identical reports. This struct remains as a thin shim
/// for one release.
#[deprecated(
    since = "0.2.0",
    note = "build a `scenario::Scenario` with `Topology::Butterfly` instead"
)]
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ButterflySimConfig {
    /// Butterfly dimension `d` (levels `0..=d`, `2^d` rows).
    pub dim: usize,
    /// Per-row Poisson generation rate `λ` at level 0.
    pub lambda: f64,
    /// Bit-flip probability `p` of the destination distribution.
    pub p: f64,
    /// Continuous (Poisson) or slotted-batch arrivals — §4.3's closing
    /// remark: "the case of slotted time can be treated as in §3.4".
    pub arrivals: ArrivalModel,
    /// Generation stops at this time.
    pub horizon: f64,
    /// Packets born before this time are not measured.
    pub warmup: f64,
    /// RNG seed.
    pub seed: u64,
    /// Deliver all in-flight packets after the horizon.
    pub drain: bool,
    /// Future-event-list backend (both are bit-identical; the calendar
    /// queue is the fast default on this unit-service model).
    pub scheduler: SchedulerKind,
}

impl Default for ButterflySimConfig {
    fn default() -> Self {
        ButterflySimConfig {
            dim: 4,
            lambda: 0.8,
            p: 0.5,
            arrivals: ArrivalModel::Poisson,
            horizon: 1_000.0,
            warmup: 200.0,
            seed: 0xBF,
            drain: true,
            scheduler: SchedulerKind::default(),
        }
    }
}

impl ButterflySimConfig {
    /// Butterfly load factor `ρ_bf = λ·max{p, 1-p}` (Eq. (17)).
    pub fn load_factor(&self) -> f64 {
        self.lambda * self.p.max(1.0 - self.p)
    }

    /// Structured validation of this configuration — every check the
    /// constructor enforces, as a [`ConfigError`] instead of a panic.
    ///
    /// Release-mode validation happens here once, not per event in the
    /// scheduler (see `HypercubeSimConfig::check`).
    pub fn check(&self) -> Result<(), ConfigError> {
        crate::config::check_sim_fields(
            self.dim,
            24,
            self.lambda,
            self.p,
            self.horizon,
            self.warmup,
            self.arrivals,
            None,
        )
    }

    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Results of a butterfly simulation run.
///
/// `PartialEq` is bit-exact, for the scheduler-equivalence tests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ButterflyReport {
    /// Echo of the dimension.
    pub dim: usize,
    /// Echo of λ.
    pub lambda: f64,
    /// Echo of p.
    pub p: f64,
    /// Load factor `λ·max{p, 1-p}`.
    pub rho: f64,
    /// Per-packet delay statistics (all delays ≥ d, the path length).
    pub delay: DelayStats,
    /// Mean vertical arcs per packet (≈ dp).
    pub mean_vertical_hops: f64,
    /// Time-averaged packets in the network over the measurement window.
    pub mean_in_system: f64,
    /// Peak packets in the network.
    pub peak_in_system: f64,
    /// Delivered packets per unit time in the measurement window.
    pub throughput: f64,
    /// Relative Little's-law discrepancy.
    pub little_error: f64,
    /// Measured per-arc arrival rate of straight arcs, per level
    /// (Prop. 15 predicts `λ(1-p)` everywhere).
    pub straight_rate_per_level: Vec<f64>,
    /// Measured per-arc arrival rate of vertical arcs, per level
    /// (Prop. 15 predicts `λp` everywhere).
    pub vertical_rate_per_level: Vec<f64>,
    /// Total packets generated.
    pub generated: u64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Discrete events processed (arrivals + slot boundaries + service
    /// completions).
    pub events: u64,
}

#[derive(Clone, Copy, Debug)]
struct BfPacket {
    born: f64,
    dest: u32,
    verticals: u16,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrival,
    SlotBoundary,
    Complete(u32),
}

/// Per-arc state: the waiting list (whose head is the packet in service
/// when `busy`), the busy flag, and the arc's precomputed geometry — one
/// cache line per completion, and no integer division by the runtime
/// dimension (`ButterflyArc::from_index` costs two) on the hot path.
#[derive(Clone, Copy, Debug, Default)]
struct ArcState {
    queue: ArcFifo,
    /// Row at the arc's head node (`to_row` of the topology arc).
    to_row: u32,
    /// Level the arc leaves from.
    level: u8,
    vertical: bool,
    busy: bool,
}

/// The butterfly simulator.
pub struct ButterflySim {
    cfg: ButterflySimConfig,
    bf: Butterfly,
    /// One slab for every queued packet; arcs hold intrusive lists (the
    /// head of a busy arc's list is the packet in service).
    pool: SlabPool<BfPacket>,
    arcs: Vec<ArcState>,
    events: Scheduler<Ev>,
    events_processed: u64,
    arrival_rng: SimRng,
    dest_rng: SimRng,
    collector: MetricsCollector,
    straight_arrivals: Vec<u64>,
    vertical_arrivals: Vec<u64>,
    vertical_stats: Tally,
}

impl ButterflySim {
    /// Build a simulator.
    pub fn new(cfg: ButterflySimConfig) -> ButterflySim {
        cfg.validate();
        let bf = Butterfly::new(cfg.dim);
        let arcs = bf.num_arcs();
        let mut root = SimRng::new(cfg.seed);
        let mut arrival_rng = root.split();
        let dest_rng = root.split();
        let expected = (cfg.lambda * bf.num_rows() as f64 * (cfg.horizon - cfg.warmup)).max(64.0);
        let collector = MetricsCollector::new(
            cfg.warmup,
            cfg.horizon,
            (expected / 32.0).ceil() as u64,
            cfg.seed,
        );
        // Rate hint: one arrival plus d completions per packet per unit.
        let events_per_unit = cfg.lambda * bf.num_rows() as f64 * (1.0 + cfg.dim as f64);
        let mut events = Scheduler::new(cfg.scheduler, events_per_unit);
        let total_rate = cfg.lambda * bf.num_rows() as f64;
        match cfg.arrivals {
            ArrivalModel::Poisson => {
                if total_rate > 0.0 {
                    events.push(arrival_rng.exp(total_rate), Ev::Arrival);
                }
            }
            ArrivalModel::Slotted { .. } => {
                events.push(0.0, Ev::SlotBoundary);
            }
        }
        ButterflySim {
            cfg,
            bf,
            pool: SlabPool::with_capacity(1024),
            arcs: (0..arcs)
                .map(|idx| {
                    let arc = ButterflyArc::from_index(idx, cfg.dim);
                    ArcState {
                        queue: ArcFifo::new(),
                        to_row: arc.to_row().0 as u32,
                        level: arc.level as u8,
                        vertical: arc.kind == ArcKind::Vertical,
                        busy: false,
                    }
                })
                .collect(),
            events,
            events_processed: 0,
            arrival_rng,
            dest_rng,
            collector,
            straight_arrivals: vec![0; cfg.dim],
            vertical_arrivals: vec![0; cfg.dim],
            vertical_stats: Tally::new(),
        }
    }

    /// Run to completion and summarise.
    pub fn run(self) -> ButterflyReport {
        self.run_observed(&mut NullObserver)
    }

    /// Run to completion under a streaming [`Observer`] and summarise.
    ///
    /// The observer never changes the simulation — reports are
    /// bit-identical to an unobserved [`ButterflySim::run`].
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> ButterflyReport {
        self.drive(obs);
        self.report()
    }

    /// Run and sample the number-in-system every `interval`.
    #[deprecated(
        since = "0.2.0",
        note = "run with an `observe::TimeSeriesProbe` via `run_observed` instead"
    )]
    pub fn run_sampled(self, interval: f64) -> (ButterflyReport, Vec<(f64, f64)>) {
        let mut probe = TimeSeriesProbe::new(interval, self.cfg.horizon);
        let report = self.run_observed(&mut probe);
        (report, probe.into_samples())
    }

    fn drive<O: Observer>(&mut self, obs: &mut O) {
        while let Some((t, ev)) = self.events.pop() {
            obs.on_event(t, self.collector.current_in_system());
            self.events_processed += 1;
            match ev {
                Ev::Arrival => self.on_arrival(t),
                Ev::SlotBoundary => self.on_slot_boundary(t),
                Ev::Complete(arc) => self.on_complete(t, arc as usize, obs),
            }
            if !self.cfg.drain && t >= self.cfg.horizon {
                break;
            }
        }
    }

    fn on_arrival(&mut self, t: f64) {
        let total_rate = self.cfg.lambda * self.bf.num_rows() as f64;
        let next = t + self.arrival_rng.exp(total_rate);
        if next < self.cfg.horizon {
            self.events.push(next, Ev::Arrival);
        }
        let row = self.arrival_rng.below(self.bf.num_rows()) as u32;
        self.inject(t, row);
    }

    fn on_slot_boundary(&mut self, t: f64) {
        let ArrivalModel::Slotted { slots_per_unit } = self.cfg.arrivals else {
            unreachable!("slot boundary event outside slotted model");
        };
        let r = 1.0 / slots_per_unit as f64;
        let mean = self.cfg.lambda * self.bf.num_rows() as f64 * r;
        let batch = self.arrival_rng.poisson(mean);
        for _ in 0..batch {
            let row = self.arrival_rng.below(self.bf.num_rows()) as u32;
            self.inject(t, row);
        }
        let next = t + r;
        if next < self.cfg.horizon {
            self.events.push(next, Ev::SlotBoundary);
        }
    }

    fn inject(&mut self, t: f64, row: u32) {
        let mask = sample_flip_mask(&mut self.dest_rng, self.cfg.dim, self.cfg.p);
        self.collector.on_generated(t);
        let pkt = BfPacket {
            born: t,
            dest: row ^ mask,
            verticals: 0,
        };
        self.enqueue(t, row, 0, pkt);
    }

    /// Queue `pkt` at the unique next arc out of `[row; level]`.
    fn enqueue(&mut self, t: f64, row: u32, level: usize, pkt: BfPacket) {
        debug_assert!(level < self.cfg.dim);
        let kind = if (row >> level) & 1 == (pkt.dest >> level) & 1 {
            ArcKind::Straight
        } else {
            ArcKind::Vertical
        };
        let arc = ButterflyArc {
            row: NodeId(row as u64),
            level,
            kind,
        }
        .index(self.cfg.dim);
        if t >= self.cfg.warmup && t < self.cfg.horizon {
            match kind {
                ArcKind::Straight => self.straight_arrivals[level] += 1,
                ArcKind::Vertical => self.vertical_arrivals[level] += 1,
            }
        }
        self.arcs[arc].queue.push_back(&mut self.pool, pkt);
        if !self.arcs[arc].busy {
            self.arcs[arc].busy = true;
            self.events.push(t + 1.0, Ev::Complete(arc as u32));
        }
    }

    fn on_complete<O: Observer>(&mut self, t: f64, arc_idx: usize, obs: &mut O) {
        let mut pkt = self.arcs[arc_idx]
            .queue
            .pop_front(&mut self.pool)
            .expect("completion on empty queue");
        if self.arcs[arc_idx].queue.is_empty() {
            self.arcs[arc_idx].busy = false;
        } else {
            self.events.push(t + 1.0, Ev::Complete(arc_idx as u32));
        }
        let state = self.arcs[arc_idx];
        if state.vertical {
            pkt.verticals += 1;
        }
        let row = state.to_row;
        let level = state.level as usize + 1;
        if level == self.cfg.dim {
            if pkt.born >= self.cfg.warmup && pkt.born < self.cfg.horizon {
                self.vertical_stats.push(pkt.verticals as f64);
            }
            self.collector
                .on_delivered(t, pkt.born, self.cfg.dim as u16);
            obs.on_delivered(t, pkt.born);
        } else {
            self.enqueue(t, row, level, pkt);
        }
    }

    fn report(&self) -> ButterflyReport {
        let cfg = &self.cfg;
        let span = cfg.horizon - cfg.warmup;
        let arcs_per_level = self.bf.num_rows() as f64;
        let straight: Vec<f64> = self
            .straight_arrivals
            .iter()
            .map(|&c| c as f64 / (span * arcs_per_level))
            .collect();
        let vertical: Vec<f64> = self
            .vertical_arrivals
            .iter()
            .map(|&c| c as f64 / (span * arcs_per_level))
            .collect();
        let little = self.collector.little_check(cfg.horizon);
        ButterflyReport {
            dim: cfg.dim,
            lambda: cfg.lambda,
            p: cfg.p,
            rho: cfg.load_factor(),
            delay: self.collector.delay_stats(),
            mean_vertical_hops: self.vertical_stats.mean(),
            mean_in_system: self.collector.mean_in_system(cfg.horizon),
            peak_in_system: self.collector.peak_in_system(),
            throughput: self.collector.throughput(cfg.horizon),
            little_error: little.relative_error(),
            straight_rate_per_level: straight,
            vertical_rate_per_level: vertical,
            generated: self.collector.generated(),
            delivered: self.collector.delivered_total(),
            events: self.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperroute_analysis::butterfly_bounds;

    fn base_cfg() -> ButterflySimConfig {
        ButterflySimConfig {
            dim: 4,
            lambda: 1.2,
            p: 0.5, // ρ_bf = 0.6
            horizon: 3_000.0,
            warmup: 500.0,
            seed: 21,
            ..Default::default()
        }
    }

    #[test]
    fn all_delivered_and_delay_at_least_d() {
        let r = ButterflySim::new(base_cfg()).run();
        assert_eq!(r.generated, r.delivered);
        assert!(r.delay.p50 >= 4.0);
        assert!(r.delay.mean >= 4.0);
    }

    #[test]
    fn delay_within_paper_bracket() {
        let cfg = base_cfg();
        let r = ButterflySim::new(cfg).run();
        let lb = butterfly_bounds::universal_lower_bound(cfg.dim, cfg.lambda, cfg.p);
        let ub = butterfly_bounds::greedy_upper_bound(cfg.dim, cfg.lambda, cfg.p);
        assert!(
            r.delay.mean >= lb * 0.97 && r.delay.mean <= ub * 1.03,
            "measured {} outside [{lb}, {ub}]",
            r.delay.mean
        );
    }

    #[test]
    fn proposition_15_arc_rates() {
        let cfg = base_cfg();
        let r = ButterflySim::new(cfg).run();
        for lvl in 0..cfg.dim {
            assert!(
                (r.straight_rate_per_level[lvl] - 0.6).abs() < 0.035,
                "straight level {lvl}: {}",
                r.straight_rate_per_level[lvl]
            );
            assert!(
                (r.vertical_rate_per_level[lvl] - 0.6).abs() < 0.035,
                "vertical level {lvl}: {}",
                r.vertical_rate_per_level[lvl]
            );
        }
    }

    #[test]
    fn asymmetric_p_rates() {
        let mut cfg = base_cfg();
        cfg.p = 0.25;
        cfg.lambda = 1.0;
        let r = ButterflySim::new(cfg).run();
        // Straight ≈ 0.75, vertical ≈ 0.25 at every level.
        for lvl in 0..cfg.dim {
            assert!((r.straight_rate_per_level[lvl] - 0.75).abs() < 0.035);
            assert!((r.vertical_rate_per_level[lvl] - 0.25).abs() < 0.035);
        }
        // Mean vertical hops ≈ dp = 1.
        assert!((r.mean_vertical_hops - 1.0).abs() < 0.05);
    }

    #[test]
    fn little_and_determinism() {
        let a = ButterflySim::new(base_cfg()).run();
        assert!(a.little_error < 0.05, "little {}", a.little_error);
        let b = ButterflySim::new(base_cfg()).run();
        assert_eq!(a.delay.mean, b.delay.mean);
    }

    #[test]
    #[should_panic(expected = "slot per unit")]
    fn rejects_zero_slots_per_unit() {
        let cfg = ButterflySimConfig {
            arrivals: ArrivalModel::Slotted { slots_per_unit: 0 },
            ..base_cfg()
        };
        ButterflySim::new(cfg);
    }

    #[test]
    fn zero_load_edge() {
        let mut cfg = base_cfg();
        cfg.lambda = 0.0;
        let r = ButterflySim::new(cfg).run();
        assert_eq!(r.generated, 0);
    }

    #[test]
    fn slotted_butterfly_obeys_bound_plus_slot() {
        // §4.3 end: slotted time treated as §3.4 — delay within
        // UB + r (same coupling argument as the hypercube case).
        let mut cfg = base_cfg();
        cfg.arrivals = ArrivalModel::Slotted { slots_per_unit: 2 };
        let r = ButterflySim::new(cfg).run();
        assert_eq!(r.generated, r.delivered);
        let ub = butterfly_bounds::greedy_upper_bound(cfg.dim, cfg.lambda, cfg.p) + 0.5;
        assert!(
            r.delay.mean <= ub * 1.03,
            "slotted butterfly delay {} above {ub}",
            r.delay.mean
        );
        // All arrivals happen on the slot grid: delays keep the d floor.
        assert!(r.delay.p50 >= cfg.dim as f64);
    }

    #[test]
    fn p_one_quantiles_match_md1_distribution() {
        // At p = 1 (hypercube analogue: here p=1 means all-vertical paths
        // with per-row streams) the butterfly's first-level vertical arc is
        // M/D/1 and deeper levels never queue (regular departures), so
        // delay quantiles are d - 1 + (M/D/1 sojourn quantile).
        let cfg = ButterflySimConfig {
            dim: 4,
            lambda: 0.7,
            p: 1.0,
            horizon: 12_000.0,
            warmup: 2_000.0,
            seed: 5,
            ..Default::default()
        };
        let r = ButterflySim::new(cfg).run();
        for (q, measured) in [(0.5, r.delay.p50), (0.9, r.delay.p90)] {
            let predicted = cfg.dim as f64 + hyperroute_queueing::md1::wait_quantile(0.7, q);
            assert!(
                (measured - predicted).abs() <= 0.35,
                "q={q}: measured {measured} vs M/D/1 prediction {predicted}"
            );
        }
    }
}
