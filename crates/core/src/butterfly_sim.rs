//! Butterfly instantiation of the generic engine (paper §4).
//!
//! Packets are generated at level-0 nodes by independent Poisson sources
//! (merged network-wide, like the hypercube's) and must reach a random
//! level-`d` node chosen by bit-flips with probability `p`. The path is
//! unique, so greedy routing is the only non-idling choice; FIFO resolves
//! contention. A packet whose destination row equals its origin row still
//! crosses all `d` straight arcs — the butterfly has no zero-hop
//! deliveries.
//!
//! The event loop lives in [`crate::engine`]; this module is the
//! butterfly's routing law ([`ButterflySpec`]), its per-level Prop. 15
//! statistics, and its [`Report`] assembly. Construct through
//! [`crate::scenario::Scenario`] with
//! [`crate::scenario::Topology::Butterfly`].

use crate::engine::{Advance, ArcChoice, Engine, EngineCfg, EnginePacket, EngineSpec, Spawn};
use crate::observe::{NullObserver, Observer};
use crate::packet::sample_flip_mask;
use crate::parallel::{ParallelEngine, ShardSpec, ShardableSpec};
use crate::scenario::{ButterflyExt, Report, ReportExt, Scenario, Topology};
use hyperroute_desim::{SimRng, Tally};
use hyperroute_topology::{ArcKind, Butterfly, ButterflyArc};

/// An in-flight butterfly packet. Its current node (row, level) is implied
/// by the arc queue holding it, so only the destination row rides along.
#[derive(Clone, Copy, Debug)]
pub struct BfPacket {
    born: f64,
    dest: u32,
    verticals: u16,
}

impl EnginePacket for BfPacket {
    #[inline]
    fn born(&self) -> f64 {
        self.born
    }
}

/// Bits of the packed arc word holding the arc's head row (`d ≤ 24`).
const ARC_ROW_MASK: u32 = (1 << 24) - 1;

/// Bit offset of the arc's level (bits 24..29).
const ARC_LEVEL_SHIFT: u32 = 24;

/// Vertical-arc flag (bit 29).
const ARC_VERTICAL: u32 = 1 << 29;

/// The butterfly's per-topology half of the generic engine. Engine nodes
/// encode `[row; level]` as `level·2^d + row` (the same encoding the
/// [`hyperroute_topology::RoutingTopology`] impl uses), so a source id
/// (level 0) is just the row.
pub struct ButterflySpec {
    dim: usize,
    p: f64,
    straight_arrivals: Vec<u64>,
    vertical_arrivals: Vec<u64>,
    vertical_stats: Tally,
}

impl EngineSpec for ButterflySpec {
    type Pkt = BfPacket;

    fn num_sources(&self) -> usize {
        1 << self.dim
    }

    fn num_arcs(&self) -> usize {
        self.dim << (self.dim + 1)
    }

    fn arc_meta(&self, arc: usize) -> u32 {
        let a = ButterflyArc::from_index(arc, self.dim);
        let vertical = if a.kind == ArcKind::Vertical {
            ARC_VERTICAL
        } else {
            0
        };
        a.to_row().0 as u32 | ((a.level as u32) << ARC_LEVEL_SHIFT) | vertical
    }

    fn mean_hops_hint(&self) -> f64 {
        self.dim as f64
    }

    fn generate(&mut self, t: f64, source: u32, dest_rng: &mut SimRng) -> Spawn<BfPacket> {
        let mask = sample_flip_mask(dest_rng, self.dim, self.p);
        // Even a same-row destination crosses d straight arcs: never a
        // self-delivery.
        Spawn::Route(BfPacket {
            born: t,
            dest: source ^ mask,
            verticals: 0,
        })
    }

    fn choose_arc(
        &mut self,
        _t: f64,
        in_window: bool,
        node: u32,
        pkt: &mut BfPacket,
        _route_rng: &mut SimRng,
    ) -> ArcChoice {
        let row = node & ((1 << self.dim) - 1);
        let level = (node >> self.dim) as usize;
        debug_assert!(level < self.dim);
        let vertical = (row >> level) & 1 != (pkt.dest >> level) & 1;
        if in_window {
            if vertical {
                self.vertical_arrivals[level] += 1;
            } else {
                self.straight_arrivals[level] += 1;
            }
        }
        // Dense butterfly arc index: ((level·2^d) + row)·2 + kind.
        ArcChoice::Arc(((((level << self.dim) + row as usize) << 1) | vertical as usize) as u32)
    }

    fn note_service_end(&mut self, _t: f64, _meta: u32) {}

    fn advance(&mut self, meta: u32, pkt: &mut BfPacket) -> Advance {
        if meta & ARC_VERTICAL != 0 {
            pkt.verticals += 1;
        }
        let row = meta & ARC_ROW_MASK;
        let level = ((meta >> ARC_LEVEL_SHIFT) & 0x1F) as usize + 1;
        if level == self.dim {
            Advance::Deliver(self.dim as u16)
        } else {
            Advance::Forward(((level << self.dim) as u32) | row)
        }
    }

    fn note_deliver(&mut self, pkt: &BfPacket, in_window: bool) {
        if in_window {
            self.vertical_stats.push(pkt.verticals as f64);
        }
    }
}

impl ShardSpec for ButterflySpec {}

impl ShardableSpec for ButterflySpec {
    type Shard = ButterflySpec;

    fn shard(&self) -> ButterflySpec {
        ButterflySpec {
            dim: self.dim,
            p: self.p,
            straight_arrivals: vec![0; self.dim],
            vertical_arrivals: vec![0; self.dim],
            // Shards never see deliveries in replay order; the mean
            // vertical-hop tally accrues on the primary spec via
            // `note_deliver` during record replay.
            vertical_stats: Tally::new(),
        }
    }

    fn num_nodes(&self) -> usize {
        // Engine nodes encode `level·2^d + row` for levels `0..d` (the
        // level-`d` boundary is a delivery, never a node).
        self.dim << self.dim
    }

    fn arc_tail(&self, arc: usize) -> u32 {
        // Dense arc index is `tail_node·2 + kind`.
        (arc >> 1) as u32
    }

    fn absorb(&mut self, shard: &ButterflySpec) {
        for (total, &part) in self
            .straight_arrivals
            .iter_mut()
            .zip(&shard.straight_arrivals)
        {
            *total += part;
        }
        for (total, &part) in self
            .vertical_arrivals
            .iter_mut()
            .zip(&shard.vertical_arrivals)
        {
            *total += part;
        }
    }
}

/// The butterfly simulator: a [`ButterflySpec`] driven by the generic
/// [`Engine`].
pub struct ButterflySim {
    engine: Engine<ButterflySpec>,
    workers: usize,
}

impl ButterflySim {
    /// Build the simulator from a validated butterfly scenario.
    pub(crate) fn from_scenario(s: &Scenario) -> ButterflySim {
        let Topology::Butterfly { dim } = s.topology else {
            unreachable!("butterfly simulator on a non-butterfly scenario");
        };
        let bf = Butterfly::new(dim);
        let spec = ButterflySpec {
            dim,
            p: s.workload.p,
            straight_arrivals: vec![0; dim],
            vertical_arrivals: vec![0; dim],
            vertical_stats: Tally::new(),
        };
        debug_assert_eq!(bf.num_arcs(), dim << (dim + 1));
        let cfg = EngineCfg {
            lambda: s.workload.lambda,
            arrivals: s.workload.arrivals,
            contention: s.policy.contention,
            scheduler: s.run.scheduler,
            horizon: s.run.horizon,
            warmup: s.run.warmup,
            seed: s.run.seed,
            drain: s.run.drain,
        };
        ButterflySim {
            engine: Engine::new(spec, cfg),
            workers: s.run.intra_workers(),
        }
    }

    /// Run to completion and summarise.
    pub fn run(self) -> Report {
        self.run_observed(&mut NullObserver)
    }

    /// Run to completion under a streaming [`Observer`] and summarise.
    ///
    /// The observer never changes the simulation — reports are
    /// bit-identical to an unobserved [`ButterflySim::run`].
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> Report {
        if self.workers > 1 {
            let (spec, cfg) = self.engine.into_spec_cfg();
            let mut par = ParallelEngine::new(spec, cfg, self.workers);
            par.drive(obs);
            return Self::assemble(
                par.spec(),
                par.cfg(),
                par.collector(),
                par.events_processed(),
            );
        }
        self.engine.drive(obs);
        self.report()
    }

    fn report(&self) -> Report {
        let engine = &self.engine;
        Self::assemble(
            engine.spec(),
            engine.cfg(),
            engine.collector(),
            engine.events_processed(),
        )
    }

    fn assemble(
        spec: &ButterflySpec,
        cfg: &EngineCfg,
        collector: &crate::metrics::MetricsCollector,
        events: u64,
    ) -> Report {
        let span = cfg.horizon - cfg.warmup;
        let arcs_per_level = (1usize << spec.dim) as f64;
        let straight: Vec<f64> = spec
            .straight_arrivals
            .iter()
            .map(|&c| c as f64 / (span * arcs_per_level))
            .collect();
        let vertical: Vec<f64> = spec
            .vertical_arrivals
            .iter()
            .map(|&c| c as f64 / (span * arcs_per_level))
            .collect();
        Report {
            delay: collector.delay_stats(),
            mean_in_system: collector.mean_in_system(cfg.horizon),
            peak_in_system: collector.peak_in_system(),
            throughput: collector.throughput(cfg.horizon),
            little_error: collector.little_check(cfg.horizon).relative_error(),
            generated: collector.generated(),
            delivered: collector.delivered_total(),
            events,
            ext: ReportExt::Butterfly(ButterflyExt {
                rho: cfg.lambda * spec.p.max(1.0 - spec.p),
                mean_vertical_hops: spec.vertical_stats.mean(),
                straight_rate_per_level: straight,
                vertical_rate_per_level: vertical,
            }),
            telemetry: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrivalModel;
    use hyperroute_analysis::butterfly_bounds;

    fn base_scenario() -> Scenario {
        Scenario::builder(Topology::Butterfly { dim: 4 })
            .lambda(1.2)
            .p(0.5) // ρ_bf = 0.6
            .horizon(3_000.0)
            .warmup(500.0)
            .seed(21)
            .build()
            .expect("valid scenario")
    }

    fn run(s: &Scenario) -> Report {
        ButterflySim::from_scenario(s).run()
    }

    fn bf(r: &Report) -> &ButterflyExt {
        let ReportExt::Butterfly(ext) = &r.ext else {
            panic!("wrong report extension");
        };
        ext
    }

    #[test]
    fn all_delivered_and_delay_at_least_d() {
        let r = run(&base_scenario());
        assert_eq!(r.generated, r.delivered);
        assert!(r.delay.p50 >= 4.0);
        assert!(r.delay.mean >= 4.0);
    }

    #[test]
    fn delay_within_paper_bracket() {
        let r = run(&base_scenario());
        let lb = butterfly_bounds::universal_lower_bound(4, 1.2, 0.5);
        let ub = butterfly_bounds::greedy_upper_bound(4, 1.2, 0.5);
        assert!(
            r.delay.mean >= lb * 0.97 && r.delay.mean <= ub * 1.03,
            "measured {} outside [{lb}, {ub}]",
            r.delay.mean
        );
    }

    #[test]
    fn proposition_15_arc_rates() {
        let r = run(&base_scenario());
        for lvl in 0..4 {
            assert!(
                (bf(&r).straight_rate_per_level[lvl] - 0.6).abs() < 0.035,
                "straight level {lvl}: {}",
                bf(&r).straight_rate_per_level[lvl]
            );
            assert!(
                (bf(&r).vertical_rate_per_level[lvl] - 0.6).abs() < 0.035,
                "vertical level {lvl}: {}",
                bf(&r).vertical_rate_per_level[lvl]
            );
        }
    }

    #[test]
    fn asymmetric_p_rates() {
        let mut s = base_scenario();
        s.workload.p = 0.25;
        s.workload.lambda = 1.0;
        let r = run(&s);
        // Straight ≈ 0.75, vertical ≈ 0.25 at every level.
        for lvl in 0..4 {
            assert!((bf(&r).straight_rate_per_level[lvl] - 0.75).abs() < 0.035);
            assert!((bf(&r).vertical_rate_per_level[lvl] - 0.25).abs() < 0.035);
        }
        // Mean vertical hops ≈ dp = 1.
        assert!((bf(&r).mean_vertical_hops - 1.0).abs() < 0.05);
    }

    #[test]
    fn little_and_determinism() {
        let a = run(&base_scenario());
        assert!(a.little_error < 0.05, "little {}", a.little_error);
        let b = run(&base_scenario());
        assert_eq!(a.delay.mean, b.delay.mean);
    }

    #[test]
    fn zero_load_edge() {
        let mut s = base_scenario();
        s.workload.lambda = 0.0;
        let r = run(&s);
        assert_eq!(r.generated, 0);
    }

    #[test]
    fn slotted_butterfly_obeys_bound_plus_slot() {
        // §4.3 end: slotted time treated as §3.4 — delay within
        // UB + r (same coupling argument as the hypercube case).
        let mut s = base_scenario();
        s.workload.arrivals = ArrivalModel::Slotted { slots_per_unit: 2 };
        let r = run(&s);
        assert_eq!(r.generated, r.delivered);
        let ub = butterfly_bounds::greedy_upper_bound(4, 1.2, 0.5) + 0.5;
        assert!(
            r.delay.mean <= ub * 1.03,
            "slotted butterfly delay {} above {ub}",
            r.delay.mean
        );
        // All arrivals happen on the slot grid: delays keep the d floor.
        assert!(r.delay.p50 >= 4.0);
    }

    #[test]
    fn p_one_quantiles_match_md1_distribution() {
        // At p = 1 the butterfly's first-level vertical arc is M/D/1 and
        // deeper levels never queue (regular departures), so delay
        // quantiles are d - 1 + (M/D/1 sojourn quantile).
        let s = Scenario::builder(Topology::Butterfly { dim: 4 })
            .lambda(0.7)
            .p(1.0)
            .horizon(12_000.0)
            .warmup(2_000.0)
            .seed(5)
            .build()
            .unwrap();
        let r = run(&s);
        for (q, measured) in [(0.5, r.delay.p50), (0.9, r.delay.p90)] {
            let predicted = 4.0 + hyperroute_queueing::md1::wait_quantile(0.7, q);
            assert!(
                (measured - predicted).abs() <= 0.35,
                "q={q}: measured {measured} vs M/D/1 prediction {predicted}"
            );
        }
    }
}
