//! Simulation of the abstract levelled queueing networks `Q` and `R`
//! (paper §3.1, §4.3) under FIFO **or** Processor-Sharing service, with
//! coupled sample paths.
//!
//! The paper's upper-bound proof (Lemmas 9–10, Prop. 11) couples a FIFO
//! network and its PS counterpart on the *same sample path ω*: identical
//! external arrival times and identical **positional** routing decisions
//! (the k-th service completion at a given server makes the same choice in
//! both systems, regardless of which packet it carries). This simulator
//! reproduces that coupling exactly: per-server arrival streams and
//! per-server routing-decision streams are seeded deterministically from
//! `(seed, server)`, so running the same network with
//! [`Discipline::Fifo`] and [`Discipline::Ps`] at the same seed yields the
//! paper's coupled pair, and the dominance checks `B(t) ≥ B̄(t)`,
//! `N(t) ≤ N̄(t)` are sample-path exact.

// The config struct defined here is the deprecated legacy entry point;
// this module necessarily keeps using it internally.
#![allow(deprecated)]

use crate::config::ConfigError;
use crate::metrics::{DelayStats, MetricsCollector};
use crate::observe::{NullObserver, Observer, TimeSeriesProbe};
use crate::pool::{ArcFifo, SlabPool};
use hyperroute_desim::{OccupancyHistogram, Scheduler, SchedulerKind, SimRng};
use hyperroute_queueing::PsServer;
use hyperroute_topology::LevelledNetwork;
use serde::{Deserialize, Serialize};

/// Service discipline for every server of the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Discipline {
    /// Deterministic unit-service FIFO (the real network).
    #[default]
    Fifo,
    /// Deterministic unit-work Processor Sharing (the product-form
    /// comparison network Q̄ / R̄).
    Ps,
}

impl std::fmt::Display for Discipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Discipline::Fifo => "fifo",
            Discipline::Ps => "ps",
        })
    }
}

/// Configuration of an equivalent-network simulation.
///
/// Deprecated legacy entry point: build a
/// [`crate::scenario::Scenario`] with [`crate::scenario::Topology::EqNet`]
/// instead; the scenario path produces byte-identical reports. This
/// struct remains as a thin shim for one release.
#[deprecated(
    since = "0.2.0",
    note = "build a `scenario::Scenario` with `Topology::EqNet` instead"
)]
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EqNetConfig {
    /// FIFO or PS service at every server.
    pub discipline: Discipline,
    /// External arrivals stop at this time.
    pub horizon: f64,
    /// Customers born before this time are not measured.
    pub warmup: f64,
    /// Seed; FIFO and PS runs with equal seeds are coupled (same ω).
    pub seed: u64,
    /// Serve out all in-flight customers after the horizon.
    pub drain: bool,
    /// Record every departure epoch (needed for `B(t)` dominance checks).
    pub record_departures: bool,
    /// Track per-server occupancy histograms up to this many customers
    /// (0 disables tracking).
    pub occupancy_cap: usize,
    /// Future-event-list backend (bit-identical results either way).
    pub scheduler: SchedulerKind,
}

impl Default for EqNetConfig {
    fn default() -> Self {
        EqNetConfig {
            discipline: Discipline::Fifo,
            horizon: 1_000.0,
            warmup: 200.0,
            seed: 0xE9,
            drain: true,
            record_departures: false,
            occupancy_cap: 0,
            scheduler: SchedulerKind::default(),
        }
    }
}

/// Results of an equivalent-network run.
///
/// `PartialEq` is bit-exact, for the scheduler-equivalence tests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EqNetReport {
    /// Network-delay statistics (external arrival → departure), customers
    /// born in the measurement window.
    pub delay: DelayStats,
    /// Time-averaged customers in the network over the measurement window.
    pub mean_in_system: f64,
    /// Peak customers in the network.
    pub peak_in_system: f64,
    /// Departures per unit time in the measurement window.
    pub throughput: f64,
    /// Relative Little's-law discrepancy.
    pub little_error: f64,
    /// Total customers that entered the network.
    pub generated: u64,
    /// Total customers that left.
    pub delivered: u64,
    /// Discrete events processed (arrivals + FIFO completions + PS
    /// tentative departures, including superseded ones).
    pub events: u64,
    /// All departure epochs in time order (empty unless
    /// `record_departures`).
    pub departures: Vec<f64>,
    /// Per-server fraction of time at occupancy `n` for `n < cap` (empty
    /// unless `occupancy_cap > 0`).
    pub occupancy_fractions: Vec<Vec<f64>>,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrival(u32),
    FifoComplete(u32),
    PsTentative { server: u32, generation: u32 },
}

/// The equivalent-network simulator.
pub struct EqNetSim {
    cfg: EqNetConfig,
    routes: Vec<Vec<(u32, f64)>>,
    /// Slab of queued customer ids; FIFO servers hold intrusive lists.
    fifo_pool: SlabPool<u64>,
    fifo_queues: Vec<ArcFifo>,
    fifo_busy: Vec<bool>,
    ps_servers: Vec<PsServer>,
    ps_generation: Vec<u32>,
    arrival_rngs: Vec<SimRng>,
    route_rngs: Vec<SimRng>,
    external_rate: Vec<f64>,
    born: Vec<f64>,
    events: Scheduler<Ev>,
    events_processed: u64,
    collector: MetricsCollector,
    departures: Vec<f64>,
    occupancy: Vec<OccupancyHistogram>,
    occ_count: Vec<usize>,
}

impl EqNetConfig {
    /// Structured validation of this configuration.
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(self.horizon.is_finite()
            && self.warmup.is_finite()
            && self.horizon > self.warmup
            && self.warmup >= 0.0)
        {
            return Err(ConfigError::Window {
                horizon: self.horizon,
                warmup: self.warmup,
            });
        }
        Ok(())
    }
}

impl EqNetSim {
    /// Build a simulator over `net` (the network is consumed into flat
    /// routing tables).
    pub fn new(net: &LevelledNetwork, cfg: EqNetConfig) -> EqNetSim {
        if let Err(e) = cfg.check() {
            panic!("{e}");
        }
        let n = net.num_servers();
        let routes: Vec<Vec<(u32, f64)>> = net
            .servers()
            .map(|s| {
                net.routes(s)
                    .iter()
                    .map(|&(t, q)| (t.0 as u32, q))
                    .collect()
            })
            .collect();
        let external_rate: Vec<f64> = net.servers().map(|s| net.external_rate(s)).collect();

        // Per-server streams derived from (seed, server, salt): identical
        // across disciplines, which is precisely the paper's coupling.
        let arrival_rngs: Vec<SimRng> = (0..n)
            .map(|s| SimRng::new(cfg.seed ^ (s as u64).wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        let route_rngs: Vec<SimRng> = (0..n)
            .map(|s| SimRng::new(cfg.seed ^ (s as u64).wrapping_mul(0xC2B2AE3D27D4EB4F) ^ 0xABCD))
            .collect();

        // Rate hint: external arrivals plus one completion per stage
        // visited (bounded by the server count per customer in these
        // feed-forward networks; 4 is a comfortable average).
        let events_per_unit = external_rate.iter().sum::<f64>() * 4.0 + n as f64;
        let mut events = Scheduler::new(cfg.scheduler, events_per_unit);
        let mut arrival_rngs = arrival_rngs;
        for s in 0..n {
            if external_rate[s] > 0.0 {
                let t = arrival_rngs[s].exp(external_rate[s]);
                if t < cfg.horizon {
                    events.push(t, Ev::Arrival(s as u32));
                }
            }
        }

        let total_rate: f64 = external_rate.iter().sum();
        let expected = (total_rate * (cfg.horizon - cfg.warmup)).max(64.0);
        let collector = MetricsCollector::new(
            cfg.warmup,
            cfg.horizon,
            (expected / 32.0).ceil() as u64,
            cfg.seed,
        );
        let occupancy = if cfg.occupancy_cap > 0 {
            (0..n)
                .map(|_| OccupancyHistogram::new(0.0, 0, cfg.occupancy_cap))
                .collect()
        } else {
            Vec::new()
        };
        EqNetSim {
            cfg,
            routes,
            fifo_pool: SlabPool::with_capacity(256),
            fifo_queues: vec![ArcFifo::new(); n],
            fifo_busy: vec![false; n],
            ps_servers: vec![PsServer::unit(); n],
            ps_generation: vec![0; n],
            arrival_rngs,
            route_rngs,
            external_rate,
            born: Vec::new(),
            events,
            events_processed: 0,
            collector,
            departures: Vec::new(),
            occupancy,
            occ_count: vec![0; n],
        }
    }

    /// Run to completion and summarise.
    pub fn run(self) -> EqNetReport {
        self.run_observed(&mut NullObserver)
    }

    /// Run to completion under a streaming [`Observer`] and summarise.
    ///
    /// The observer never changes the simulation — reports are
    /// bit-identical to an unobserved [`EqNetSim::run`].
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> EqNetReport {
        self.drive(obs);
        self.report()
    }

    /// Run, sampling total customers in system every `interval` — the
    /// `N(t)` trajectory for Prop. 11 comparisons.
    #[deprecated(
        since = "0.2.0",
        note = "run with an `observe::TimeSeriesProbe` via `run_observed` instead"
    )]
    pub fn run_sampled(self, interval: f64) -> (EqNetReport, Vec<(f64, f64)>) {
        let mut probe = TimeSeriesProbe::new(interval, self.cfg.horizon);
        let report = self.run_observed(&mut probe);
        (report, probe.into_samples())
    }

    fn drive<O: Observer>(&mut self, obs: &mut O) {
        while let Some((t, ev)) = self.events.pop() {
            obs.on_event(t, self.collector.current_in_system());
            self.events_processed += 1;
            match ev {
                Ev::Arrival(s) => self.on_arrival(t, s as usize),
                Ev::FifoComplete(s) => self.on_fifo_complete(t, s as usize, obs),
                Ev::PsTentative { server, generation } => {
                    self.on_ps_tentative(t, server as usize, generation, obs)
                }
            }
            if !self.cfg.drain && t >= self.cfg.horizon {
                break;
            }
        }
    }

    fn on_arrival(&mut self, t: f64, s: usize) {
        let next = t + self.arrival_rngs[s].exp(self.external_rate[s]);
        if next < self.cfg.horizon {
            self.events.push(next, Ev::Arrival(s as u32));
        }
        let id = self.born.len() as u64;
        self.born.push(t);
        self.collector.on_generated(t);
        self.join(t, s, id);
    }

    fn join(&mut self, t: f64, s: usize, id: u64) {
        self.occ_bump(t, s, 1);
        match self.cfg.discipline {
            Discipline::Fifo => {
                self.fifo_queues[s].push_back(&mut self.fifo_pool, id);
                if !self.fifo_busy[s] {
                    self.fifo_busy[s] = true;
                    self.events.push(t + 1.0, Ev::FifoComplete(s as u32));
                }
            }
            Discipline::Ps => {
                self.ps_servers[s].arrive(t, id);
                self.reschedule_ps(s);
            }
        }
    }

    fn reschedule_ps(&mut self, s: usize) {
        self.ps_generation[s] = self.ps_generation[s].wrapping_add(1);
        if let Some(next) = self.ps_servers[s].next_departure_time() {
            self.events.push(
                next,
                Ev::PsTentative {
                    server: s as u32,
                    generation: self.ps_generation[s],
                },
            );
        }
    }

    fn on_fifo_complete<O: Observer>(&mut self, t: f64, s: usize, obs: &mut O) {
        let id = self.fifo_queues[s]
            .pop_front(&mut self.fifo_pool)
            .expect("completion on empty queue");
        if self.fifo_queues[s].is_empty() {
            self.fifo_busy[s] = false;
        } else {
            self.events.push(t + 1.0, Ev::FifoComplete(s as u32));
        }
        self.route(t, s, id, obs);
    }

    fn on_ps_tentative<O: Observer>(&mut self, t: f64, s: usize, generation: u32, obs: &mut O) {
        if generation != self.ps_generation[s] {
            return; // superseded by a later arrival/departure
        }
        let id = self.ps_servers[s].complete_next(t);
        self.reschedule_ps(s);
        self.route(t, s, id, obs);
    }

    /// Positional routing decision: the k-th completion at server `s`
    /// consumes the k-th draw of `route_rngs[s]` (same in FIFO and PS).
    fn route<O: Observer>(&mut self, t: f64, s: usize, id: u64, obs: &mut O) {
        self.occ_bump(t, s, -1);
        let decision = self.route_rngs[s].route(&self.routes[s]);
        match decision {
            Some(next) => self.join(t, next as usize, id),
            None => {
                self.collector.on_delivered(t, self.born[id as usize], 0);
                obs.on_delivered(t, self.born[id as usize]);
                if self.cfg.record_departures {
                    self.departures.push(t);
                }
            }
        }
    }

    fn occ_bump(&mut self, t: f64, s: usize, delta: i64) {
        if self.occupancy.is_empty() {
            return;
        }
        let c = (self.occ_count[s] as i64 + delta).max(0) as usize;
        self.occ_count[s] = c;
        self.occupancy[s].set(t.min(self.cfg.horizon), c);
    }

    fn report(&self) -> EqNetReport {
        let cfg = &self.cfg;
        let little = self.collector.little_check(cfg.horizon);
        let occupancy_fractions = self
            .occupancy
            .iter()
            .map(|h| {
                (0..cfg.occupancy_cap)
                    .map(|n| h.fraction(n, cfg.horizon))
                    .collect()
            })
            .collect();
        EqNetReport {
            delay: self.collector.delay_stats(),
            mean_in_system: self.collector.mean_in_system(cfg.horizon),
            peak_in_system: self.collector.peak_in_system(),
            throughput: self.collector.throughput(cfg.horizon),
            little_error: little.relative_error(),
            generated: self.collector.generated(),
            delivered: self.collector.delivered_total(),
            events: self.events_processed,
            departures: self.departures.clone(),
            occupancy_fractions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperroute_queueing::sample_path::counting_dominates;
    use hyperroute_topology::Hypercube;

    fn q_net(d: usize, lambda: f64, p: f64) -> LevelledNetwork {
        LevelledNetwork::equivalent_q(Hypercube::new(d), lambda, p)
    }

    fn run_pair(net: &LevelledNetwork, seed: u64, horizon: f64) -> (EqNetReport, EqNetReport) {
        let mk = |discipline| EqNetConfig {
            discipline,
            horizon,
            warmup: horizon * 0.2,
            seed,
            record_departures: true,
            ..Default::default()
        };
        let fifo = EqNetSim::new(net, mk(Discipline::Fifo)).run();
        let ps = EqNetSim::new(net, mk(Discipline::Ps)).run();
        (fifo, ps)
    }

    #[test]
    fn coupled_runs_share_arrivals() {
        let net = q_net(3, 1.0, 0.5);
        let (fifo, ps) = run_pair(&net, 42, 500.0);
        assert_eq!(fifo.generated, ps.generated);
        assert_eq!(fifo.delivered, ps.delivered);
        assert_eq!(fifo.generated, fifo.delivered);
    }

    #[test]
    fn lemma_10_departure_dominance() {
        // B(t) ≥ B̄(t) for every t: FIFO departures (sorted) pointwise
        // precede PS departures on the coupled path.
        for seed in [1u64, 2, 3, 4, 5] {
            let net = q_net(3, 1.2, 0.5); // ρ = 0.6
            let (fifo, ps) = run_pair(&net, seed, 400.0);
            assert!(
                counting_dominates(&fifo.departures, &ps.departures, 1e-7),
                "seed {seed}: PS departures got ahead of FIFO"
            );
        }
    }

    #[test]
    fn proposition_11_mean_occupancy_dominance() {
        // E[N(t)] ≤ E[N̄(t)]: the FIFO time-average is below PS's.
        let net = q_net(3, 1.4, 0.5); // ρ = 0.7
        let (fifo, ps) = run_pair(&net, 9, 2_000.0);
        assert!(
            fifo.mean_in_system <= ps.mean_in_system * 1.02,
            "FIFO {} vs PS {}",
            fifo.mean_in_system,
            ps.mean_in_system
        );
    }

    #[test]
    fn ps_network_matches_product_form_mean() {
        // Q̄ product form: N̄ = d·2^d·ρ/(1-ρ) (proof of Prop. 12).
        let (d, lambda, p) = (3usize, 1.0, 0.5);
        let rho: f64 = lambda * p;
        let net = q_net(d, lambda, p);
        let cfg = EqNetConfig {
            discipline: Discipline::Ps,
            horizon: 8_000.0,
            warmup: 1_000.0,
            seed: 11,
            ..Default::default()
        };
        let r = EqNetSim::new(&net, cfg).run();
        let expect = (d as f64) * 8.0 * rho / (1.0 - rho);
        assert!(
            (r.mean_in_system - expect).abs() / expect < 0.05,
            "PS N̄ {} vs product form {expect}",
            r.mean_in_system
        );
    }

    #[test]
    fn ps_occupancy_is_geometric() {
        // Per-server occupancy of the PS network is geometric(ρ).
        let (d, lambda, p) = (2usize, 1.2, 0.5);
        let rho: f64 = 0.6;
        let net = q_net(d, lambda, p);
        let cfg = EqNetConfig {
            discipline: Discipline::Ps,
            horizon: 20_000.0,
            warmup: 2_000.0,
            seed: 13,
            occupancy_cap: 6,
            ..Default::default()
        };
        let r = EqNetSim::new(&net, cfg).run();
        // Average the empirical distribution across servers (they are
        // exchangeable) and compare with (1-ρ)ρ^n.
        let servers = r.occupancy_fractions.len() as f64;
        for n in 0..4usize {
            let avg: f64 = r.occupancy_fractions.iter().map(|f| f[n]).sum::<f64>() / servers;
            let expect = (1.0 - rho) * rho.powi(n as i32);
            assert!(
                (avg - expect).abs() < 0.02,
                "occupancy {n}: measured {avg} vs geometric {expect}"
            );
        }
    }

    #[test]
    fn fifo_network_delay_matches_packet_sim_bracket() {
        // The Q network under FIFO *is* the hypercube under greedy routing:
        // its delay must sit in the Prop. 12/13 bracket too.
        let (d, lambda, p) = (4usize, 1.2, 0.5);
        let net = q_net(d, lambda, p);
        let cfg = EqNetConfig {
            discipline: Discipline::Fifo,
            horizon: 3_000.0,
            warmup: 500.0,
            seed: 17,
            ..Default::default()
        };
        let r = EqNetSim::new(&net, cfg).run();
        let lb = hyperroute_analysis::hypercube_bounds::greedy_lower_bound(d, lambda, p);
        let ub = hyperroute_analysis::hypercube_bounds::greedy_upper_bound(d, lambda, p);
        // Q measures delay only for packets that move (mask ≠ 0), so
        // compare against the conditional bracket: divide out the zero-hop
        // fraction contribution. T_cond = T / (1 - (1-p)^d) is bounded by
        // UB_cond = UB / (1-(1-p)^d); here we simply check the weaker,
        // unconditional sandwich after rescaling.
        let moving = 1.0 - (1.0f64 - p).powi(d as i32);
        let t_uncond = r.delay.mean * moving;
        assert!(
            t_uncond >= lb * 0.93 && t_uncond <= ub * 1.05,
            "rescaled delay {t_uncond} outside [{lb}, {ub}]"
        );
    }

    #[test]
    fn fig2_network_runs_both_disciplines() {
        let net = LevelledNetwork::fig2_network(0.5, 0.5, 0.3, 0.6, 0.6);
        let (fifo, ps) = run_pair(&net, 23, 2_000.0);
        assert!(counting_dominates(&fifo.departures, &ps.departures, 1e-7));
        assert!(fifo.delay.mean <= ps.delay.mean * 1.05);
    }

    #[test]
    fn little_law_in_both_disciplines() {
        let net = q_net(3, 1.0, 0.5);
        let (fifo, ps) = run_pair(&net, 31, 3_000.0);
        assert!(
            fifo.little_error < 0.05,
            "FIFO little {}",
            fifo.little_error
        );
        assert!(ps.little_error < 0.05, "PS little {}", ps.little_error);
    }
}
