//! Simulation of the abstract levelled queueing networks `Q` and `R`
//! (paper §3.1, §4.3) under FIFO **or** Processor-Sharing service, with
//! coupled sample paths.
//!
//! The paper's upper-bound proof (Lemmas 9–10, Prop. 11) couples a FIFO
//! network and its PS counterpart on the *same sample path ω*: identical
//! external arrival times and identical **positional** routing decisions
//! (the k-th service completion at a given server makes the same choice in
//! both systems, regardless of which packet it carries). This simulator
//! reproduces that coupling exactly: per-server arrival streams and
//! per-server routing-decision streams are seeded deterministically from
//! `(seed, server)`, so running the same network with
//! [`Discipline::Fifo`] and [`Discipline::Ps`] at the same seed yields the
//! paper's coupled pair, and the dominance checks `B(t) ≥ B̄(t)`,
//! `N(t) ≤ N̄(t)` are sample-path exact.
//!
//! This is the one simulator that does **not** ride the generic
//! packet-over-arcs engine ([`crate::engine`]): its service model is
//! per-*server* (including Processor Sharing with superseded tentative
//! departures) and its randomness is per-server-positional rather than
//! per-packet — the coupling above is the whole point. It still shares
//! the scheduler, metrics, observers and the [`Report`] surface, and is
//! constructed exclusively through [`crate::scenario::Scenario`] with
//! [`crate::scenario::Topology::EqNet`].

use crate::metrics::MetricsCollector;
use crate::observe::{NullObserver, Observer};
use crate::pool::{ArcFifo, SlabPool};
use crate::scenario::{EqNetExt, Report, ReportExt, RunControl, Scenario, Topology};
use hyperroute_desim::{OccupancyHistogram, Scheduler, SimRng};
use hyperroute_queueing::PsServer;
use hyperroute_topology::LevelledNetwork;
use serde::{Deserialize, Serialize};

/// Service discipline for every server of the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Discipline {
    /// Deterministic unit-service FIFO (the real network).
    #[default]
    Fifo,
    /// Deterministic unit-work Processor Sharing (the product-form
    /// comparison network Q̄ / R̄).
    Ps,
}

impl std::fmt::Display for Discipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Discipline::Fifo => "fifo",
            Discipline::Ps => "ps",
        })
    }
}

/// Run parameters extracted from the scenario.
#[derive(Clone, Copy, Debug)]
struct Params {
    discipline: Discipline,
    horizon: f64,
    warmup: f64,
    drain: bool,
    record_departures: bool,
    occupancy_cap: usize,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrival(u32),
    FifoComplete(u32),
    PsTentative { server: u32, generation: u32 },
}

/// The equivalent-network simulator. Built by the scenario layer
/// ([`crate::scenario::Topology::EqNet`]).
pub struct EqNetSim {
    cfg: Params,
    routes: Vec<Vec<(u32, f64)>>,
    /// Slab of queued customer ids; FIFO servers hold intrusive lists.
    fifo_pool: SlabPool<u64>,
    fifo_queues: Vec<ArcFifo>,
    fifo_busy: Vec<bool>,
    ps_servers: Vec<PsServer>,
    ps_generation: Vec<u32>,
    arrival_rngs: Vec<SimRng>,
    route_rngs: Vec<SimRng>,
    external_rate: Vec<f64>,
    born: Vec<f64>,
    events: Scheduler<Ev>,
    events_processed: u64,
    collector: MetricsCollector,
    departures: Vec<f64>,
    occupancy: Vec<OccupancyHistogram>,
    occ_count: Vec<usize>,
}

impl EqNetSim {
    /// Build a simulator over a validated eqnet scenario (the network was
    /// materialised from its [`crate::scenario::EqNetSpec`]).
    pub(crate) fn from_scenario(net: &LevelledNetwork, s: &Scenario) -> EqNetSim {
        let Topology::EqNet {
            record_departures,
            occupancy_cap,
            ..
        } = &s.topology
        else {
            unreachable!("eqnet simulator on a non-eqnet scenario");
        };
        EqNetSim::with_network(
            net,
            s.policy.discipline,
            &s.run,
            *record_departures,
            *occupancy_cap,
        )
    }

    /// Build a simulator over an **arbitrary** levelled network with
    /// explicit run control — the engine-level hook for networks that are
    /// not expressible as a [`crate::scenario::EqNetSpec`], e.g. the
    /// property tests that check Lemma 10 on randomly generated levelled
    /// networks. Scenario-driven runs go through [`Scenario::run`].
    ///
    /// `run.horizon`/`run.warmup` must form a valid measurement window
    /// (finite, `0 ≤ warmup < horizon`); the metrics collector asserts it.
    pub fn with_network(
        net: &LevelledNetwork,
        discipline: Discipline,
        run: &RunControl,
        record_departures: bool,
        occupancy_cap: usize,
    ) -> EqNetSim {
        let cfg = Params {
            discipline,
            horizon: run.horizon,
            warmup: run.warmup,
            drain: run.drain,
            record_departures,
            occupancy_cap,
        };
        let n = net.num_servers();
        let routes: Vec<Vec<(u32, f64)>> = net
            .servers()
            .map(|srv| {
                net.routes(srv)
                    .iter()
                    .map(|&(t, q)| (t.0 as u32, q))
                    .collect()
            })
            .collect();
        let external_rate: Vec<f64> = net.servers().map(|srv| net.external_rate(srv)).collect();

        // Per-server streams derived from (seed, server, salt): identical
        // across disciplines, which is precisely the paper's coupling.
        let seed = run.seed;
        let arrival_rngs: Vec<SimRng> = (0..n)
            .map(|srv| SimRng::new(seed ^ (srv as u64).wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        let route_rngs: Vec<SimRng> = (0..n)
            .map(|srv| SimRng::new(seed ^ (srv as u64).wrapping_mul(0xC2B2AE3D27D4EB4F) ^ 0xABCD))
            .collect();

        // Rate hint: external arrivals plus one completion per stage
        // visited (bounded by the server count per customer in these
        // feed-forward networks; 4 is a comfortable average).
        let events_per_unit = external_rate.iter().sum::<f64>() * 4.0 + n as f64;
        let mut events = Scheduler::new(run.scheduler, events_per_unit);
        let mut arrival_rngs = arrival_rngs;
        for srv in 0..n {
            if external_rate[srv] > 0.0 {
                let t = arrival_rngs[srv].exp(external_rate[srv]);
                if t < cfg.horizon {
                    events.push(t, Ev::Arrival(srv as u32));
                }
            }
        }

        let total_rate: f64 = external_rate.iter().sum();
        let expected = (total_rate * (cfg.horizon - cfg.warmup)).max(64.0);
        let collector = MetricsCollector::new(
            cfg.warmup,
            cfg.horizon,
            (expected / 32.0).ceil() as u64,
            seed,
        );
        let occupancy = if cfg.occupancy_cap > 0 {
            (0..n)
                .map(|_| OccupancyHistogram::new(0.0, 0, cfg.occupancy_cap))
                .collect()
        } else {
            Vec::new()
        };
        EqNetSim {
            cfg,
            routes,
            fifo_pool: SlabPool::with_capacity(256),
            fifo_queues: vec![ArcFifo::new(); n],
            fifo_busy: vec![false; n],
            ps_servers: vec![PsServer::unit(); n],
            ps_generation: vec![0; n],
            arrival_rngs,
            route_rngs,
            external_rate,
            born: Vec::new(),
            events,
            events_processed: 0,
            collector,
            departures: Vec::new(),
            occupancy,
            occ_count: vec![0; n],
        }
    }

    /// Run to completion and summarise.
    pub fn run(self) -> Report {
        self.run_observed(&mut NullObserver)
    }

    /// Run to completion under a streaming [`Observer`] and summarise.
    ///
    /// The observer never changes the simulation — reports are
    /// bit-identical to an unobserved [`EqNetSim::run`].
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> Report {
        self.drive(obs);
        self.report()
    }

    fn drive<O: Observer>(&mut self, obs: &mut O) {
        while let Some((t, ev)) = self.events.pop() {
            obs.on_event(t, self.collector.current_in_system());
            self.events_processed += 1;
            match ev {
                Ev::Arrival(srv) => self.on_arrival(t, srv as usize),
                Ev::FifoComplete(srv) => self.on_fifo_complete(t, srv as usize, obs),
                Ev::PsTentative { server, generation } => {
                    self.on_ps_tentative(t, server as usize, generation, obs)
                }
            }
            if !self.cfg.drain && t >= self.cfg.horizon {
                break;
            }
        }
    }

    fn on_arrival(&mut self, t: f64, srv: usize) {
        let next = t + self.arrival_rngs[srv].exp(self.external_rate[srv]);
        if next < self.cfg.horizon {
            self.events.push(next, Ev::Arrival(srv as u32));
        }
        let id = self.born.len() as u64;
        self.born.push(t);
        self.collector.on_generated(t);
        self.join(t, srv, id);
    }

    fn join(&mut self, t: f64, srv: usize, id: u64) {
        self.occ_bump(t, srv, 1);
        match self.cfg.discipline {
            Discipline::Fifo => {
                self.fifo_queues[srv].push_back(&mut self.fifo_pool, id);
                if !self.fifo_busy[srv] {
                    self.fifo_busy[srv] = true;
                    self.events.push(t + 1.0, Ev::FifoComplete(srv as u32));
                }
            }
            Discipline::Ps => {
                self.ps_servers[srv].arrive(t, id);
                self.reschedule_ps(srv);
            }
        }
    }

    fn reschedule_ps(&mut self, srv: usize) {
        self.ps_generation[srv] = self.ps_generation[srv].wrapping_add(1);
        if let Some(next) = self.ps_servers[srv].next_departure_time() {
            self.events.push(
                next,
                Ev::PsTentative {
                    server: srv as u32,
                    generation: self.ps_generation[srv],
                },
            );
        }
    }

    fn on_fifo_complete<O: Observer>(&mut self, t: f64, srv: usize, obs: &mut O) {
        let id = self.fifo_queues[srv]
            .pop_front(&mut self.fifo_pool)
            .expect("completion on empty queue");
        if self.fifo_queues[srv].is_empty() {
            self.fifo_busy[srv] = false;
        } else {
            self.events.push(t + 1.0, Ev::FifoComplete(srv as u32));
        }
        self.route(t, srv, id, obs);
    }

    fn on_ps_tentative<O: Observer>(&mut self, t: f64, srv: usize, generation: u32, obs: &mut O) {
        if generation != self.ps_generation[srv] {
            return; // superseded by a later arrival/departure
        }
        let id = self.ps_servers[srv].complete_next(t);
        self.reschedule_ps(srv);
        self.route(t, srv, id, obs);
    }

    /// Positional routing decision: the k-th completion at server `srv`
    /// consumes the k-th draw of `route_rngs[srv]` (same in FIFO and PS).
    fn route<O: Observer>(&mut self, t: f64, srv: usize, id: u64, obs: &mut O) {
        self.occ_bump(t, srv, -1);
        let decision = self.route_rngs[srv].route(&self.routes[srv]);
        match decision {
            Some(next) => self.join(t, next as usize, id),
            None => {
                self.collector.on_delivered(t, self.born[id as usize], 0);
                obs.on_delivered(t, self.born[id as usize]);
                if self.cfg.record_departures {
                    self.departures.push(t);
                }
            }
        }
    }

    fn occ_bump(&mut self, t: f64, srv: usize, delta: i64) {
        if self.occupancy.is_empty() {
            return;
        }
        let c = (self.occ_count[srv] as i64 + delta).max(0) as usize;
        self.occ_count[srv] = c;
        self.occupancy[srv].set(t.min(self.cfg.horizon), c);
    }

    fn report(&self) -> Report {
        let cfg = &self.cfg;
        let occupancy_fractions = self
            .occupancy
            .iter()
            .map(|h| {
                (0..cfg.occupancy_cap)
                    .map(|n| h.fraction(n, cfg.horizon))
                    .collect()
            })
            .collect();
        Report {
            delay: self.collector.delay_stats(),
            mean_in_system: self.collector.mean_in_system(cfg.horizon),
            peak_in_system: self.collector.peak_in_system(),
            throughput: self.collector.throughput(cfg.horizon),
            little_error: self.collector.little_check(cfg.horizon).relative_error(),
            generated: self.collector.generated(),
            delivered: self.collector.delivered_total(),
            events: self.events_processed,
            ext: ReportExt::EqNet(EqNetExt {
                departures: self.departures.clone(),
                occupancy_fractions,
            }),
            telemetry: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EqNetSpec;
    use hyperroute_queueing::sample_path::counting_dominates;

    fn q_scenario(dim: usize, lambda: f64, p: f64) -> Scenario {
        Scenario::builder(Topology::EqNet {
            net: EqNetSpec::HypercubeQ { dim },
            record_departures: true,
            occupancy_cap: 0,
        })
        .lambda(lambda)
        .p(p)
        .build()
        .expect("valid scenario")
    }

    fn run_pair(mut base: Scenario, seed: u64, horizon: f64) -> (Report, Report) {
        base.run.seed = seed;
        base.run.horizon = horizon;
        base.run.warmup = horizon * 0.2;
        let mut fifo = base.clone();
        fifo.policy.discipline = Discipline::Fifo;
        let mut ps = base;
        ps.policy.discipline = Discipline::Ps;
        (fifo.run().unwrap(), ps.run().unwrap())
    }

    fn departures(r: &Report) -> &[f64] {
        &r.eqnet().expect("eqnet report").departures
    }

    #[test]
    fn coupled_runs_share_arrivals() {
        let (fifo, ps) = run_pair(q_scenario(3, 1.0, 0.5), 42, 500.0);
        assert_eq!(fifo.generated, ps.generated);
        assert_eq!(fifo.delivered, ps.delivered);
        assert_eq!(fifo.generated, fifo.delivered);
    }

    #[test]
    fn lemma_10_departure_dominance() {
        // B(t) ≥ B̄(t) for every t: FIFO departures (sorted) pointwise
        // precede PS departures on the coupled path.
        for seed in [1u64, 2, 3, 4, 5] {
            let (fifo, ps) = run_pair(q_scenario(3, 1.2, 0.5), seed, 400.0); // ρ = 0.6
            assert!(
                counting_dominates(departures(&fifo), departures(&ps), 1e-7),
                "seed {seed}: PS departures got ahead of FIFO"
            );
        }
    }

    #[test]
    fn proposition_11_mean_occupancy_dominance() {
        // E[N(t)] ≤ E[N̄(t)]: the FIFO time-average is below PS's.
        let (fifo, ps) = run_pair(q_scenario(3, 1.4, 0.5), 9, 2_000.0); // ρ = 0.7
        assert!(
            fifo.mean_in_system <= ps.mean_in_system * 1.02,
            "FIFO {} vs PS {}",
            fifo.mean_in_system,
            ps.mean_in_system
        );
    }

    #[test]
    fn ps_network_matches_product_form_mean() {
        // Q̄ product form: N̄ = d·2^d·ρ/(1-ρ) (proof of Prop. 12).
        let (d, lambda, p) = (3usize, 1.0, 0.5);
        let rho: f64 = lambda * p;
        let mut s = q_scenario(d, lambda, p);
        s.policy.discipline = Discipline::Ps;
        s.run.horizon = 8_000.0;
        s.run.warmup = 1_000.0;
        s.run.seed = 11;
        let r = s.run().unwrap();
        let expect = (d as f64) * 8.0 * rho / (1.0 - rho);
        assert!(
            (r.mean_in_system - expect).abs() / expect < 0.05,
            "PS N̄ {} vs product form {expect}",
            r.mean_in_system
        );
    }

    #[test]
    fn ps_occupancy_is_geometric() {
        // Per-server occupancy of the PS network is geometric(ρ).
        let rho: f64 = 0.6;
        let s = Scenario::builder(Topology::EqNet {
            net: EqNetSpec::HypercubeQ { dim: 2 },
            record_departures: false,
            occupancy_cap: 6,
        })
        .lambda(1.2)
        .p(0.5)
        .discipline(Discipline::Ps)
        .horizon(20_000.0)
        .warmup(2_000.0)
        .seed(13)
        .build()
        .unwrap();
        let r = s.run().unwrap();
        let fractions = &r.eqnet().unwrap().occupancy_fractions;
        // Average the empirical distribution across servers (they are
        // exchangeable) and compare with (1-ρ)ρ^n.
        let servers = fractions.len() as f64;
        for n in 0..4usize {
            let avg: f64 = fractions.iter().map(|f| f[n]).sum::<f64>() / servers;
            let expect = (1.0 - rho) * rho.powi(n as i32);
            assert!(
                (avg - expect).abs() < 0.02,
                "occupancy {n}: measured {avg} vs geometric {expect}"
            );
        }
    }

    #[test]
    fn fifo_network_delay_matches_packet_sim_bracket() {
        // The Q network under FIFO *is* the hypercube under greedy routing:
        // its delay must sit in the Prop. 12/13 bracket too.
        let (d, lambda, p) = (4usize, 1.2, 0.5);
        let mut s = q_scenario(d, lambda, p);
        s.run.horizon = 3_000.0;
        s.run.warmup = 500.0;
        s.run.seed = 17;
        let r = s.run().unwrap();
        let lb = hyperroute_analysis::hypercube_bounds::greedy_lower_bound(d, lambda, p);
        let ub = hyperroute_analysis::hypercube_bounds::greedy_upper_bound(d, lambda, p);
        // Q measures delay only for packets that move (mask ≠ 0), so
        // compare against the conditional bracket after rescaling by the
        // moving fraction.
        let moving = 1.0 - (1.0f64 - p).powi(d as i32);
        let t_uncond = r.delay.mean * moving;
        assert!(
            t_uncond >= lb * 0.93 && t_uncond <= ub * 1.05,
            "rescaled delay {t_uncond} outside [{lb}, {ub}]"
        );
    }

    #[test]
    fn fig2_network_runs_both_disciplines() {
        let base = Scenario::builder(Topology::EqNet {
            net: EqNetSpec::Fig2 {
                rate1: 0.5,
                rate2: 0.5,
                rate3: 0.3,
                q1: 0.6,
                q2: 0.6,
            },
            record_departures: true,
            occupancy_cap: 0,
        })
        .build()
        .unwrap();
        let (fifo, ps) = run_pair(base, 23, 2_000.0);
        assert!(counting_dominates(departures(&fifo), departures(&ps), 1e-7));
        assert!(fifo.delay.mean <= ps.delay.mean * 1.05);
    }

    #[test]
    fn little_law_in_both_disciplines() {
        let (fifo, ps) = run_pair(q_scenario(3, 1.0, 0.5), 31, 3_000.0);
        assert!(
            fifo.little_error < 0.05,
            "FIFO little {}",
            fifo.little_error
        );
        assert!(ps.little_error < 0.05, "PS little {}", ps.little_error);
    }
}
