//! Slab-allocated packet pool with intrusive per-arc FIFO lists.
//!
//! The simulators keep every waiting packet of every arc in **one**
//! contiguous slab (`Vec` of slots); each arc holds only a `(head, tail)`
//! pair of `u32` slot indices ([`ArcFifo`]). Freed slots recycle through an
//! internal free list, so after the warm-up transient the steady state
//! performs **zero allocation**: a packet enqueue is "pop free slot, write
//! 24 bytes, link", a dequeue is "unlink, push free slot". Compare the seed
//! implementation — one `VecDeque<Packet>` per arc, i.e. `d·2^d` separate
//! ring buffers scattered across the heap.
//!
//! The lists are doubly linked, which buys two things:
//!
//! * LIFO service ([`ArcFifo::pop_back`]) stays `O(1)`, matching the
//!   `VecDeque` ablation it replaces.
//! * [`ArcFifo::take_nth`] (the `ContentionPolicy::Random` pick) unlinks in
//!   `O(1)` after walking from the nearer end — replacing the seed's
//!   `VecDeque::remove(idx)` memmove with a walk of equal asymptotics (see
//!   `take_nth` for why constant time is out of reach on an intrusive
//!   list). The walk preserves residual order, so random-policy sample
//!   paths are unchanged from the seed implementation.
//!
//! Items are `Copy` (packets are ≤ 24 bytes), which keeps the pool free of
//! `unsafe`/`MaybeUninit`: a freed slot simply retains its stale payload
//! until reused.

/// Null slot index (no packet).
pub const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Slot<T> {
    item: T,
    /// Next toward the tail; doubles as the free-list link.
    next: u32,
    /// Previous toward the head.
    prev: u32,
}

/// A contiguous slab of `T` with an internal free list.
///
/// All list operations live on [`ArcFifo`] and borrow the pool, so many
/// lists (one per arc) can share one slab.
#[derive(Clone, Debug)]
pub struct SlabPool<T: Copy> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    live: usize,
}

impl<T: Copy> SlabPool<T> {
    /// Empty pool with room for `cap` items before the first regrowth.
    pub fn with_capacity(cap: usize) -> SlabPool<T> {
        SlabPool {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            live: 0,
        }
    }

    /// Number of live (allocated) items.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no items are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slots ever created (live + free); the slab's high-water mark.
    pub fn capacity_used(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn alloc(&mut self, item: T) -> u32 {
        self.live += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.item = item;
            slot.next = NIL;
            slot.prev = NIL;
            idx
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "slab pool exhausted u32 index space");
            self.slots.push(Slot {
                item,
                next: NIL,
                prev: NIL,
            });
            idx
        }
    }

    #[inline]
    fn release(&mut self, idx: u32) -> T {
        let item = self.slots[idx as usize].item;
        self.slots[idx as usize].next = self.free_head;
        self.free_head = idx;
        self.live -= 1;
        item
    }
}

/// An intrusive doubly-linked FIFO of slab slots: 12 bytes per arc.
#[derive(Clone, Copy, Debug)]
pub struct ArcFifo {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for ArcFifo {
    fn default() -> Self {
        ArcFifo::new()
    }
}

impl ArcFifo {
    /// Empty list.
    pub const fn new() -> ArcFifo {
        ArcFifo {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of queued items.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Append `item` at the tail (arrival order). `O(1)`.
    #[inline]
    pub fn push_back<T: Copy>(&mut self, pool: &mut SlabPool<T>, item: T) {
        let idx = pool.alloc(item);
        let slot_prev = self.tail;
        {
            let slot = &mut pool.slots[idx as usize];
            slot.prev = slot_prev;
            slot.next = NIL;
        }
        if slot_prev == NIL {
            self.head = idx;
        } else {
            pool.slots[slot_prev as usize].next = idx;
        }
        self.tail = idx;
        self.len += 1;
    }

    /// Remove and return the head (oldest) item. `O(1)`.
    #[inline]
    pub fn pop_front<T: Copy>(&mut self, pool: &mut SlabPool<T>) -> Option<T> {
        let idx = self.head;
        if idx == NIL {
            return None;
        }
        let next = pool.slots[idx as usize].next;
        self.head = next;
        if next == NIL {
            self.tail = NIL;
        } else {
            pool.slots[next as usize].prev = NIL;
        }
        self.len -= 1;
        Some(pool.release(idx))
    }

    /// Remove and return the tail (newest) item. `O(1)`.
    #[inline]
    pub fn pop_back<T: Copy>(&mut self, pool: &mut SlabPool<T>) -> Option<T> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        let prev = pool.slots[idx as usize].prev;
        self.tail = prev;
        if prev == NIL {
            self.head = NIL;
        } else {
            pool.slots[prev as usize].next = NIL;
        }
        self.len -= 1;
        Some(pool.release(idx))
    }

    /// Remove and return the `n`-th item in arrival order (0 = head).
    ///
    /// Walks from the nearer end (`O(min(n, len-n))` link hops), then
    /// unlinks in `O(1)` — the `ContentionPolicy::Random` replacement for
    /// the seed's `VecDeque::remove(idx)`, trading its memmove for a walk
    /// of the same asymptotics. (The constant-time swap-with-front trick
    /// needs indexed storage; an intrusive list cannot reach a uniformly
    /// random node without walking. Queues are `O(1)` long under any
    /// stable load, so the walk only matters in instability probes.)
    /// Residual order is preserved — under uniform random picks it would
    /// not matter anyway.
    pub fn take_nth<T: Copy>(&mut self, pool: &mut SlabPool<T>, n: usize) -> Option<T> {
        if n >= self.len as usize {
            return None;
        }
        if n == 0 {
            return self.pop_front(pool);
        }
        if n + 1 == self.len as usize {
            return self.pop_back(pool);
        }
        let idx = if n <= self.len as usize / 2 {
            let mut idx = self.head;
            for _ in 0..n {
                idx = pool.slots[idx as usize].next;
            }
            idx
        } else {
            let mut idx = self.tail;
            for _ in 0..(self.len as usize - 1 - n) {
                idx = pool.slots[idx as usize].prev;
            }
            idx
        };
        // Interior node: both neighbours exist (head/tail handled above).
        let Slot { next, prev, .. } = pool.slots[idx as usize];
        pool.slots[prev as usize].next = next;
        pool.slots[next as usize].prev = prev;
        self.len -= 1;
        Some(pool.release(idx))
    }

    /// The head item without removing it.
    pub fn front<T: Copy>(self, pool: &SlabPool<T>) -> Option<T> {
        if self.head == NIL {
            None
        } else {
            Some(pool.slots[self.head as usize].item)
        }
    }

    /// Iterate the items in arrival order (head to tail).
    pub fn iter<T: Copy>(self, pool: &SlabPool<T>) -> ArcFifoIter<'_, T> {
        ArcFifoIter {
            pool,
            at: self.head,
        }
    }
}

/// Indexed per-arc storage for constant-time uniform random picks.
///
/// [`ArcFifo::take_nth`] walks `O(min(n, len−n))` links per pick because a
/// uniformly random node of an intrusive list cannot be reached without
/// walking. When [`crate::config::ContentionPolicy::Random`] is selected —
/// and only then — the hypercube simulator swaps each arc's waiting list
/// for one of these: a plain growable array where `take(i)` is
/// `swap_remove`, i.e. `O(1)` regardless of queue length. The swap
/// scrambles residual *order*, which FIFO/LIFO would care about but a
/// policy that picks uniformly at random does not: every subsequent pick
/// is uniform over the surviving set whatever its arrangement. Under
/// unstable loads (the only regime with long queues — exactly where the
/// Random ablation probes run) this removes the linked-list walk that the
/// ROADMAP flagged after PR 1.
///
/// Steady state performs zero allocation: the backing `Vec` retains its
/// high-water capacity.
#[derive(Clone, Debug, Default)]
pub struct ArcBag<T> {
    items: Vec<T>,
}

impl<T> ArcBag<T> {
    /// Empty bag.
    pub const fn new() -> ArcBag<T> {
        ArcBag { items: Vec::new() }
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bag is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert an item. `O(1)` amortised.
    #[inline]
    pub fn insert(&mut self, item: T) {
        self.items.push(item);
    }

    /// Remove and return the item at position `n` (`swap_remove`), `O(1)`.
    /// For `n` drawn uniformly from `0..len`, the removed item is a
    /// uniformly random member of the bag.
    #[inline]
    pub fn take(&mut self, n: usize) -> Option<T> {
        if n < self.items.len() {
            Some(self.items.swap_remove(n))
        } else {
            None
        }
    }
}

/// Iterator over an [`ArcFifo`]'s items in arrival order.
pub struct ArcFifoIter<'a, T: Copy> {
    pool: &'a SlabPool<T>,
    at: u32,
}

impl<T: Copy> Iterator for ArcFifoIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.at == NIL {
            return None;
        }
        let slot = &self.pool.slots[self.at as usize];
        self.at = slot.next;
        Some(slot.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_roundtrip() {
        let mut pool = SlabPool::with_capacity(8);
        let mut q = ArcFifo::new();
        for i in 0..10 {
            q.push_back(&mut pool, i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(pool.len(), 10);
        for i in 0..10 {
            assert_eq!(q.pop_front(&mut pool), Some(i));
        }
        assert_eq!(q.pop_front(&mut pool), None);
        assert!(q.is_empty() && pool.is_empty());
    }

    #[test]
    fn lifo_order() {
        let mut pool = SlabPool::with_capacity(4);
        let mut q = ArcFifo::new();
        for i in 0..5 {
            q.push_back(&mut pool, i);
        }
        for i in (0..5).rev() {
            assert_eq!(q.pop_back(&mut pool), Some(i));
        }
        assert_eq!(q.pop_back(&mut pool), None);
    }

    #[test]
    fn slots_recycle_zero_steady_state_growth() {
        let mut pool = SlabPool::with_capacity(0);
        let mut q = ArcFifo::new();
        for round in 0..1000 {
            for i in 0..8 {
                q.push_back(&mut pool, round * 8 + i);
            }
            for _ in 0..8 {
                q.pop_front(&mut pool);
            }
        }
        // High-water mark, not 8000: every slot was recycled.
        assert_eq!(pool.capacity_used(), 8);
    }

    #[test]
    fn many_lists_share_one_pool() {
        let mut pool = SlabPool::with_capacity(16);
        let mut a = ArcFifo::new();
        let mut b = ArcFifo::new();
        for i in 0..6 {
            if i % 2 == 0 {
                a.push_back(&mut pool, i);
            } else {
                b.push_back(&mut pool, i);
            }
        }
        assert_eq!(a.iter(&pool).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(b.iter(&pool).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(a.pop_front(&mut pool), Some(0));
        assert_eq!(b.pop_back(&mut pool), Some(5));
        assert_eq!(a.iter(&pool).collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(b.iter(&pool).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn take_nth_matches_vecdeque_remove() {
        use std::collections::VecDeque;
        let mut pool = SlabPool::with_capacity(32);
        let mut q = ArcFifo::new();
        let mut model: VecDeque<u32> = VecDeque::new();
        // Deterministic pseudo-random interleaving of pushes and removals.
        let mut x = 0x12345u64;
        let mut rng = move |m: usize| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 33) as usize) % m
        };
        let mut serial = 0u32;
        for _ in 0..5000 {
            if model.is_empty() || rng(3) > 0 {
                q.push_back(&mut pool, serial);
                model.push_back(serial);
                serial += 1;
            } else {
                let n = rng(model.len());
                assert_eq!(q.take_nth(&mut pool, n), model.remove(n));
            }
            assert_eq!(q.len(), model.len());
        }
        assert_eq!(q.iter(&pool).collect::<Vec<_>>(), Vec::from(model));
    }

    #[test]
    fn take_nth_out_of_range() {
        let mut pool = SlabPool::with_capacity(2);
        let mut q = ArcFifo::new();
        q.push_back(&mut pool, 1);
        assert_eq!(q.take_nth(&mut pool, 1), None);
        assert_eq!(q.take_nth(&mut pool, 0), Some(1));
        assert_eq!(q.take_nth(&mut pool, 0), None);
    }

    #[test]
    fn arc_bag_uniform_picks() {
        // Regression test for the Random-contention fallback: repeatedly
        // fill a bag with 8 labelled items and remove them one by one with
        // uniform position draws; every label must be *first*-picked
        // equally often. This catches both biased indexing and any
        // accidental order dependence introduced by `swap_remove`.
        use hyperroute_desim::SimRng;
        let mut rng = SimRng::new(0xBA6);
        let k = 8usize;
        let rounds = 40_000usize;
        let mut first_picks = vec![0u64; k];
        for _ in 0..rounds {
            let mut bag = ArcBag::new();
            for label in 0..k {
                bag.insert(label);
            }
            let first = bag.take(rng.below(bag.len())).unwrap();
            first_picks[first] += 1;
            while !bag.is_empty() {
                bag.take(rng.below(bag.len())).unwrap();
            }
        }
        let expect = rounds as f64 / k as f64;
        for (label, &count) in first_picks.iter().enumerate() {
            let rel = (count as f64 - expect).abs() / expect;
            assert!(
                rel < 0.05,
                "label {label} first-picked {count} times vs expected {expect}"
            );
        }
    }

    #[test]
    fn arc_bag_take_out_of_range() {
        let mut bag = ArcBag::new();
        bag.insert(1);
        assert_eq!(bag.take(1), None);
        assert_eq!(bag.take(0), Some(1));
        assert!(bag.is_empty());
        assert_eq!(bag.take(0), None::<i32>);
    }

    #[test]
    fn front_peeks() {
        let mut pool = SlabPool::with_capacity(2);
        let mut q = ArcFifo::new();
        assert_eq!(q.front(&pool), None::<u32>);
        q.push_back(&mut pool, 9);
        q.push_back(&mut pool, 10);
        assert_eq!(q.front(&pool), Some(9));
        assert_eq!(q.len(), 2);
    }
}
