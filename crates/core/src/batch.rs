//! Static batch routing: route a fixed set of packets greedily from time 0
//! (no further arrivals).
//!
//! This is the inner step of the §2.3 pipelined Valiant–Brebner scheme —
//! "all selected packets are routed as in the first phase of \[VaB81\]" —
//! and doubles as a static permutation-routing facility: \[VaB81\] showed the
//! completion time of a random batch is `≤ R·d` with high probability for a
//! constant `R`.

use crate::packet::sample_flip_mask;
use hyperroute_desim::{EventQueue, SimRng};
use std::collections::VecDeque;

/// Result of routing one batch.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Completion time of each input packet (0.0 for origin = destination).
    pub completion: Vec<f64>,
    /// Time the last packet arrived (`max(completion)`).
    pub makespan: f64,
    /// Total arc traversals.
    pub total_hops: u64,
}

#[derive(Clone, Copy, Debug)]
struct BPacket {
    id: u32,
    remaining: u32,
}

/// Route `packets` (pairs of origin/destination node ids) greedily on the
/// `d`-cube, all released at time 0. Dimensions are crossed in increasing
/// index order; FIFO per arc; ties broken by input order (deterministic).
pub fn route_batch_greedy(d: usize, packets: &[(u32, u32)]) -> BatchResult {
    assert!((1..=26).contains(&d));
    let nodes = 1u32 << d;
    let mut queues: Vec<VecDeque<BPacket>> = vec![VecDeque::new(); (d as u32 * nodes) as usize];
    let mut busy = vec![false; (d as u32 * nodes) as usize];
    let mut events: EventQueue<u32> = EventQueue::with_capacity(packets.len());
    let mut completion = vec![0.0f64; packets.len()];
    let mut total_hops = 0u64;

    let enqueue = |queues: &mut Vec<VecDeque<BPacket>>,
                   busy: &mut Vec<bool>,
                   events: &mut EventQueue<u32>,
                   t: f64,
                   node: u32,
                   pkt: BPacket| {
        debug_assert!(pkt.remaining != 0);
        let dim = pkt.remaining.trailing_zeros() as usize;
        let arc = node as usize * d + dim;
        let next = BPacket {
            id: pkt.id,
            remaining: pkt.remaining & !(1 << dim),
        };
        queues[arc].push_back(next);
        if !busy[arc] {
            busy[arc] = true;
            events.push(t + 1.0, arc as u32);
        }
    };

    for (i, &(origin, dest)) in packets.iter().enumerate() {
        assert!(origin < nodes && dest < nodes, "node out of range");
        let remaining = origin ^ dest;
        if remaining != 0 {
            enqueue(
                &mut queues,
                &mut busy,
                &mut events,
                0.0,
                origin,
                BPacket {
                    id: i as u32,
                    remaining,
                },
            );
        }
    }

    let mut makespan = 0.0f64;
    while let Some((t, arc)) = events.pop() {
        let arc = arc as usize;
        let pkt = queues[arc].pop_front().expect("completion on empty queue");
        if queues[arc].is_empty() {
            busy[arc] = false;
        } else {
            events.push(t + 1.0, arc as u32);
        }
        total_hops += 1;
        let node = (arc / d) as u32 ^ (1u32 << (arc % d));
        if pkt.remaining == 0 {
            completion[pkt.id as usize] = t;
            if t > makespan {
                makespan = t;
            }
        } else {
            enqueue(&mut queues, &mut busy, &mut events, t, node, pkt);
        }
    }

    BatchResult {
        completion,
        makespan,
        total_hops,
    }
}

/// A uniformly random permutation batch: node `i` sends one packet to
/// `σ(i)` for a uniform permutation `σ` (the \[Val82\] permutation task).
pub fn random_permutation_batch(d: usize, rng: &mut SimRng) -> Vec<(u32, u32)> {
    let n = 1u32 << d;
    let mut dests: Vec<u32> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n as usize).rev() {
        let j = rng.below(i + 1);
        dests.swap(i, j);
    }
    (0..n).map(|i| (i, dests[i as usize])).collect()
}

/// A random batch with one packet per node and bit-flip destinations with
/// probability `p` (the §2.3 round workload).
pub fn random_flip_batch(d: usize, p: f64, rng: &mut SimRng) -> Vec<(u32, u32)> {
    let n = 1u32 << d;
    (0..n)
        .map(|i| (i, i ^ sample_flip_mask(rng, d, p)))
        .collect()
}

/// Empirical estimate of the \[VaB81\] round-length constant `R`: the mean
/// makespan of `reps` random batches divided by `d`.
pub fn estimate_round_constant(d: usize, p: f64, reps: usize, seed: u64) -> f64 {
    let mut rng = SimRng::new(seed);
    let mut total = 0.0;
    for _ in 0..reps {
        let batch = random_flip_batch(d, p, &mut rng);
        total += route_batch_greedy(d, &batch).makespan;
    }
    total / (reps as f64 * d as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_takes_hamming_distance() {
        let r = route_batch_greedy(4, &[(0b0000, 0b1011)]);
        assert_eq!(r.completion[0], 3.0);
        assert_eq!(r.makespan, 3.0);
        assert_eq!(r.total_hops, 3);
    }

    #[test]
    fn self_destination_completes_at_zero() {
        let r = route_batch_greedy(3, &[(5, 5)]);
        assert_eq!(r.completion[0], 0.0);
        assert_eq!(r.total_hops, 0);
    }

    #[test]
    fn two_packets_contending_for_one_arc() {
        // Both need arc (0, dim 0): second waits one unit.
        let r = route_batch_greedy(2, &[(0, 1), (0, 1)]);
        let mut c = r.completion.clone();
        c.sort_by(f64::total_cmp);
        assert_eq!(c, vec![1.0, 2.0]);
    }

    #[test]
    fn bit_reversal_style_worst_case_still_finishes() {
        // All nodes send to their complement: full d hops each, disjoint
        // canonical paths ⇒ makespan exactly d.
        let d = 5;
        let n = 1u32 << d;
        let batch: Vec<(u32, u32)> = (0..n).map(|i| (i, !i & (n - 1))).collect();
        let r = route_batch_greedy(d, &batch);
        assert_eq!(r.makespan, d as f64);
        assert_eq!(r.total_hops, (n as u64) * d as u64);
    }

    #[test]
    fn random_permutation_is_permutation() {
        let mut rng = SimRng::new(3);
        let batch = random_permutation_batch(4, &mut rng);
        let mut dests: Vec<u32> = batch.iter().map(|&(_, d)| d).collect();
        dests.sort_unstable();
        assert_eq!(dests, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn random_permutation_completes_within_constant_times_d() {
        // [VaB81]: completion ≤ R·d whp; empirically R is small.
        let mut rng = SimRng::new(7);
        for _ in 0..5 {
            let batch = random_permutation_batch(6, &mut rng);
            let r = route_batch_greedy(6, &batch);
            assert!(
                r.makespan <= 4.0 * 6.0,
                "permutation took {} > 4d",
                r.makespan
            );
            assert!(r.makespan >= 1.0);
        }
    }

    #[test]
    fn estimated_round_constant_is_order_one() {
        let r = estimate_round_constant(6, 0.5, 10, 11);
        assert!(r > 0.4 && r < 4.0, "R estimate {r}");
    }

    #[test]
    fn batch_routing_is_deterministic() {
        let mut rng = SimRng::new(5);
        let batch = random_flip_batch(5, 0.5, &mut rng);
        let a = route_batch_greedy(5, &batch);
        let b = route_batch_greedy(5, &batch);
        assert_eq!(a.completion, b.completion);
    }
}
