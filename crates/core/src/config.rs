//! Shared simulation configuration types and their validation errors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A structured configuration-validation error.
///
/// Returned by the [`crate::scenario::Scenario`] builder and by the
/// fallible constructors in this module — every malformed spec surfaces
/// as one of these before any engine is built.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ConfigError {
    /// Topology dimension outside the supported range.
    Dimension {
        /// The rejected dimension.
        dim: usize,
        /// Smallest accepted value.
        min: usize,
        /// Largest accepted value.
        max: usize,
    },
    /// Per-node arrival rate is negative, NaN or infinite.
    Lambda(
        /// The rejected rate.
        f64,
    ),
    /// Bit-flip probability outside `[0, 1]`.
    FlipProbability(
        /// The rejected probability.
        f64,
    ),
    /// Measurement window is empty, inverted or non-finite.
    Window {
        /// Configured generation horizon.
        horizon: f64,
        /// Configured warm-up cutoff.
        warmup: f64,
    },
    /// Slotted arrivals need at least one slot per unit time.
    SlotsPerUnit,
    /// Destination pmf has the wrong number of entries.
    PmfLength {
        /// Number of entries supplied.
        len: usize,
        /// Required length (`2^d`), when the dimension is known.
        expected: Option<usize>,
    },
    /// Destination pmf entry is negative, NaN or infinite.
    PmfEntry {
        /// Index of the offending entry.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// Destination pmf does not sum to 1.
    PmfSum(
        /// The actual sum.
        f64,
    ),
    /// Pipelined scheme needs at least two rounds.
    Rounds(
        /// The rejected round count.
        usize,
    ),
    /// Ring node count outside the supported range.
    RingSize {
        /// The rejected node count.
        nodes: usize,
        /// Smallest accepted value.
        min: usize,
        /// Largest accepted value.
        max: usize,
    },
    /// Torus shape outside the supported range (`k >= 3`, `d >= 1`,
    /// `k^d <= 2^26`).
    TorusShape {
        /// The rejected radix `k`.
        radix: usize,
        /// The rejected dimension count `d`.
        dim: usize,
    },
    /// Weighted-node destination pmf has the wrong number of entries.
    NodePmfLength {
        /// Number of entries supplied.
        len: usize,
        /// Required length (the topology's node count).
        expected: usize,
    },
    /// Power-law destination exponent is negative, NaN or infinite.
    PowerLawExponent(
        /// The rejected exponent.
        f64,
    ),
    /// Seeded fault fraction outside `[0, 1]`.
    FaultFraction(
        /// The rejected fraction.
        f64,
    ),
    /// Explicit dead-arc index outside the topology's arc space.
    FaultArc {
        /// The rejected arc index.
        index: usize,
        /// Number of arcs the topology has.
        num_arcs: usize,
    },
    /// Retry fallback configured with a zero budget (a packet must be
    /// allowed at least one paid deflection to differ from `Drop`).
    RetryBudget,
    /// Escape fallback configured with a zero TTL (a stuck packet must
    /// be allowed at least one paid escape hop to differ from `Drop`).
    EscapeTtl,
    /// A sparse-generator parameter outside its supported range.
    GeneratorParam {
        /// Which parameter was rejected.
        param: String,
        /// The rejected value.
        value: f64,
        /// Human-readable statement of the accepted range.
        requirement: String,
    },
    /// Dynamic fault-arrival rate is negative, NaN or infinite.
    FaultRate(
        /// The rejected rate.
        f64,
    ),
    /// The requested combination is meaningless for the chosen topology
    /// (e.g. a routing scheme on the butterfly, whose paths are unique).
    Unsupported {
        /// The topology that rejected the setting.
        topology: String,
        /// What was requested.
        feature: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Dimension { dim, min, max } => {
                write!(f, "dimension {dim} outside supported range {min}..={max}")
            }
            ConfigError::Lambda(l) => {
                write!(f, "arrival rate λ = {l} must be finite and non-negative")
            }
            ConfigError::FlipProbability(p) => {
                write!(f, "flip probability p = {p} outside [0, 1]")
            }
            ConfigError::Window { horizon, warmup } => write!(
                f,
                "measurement window needs finite 0 <= warmup < horizon, \
                 got warmup = {warmup}, horizon = {horizon}"
            ),
            ConfigError::SlotsPerUnit => {
                write!(f, "slotted model needs at least one slot per unit time")
            }
            ConfigError::PmfLength { len, expected } => match expected {
                Some(e) => write!(f, "destination pmf has {len} entries, needs 2^d = {e}"),
                None => write!(
                    f,
                    "destination pmf has {len} entries, needs a power of two covering 2^d masks"
                ),
            },
            ConfigError::PmfEntry { index, value } => write!(
                f,
                "destination pmf entry {index} = {value} must be finite and non-negative"
            ),
            ConfigError::PmfSum(s) => {
                write!(f, "destination pmf sums to {s}, must sum to 1")
            }
            ConfigError::Rounds(r) => {
                write!(f, "pipelined simulation needs at least 2 rounds, got {r}")
            }
            ConfigError::RingSize { nodes, min, max } => {
                write!(f, "ring size {nodes} outside supported range {min}..={max}")
            }
            ConfigError::TorusShape { radix, dim } => write!(
                f,
                "torus shape {radix}^{dim} unsupported (need radix >= 3, dim >= 1, \
                 at most 2^26 nodes)"
            ),
            ConfigError::NodePmfLength { len, expected } => write!(
                f,
                "node destination pmf has {len} entries, needs one per node = {expected}"
            ),
            ConfigError::PowerLawExponent(a) => write!(
                f,
                "power-law destination exponent {a} must be finite and non-negative"
            ),
            ConfigError::FaultFraction(x) => {
                write!(f, "fault fraction {x} outside [0, 1]")
            }
            ConfigError::FaultArc { index, num_arcs } => write!(
                f,
                "explicit dead arc {index} outside the topology's arc space 0..{num_arcs}"
            ),
            ConfigError::RetryBudget => {
                write!(f, "retry fallback needs a budget of at least 1 deflection")
            }
            ConfigError::EscapeTtl => {
                write!(f, "escape fallback needs a TTL of at least 1 hop")
            }
            ConfigError::GeneratorParam {
                param,
                value,
                requirement,
            } => {
                write!(
                    f,
                    "generator parameter {param} = {value} invalid: {requirement}"
                )
            }
            ConfigError::FaultRate(r) => {
                write!(f, "fault arrival rate {r} must be finite and non-negative")
            }
            ConfigError::Unsupported { topology, feature } => {
                write!(f, "the {topology} topology does not support {feature}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which routing scheme drives the hypercube simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scheme {
    /// The paper's scheme: cross the required dimensions in increasing
    /// index order (canonical paths) — §3.
    #[default]
    Greedy,
    /// Ablation: cross the required dimensions in an order chosen uniformly
    /// at random, one hop at a time. Still shortest-path and oblivious to
    /// traffic, but the network is no longer levelled, so the paper's proof
    /// technique does not apply to it (experiment E19 measures whether the
    /// *behaviour* changes).
    RandomOrder,
    /// Valiant–Brebner "mixing" (§5 discussion): route greedily to a
    /// uniformly random intermediate node, then greedily to the true
    /// destination. Doubles the expected path length but flattens any
    /// destination skew.
    TwoPhaseValiant,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scheme::Greedy => "greedy",
            Scheme::RandomOrder => "random-order",
            Scheme::TwoPhaseValiant => "two-phase-valiant",
        })
    }
}

impl Scheme {
    /// Human-readable name used in experiment tables.
    #[deprecated(since = "0.2.0", note = "format with `Display` instead")]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Greedy => "greedy",
            Scheme::RandomOrder => "random-order",
            Scheme::TwoPhaseValiant => "two-phase-valiant",
        }
    }
}

/// How packets are generated (paper §1.1 vs §3.4).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalModel {
    /// Continuous time: each node generates packets as an independent
    /// Poisson process with rate `λ`.
    #[default]
    Poisson,
    /// Slotted time: at each slot boundary (slot length `1/slots_per_unit`)
    /// each node generates a Poisson batch with mean `λ·r`.
    Slotted {
        /// Number of slots per unit time (`1/r`, must be ≥ 1).
        slots_per_unit: u32,
    },
}

impl ArrivalModel {
    /// Slot length `r` (1.0 for the continuous model, where it is unused).
    pub fn slot_length(self) -> f64 {
        match self {
            ArrivalModel::Poisson => 1.0,
            ArrivalModel::Slotted { slots_per_unit } => 1.0 / slots_per_unit as f64,
        }
    }

    /// Reject zero-slot configurations.
    pub fn validate(self) -> Result<(), ConfigError> {
        match self {
            ArrivalModel::Poisson => Ok(()),
            ArrivalModel::Slotted { slots_per_unit } if slots_per_unit >= 1 => Ok(()),
            ArrivalModel::Slotted { .. } => Err(ConfigError::SlotsPerUnit),
        }
    }
}

impl fmt::Display for ArrivalModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalModel::Poisson => f.write_str("poisson"),
            ArrivalModel::Slotted { slots_per_unit } => {
                write!(f, "slotted({slots_per_unit}/unit)")
            }
        }
    }
}

/// Which waiting packet an arc serves next (ablation of the paper's FIFO
/// contention rule, "priority to the one that arrived first").
///
/// All three policies are non-preemptive and work-conserving, so the mean
/// delay is (nearly) policy-independent while the delay *distribution*
/// changes sharply — experiment E22 measures both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ContentionPolicy {
    /// The paper's rule: first-come, first-served.
    #[default]
    Fifo,
    /// Last-come, first-served (stack order).
    Lifo,
    /// Serve a uniformly random waiting packet.
    Random,
}

impl fmt::Display for ContentionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ContentionPolicy::Fifo => "fifo",
            ContentionPolicy::Lifo => "lifo",
            ContentionPolicy::Random => "random",
        })
    }
}

impl ContentionPolicy {
    /// Human-readable name used in experiment tables.
    #[deprecated(since = "0.2.0", note = "format with `Display` instead")]
    pub fn name(self) -> &'static str {
        match self {
            ContentionPolicy::Fifo => "fifo",
            ContentionPolicy::Lifo => "lifo",
            ContentionPolicy::Random => "random",
        }
    }
}

/// Destination distribution (all translation-invariant, as required by the
/// §2.2 generalisation: `Pr[dest = z | origin = x]` depends on `x ⊕ z`
/// only).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum DestinationSpec {
    /// Eq. (1): flip each bit independently with the config's `p`
    /// (Lemma 1's product form). On the node-addressed graph topologies
    /// (ring, torus, de Bruijn) this default means **uniform over all
    /// nodes** (`p` is ignored).
    #[default]
    BitFlip,
    /// Arbitrary pmf over XOR masks `0..2^d` (must have length `2^d` and
    /// sum to 1). The per-dimension load factors and the generalised
    /// stability condition `λ·max_j p_j < 1` come from
    /// `hyperroute_analysis::load::dimension_load_factors`.
    ///
    /// Construct with [`DestinationSpec::mask_pmf`], which validates the
    /// entries up front.
    MaskPmf(Vec<f64>),
    /// Arbitrary pmf over **absolute destination nodes** (one entry per
    /// node, summing to 1) — the reusable weighted-node arm for the
    /// graph topologies (ring, torus, de Bruijn). A destination equal to
    /// the origin self-delivers with zero hops, like the uniform law's
    /// `1/n` mass.
    ///
    /// Construct with [`DestinationSpec::node_pmf`], which validates the
    /// entries up front.
    NodePmf(Vec<f64>),
    /// Papillon-style skewed ring demand (ring only): the destination is
    /// `origin + ℓ (mod n)` with the clockwise offset `ℓ` drawn from
    /// `P(ℓ) ∝ ℓ^-alpha` over `ℓ ∈ 1..n` — translation-invariant,
    /// never self-destined, harmonic for `alpha = 1` (the small-world /
    /// DHT demand Abraham et al. route greedily under).
    RingPowerLaw {
        /// Skew exponent `α >= 0` (`0` = uniform over non-self nodes).
        alpha: f64,
    },
}

/// Tolerance for the pmf unit-sum check (matches the analysis crate's).
const PMF_SUM_TOLERANCE: f64 = 1e-9;

/// Workload + measurement-window validation shared by every topology arm
/// of `Scenario::validate` — one implementation, so the rules can never
/// drift between topologies.
pub(crate) fn check_workload_window(
    lambda: f64,
    p: f64,
    horizon: f64,
    warmup: f64,
    arrivals: ArrivalModel,
) -> Result<(), ConfigError> {
    if !(lambda >= 0.0 && lambda.is_finite()) {
        return Err(ConfigError::Lambda(lambda));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(ConfigError::FlipProbability(p));
    }
    if !(horizon.is_finite() && warmup.is_finite() && horizon > warmup && warmup >= 0.0) {
        return Err(ConfigError::Window { horizon, warmup });
    }
    arrivals.validate()
}

/// Borrowed-field validation for the dimension-parameterised packet
/// simulators (hypercube/butterfly arms of `Scenario::validate`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_sim_fields(
    dim: usize,
    max_dim: usize,
    lambda: f64,
    p: f64,
    horizon: f64,
    warmup: f64,
    arrivals: ArrivalModel,
    dest: Option<&DestinationSpec>,
) -> Result<(), ConfigError> {
    if dim < 1 || dim > max_dim {
        return Err(ConfigError::Dimension {
            dim,
            min: 1,
            max: max_dim,
        });
    }
    check_workload_window(lambda, p, horizon, warmup, arrivals)?;
    match dest {
        Some(dest) => dest.validate(dim),
        None => Ok(()),
    }
}

/// Borrowed-slice pmf checks shared by [`DestinationSpec::mask_pmf`] and
/// [`DestinationSpec::validate`] — no allocation, so validating a dim-20
/// pmf (1M entries) does not copy it.
fn check_pmf(pmf: &[f64], expected: Option<usize>) -> Result<(), ConfigError> {
    let length_ok = match expected {
        Some(e) => pmf.len() == e,
        None => !pmf.is_empty() && pmf.len().is_power_of_two(),
    };
    if !length_ok {
        return Err(ConfigError::PmfLength {
            len: pmf.len(),
            expected,
        });
    }
    check_pmf_entries(pmf)
}

/// Entry/sum checks shared by mask and node pmfs (length rules differ).
fn check_pmf_entries(pmf: &[f64]) -> Result<(), ConfigError> {
    for (index, &value) in pmf.iter().enumerate() {
        if !value.is_finite() || value < 0.0 {
            return Err(ConfigError::PmfEntry { index, value });
        }
    }
    let sum: f64 = pmf.iter().sum();
    if (sum - 1.0).abs() > PMF_SUM_TOLERANCE {
        return Err(ConfigError::PmfSum(sum));
    }
    Ok(())
}

impl DestinationSpec {
    /// Validated construction of a [`DestinationSpec::MaskPmf`]: the pmf
    /// must have a power-of-two length (one entry per XOR mask of some
    /// dimension), finite non-negative entries, and unit sum.
    pub fn mask_pmf(pmf: Vec<f64>) -> Result<DestinationSpec, ConfigError> {
        check_pmf(&pmf, None)?;
        Ok(DestinationSpec::MaskPmf(pmf))
    }

    /// Validated construction of a [`DestinationSpec::NodePmf`]: finite
    /// non-negative entries with unit sum (the length is checked against
    /// the topology's node count at scenario validation).
    pub fn node_pmf(pmf: Vec<f64>) -> Result<DestinationSpec, ConfigError> {
        if pmf.is_empty() {
            return Err(ConfigError::NodePmfLength {
                len: 0,
                expected: 1,
            });
        }
        check_pmf_entries(&pmf)?;
        Ok(DestinationSpec::NodePmf(pmf))
    }

    /// Check this spec against a node-addressed graph topology with
    /// `nodes` nodes (ring / torus / de Bruijn arms of
    /// `Scenario::validate`). `BitFlip` means uniform there; `MaskPmf` is
    /// rejected by the caller before this runs.
    pub(crate) fn validate_nodes(&self, nodes: usize) -> Result<(), ConfigError> {
        match self {
            DestinationSpec::BitFlip => Ok(()),
            DestinationSpec::MaskPmf(_) => unreachable!("mask pmfs are hypercube-only"),
            DestinationSpec::NodePmf(pmf) => {
                if pmf.len() != nodes {
                    return Err(ConfigError::NodePmfLength {
                        len: pmf.len(),
                        expected: nodes,
                    });
                }
                check_pmf_entries(pmf)
            }
            DestinationSpec::RingPowerLaw { alpha } => {
                if alpha.is_finite() && *alpha >= 0.0 {
                    Ok(())
                } else {
                    Err(ConfigError::PowerLawExponent(*alpha))
                }
            }
        }
    }

    /// Check this spec against a concrete topology dimension `d` (re-runs
    /// the construction checks too, because the `MaskPmf` variant is still
    /// directly constructible). The node-addressed arms (`NodePmf`,
    /// `RingPowerLaw`) are not meaningful against a hypercube dimension
    /// and are rejected.
    pub fn validate(&self, dim: usize) -> Result<(), ConfigError> {
        match self {
            DestinationSpec::BitFlip => Ok(()),
            DestinationSpec::MaskPmf(pmf) => check_pmf(pmf, Some(1usize << dim)),
            DestinationSpec::NodePmf(_) | DestinationSpec::RingPowerLaw { .. } => {
                Err(ConfigError::Unsupported {
                    topology: "hypercube".to_string(),
                    feature: "node-addressed destination laws (mask pmfs instead)".to_string(),
                })
            }
        }
    }

    /// Papillon-style harmonic ring demand (`RingPowerLaw` with
    /// `alpha = 1`).
    pub fn ring_harmonic() -> DestinationSpec {
        DestinationSpec::RingPowerLaw { alpha: 1.0 }
    }

    /// Build the Eq.-(1)-style product pmf from per-dimension flip
    /// probabilities (a convenient way to construct skewed but structured
    /// distributions).
    ///
    /// Panics on malformed input (dimension outside `1..=20` or
    /// probabilities outside `[0, 1]`); use [`DestinationSpec::mask_pmf`]
    /// for fallible construction from raw entries.
    pub fn product_of_flips(per_dim: &[f64]) -> DestinationSpec {
        let d = per_dim.len();
        assert!((1..=20).contains(&d), "dimension out of range");
        assert!(per_dim.iter().all(|&q| (0.0..=1.0).contains(&q)));
        let n = 1usize << d;
        let mut pmf = vec![0.0f64; n];
        for (mask, slot) in pmf.iter_mut().enumerate() {
            let mut prob = 1.0;
            for (j, &q) in per_dim.iter().enumerate() {
                prob *= if (mask >> j) & 1 == 1 { q } else { 1.0 - q };
            }
            *slot = prob;
        }
        DestinationSpec::mask_pmf(pmf).expect("product pmf is valid by construction")
    }
}

/// Arc-failure mask of a faulty-network workload (Angel et al., *Routing
/// Complexity of Faulty Networks*): a set of dead directed arcs plus the
/// policy applied when a packet's greedy arc is dead.
///
/// Supported on the graph-routed topologies (ring, torus, de Bruijn, and
/// the hypercube under the canonical greedy scheme); the simulators count
/// a delivered/dropped split in the report's graph extension.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Which arcs are dead at the start of the run.
    pub mode: FaultMode,
    /// What a packet does when its greedy arc is dead.
    pub fallback: FaultFallback,
    /// Optional **dynamic** fault process: further arcs die mid-run at
    /// seeded exponential interarrival times, on top of the static
    /// `mode` mask. `None` (the default, omitted from serialised specs)
    /// keeps the fault pattern fixed at `t = 0`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dynamics: Option<FaultArrivals>,
}

/// A seeded Poisson process of arc deaths for [`FaultSpec::dynamics`]:
/// every `Exp(rate)` time units another uniformly-chosen arc dies
/// (already-dead picks are idempotent, so the kill rate tapers as the
/// mask fills). The process has its own RNG seed, independent of both
/// the traffic seed and the static-mask seed, so sweeps can vary any of
/// the three alone.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultArrivals {
    /// Mean arc deaths per unit time (must be finite and non-negative;
    /// `0` disables the process).
    pub rate: f64,
    /// Seed of the dedicated fault-arrival RNG.
    pub seed: u64,
}

/// How the dead-arc set of a [`FaultSpec`] is chosen.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultMode {
    /// Kill `round(fraction · num_arcs)` arcs chosen uniformly without
    /// replacement by a dedicated RNG — independent of the run seed, so
    /// sweeps can vary traffic over a fixed fault pattern (or vice
    /// versa).
    Seeded {
        /// Fraction of arcs to kill, in `[0, 1]`.
        fraction: f64,
        /// Seed of the fault-pattern RNG.
        seed: u64,
    },
    /// Kill exactly these dense arc indices.
    Explicit {
        /// The dead arcs (duplicates are idempotent).
        arcs: Vec<usize>,
    },
}

/// Fallback applied when a packet's greedy arc is **unavailable** — dead
/// under a fault mask, or absent entirely because metric greedy on a
/// sparse topology hit a local minimum. The arms span the free/paid ×
/// single/multi recovery space; the `hyperroute-core` crate docs walk
/// through them on a worked butterfly example.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FaultFallback {
    /// Deterministically scan the node's other outgoing arcs in dense
    /// index order and take the first **live** arc whose head is strictly
    /// closer to the destination (shortest-path progress is preserved, so
    /// routes still terminate); drop the packet if none exists.
    #[default]
    Detour,
    /// Drop the packet immediately.
    Drop,
    /// Detour when a free (strict-progress) live arc exists; otherwise
    /// spend one unit of the packet's deflection budget on **any** live
    /// arc out of the node — scanned dense-index-first, then the
    /// topology's ranked alternates (which on the butterfly reach the
    /// level-`d` wrap back into a fresh pass). A packet whose budget is
    /// exhausted with no free arc is dropped, so routes still terminate.
    Retry {
        /// Paid (non-progress) deflections allowed per packet, `>= 1`.
        budget: u16,
    },
    /// Consult the topology's **ranked alternate arcs**
    /// (`RoutingTopology::alternate_arcs`) and take the first live one —
    /// free when it makes strict progress, otherwise one of a bounded
    /// number of paid deflections per packet; drop when no ranked
    /// alternate is live or the deflection bound is spent.
    Multipath,
    /// GOAFR-style last-resort escape for **metric-greedy** local minima
    /// (and dead greedy arcs generally): forward to the live
    /// out-neighbour closest to the destination even when that regresses,
    /// remembering the distance where the walk got stuck. Regressing
    /// hops are paid against a per-packet TTL; the packet leaves escape
    /// mode the moment it reaches a node strictly closer than the entry
    /// point and resumes plain greedy. Drops when the TTL is spent or no
    /// live out-arc exists (a dead end).
    Escape {
        /// Paid (non-progress) escape hops allowed per packet, `>= 1`.
        ttl: u16,
    },
}

impl FaultSpec {
    /// Check the spec against a topology with `num_arcs` arcs.
    pub fn validate(&self, num_arcs: usize) -> Result<(), ConfigError> {
        match &self.mode {
            FaultMode::Seeded { fraction, .. } => {
                if !(0.0..=1.0).contains(fraction) {
                    return Err(ConfigError::FaultFraction(*fraction));
                }
            }
            FaultMode::Explicit { arcs } => {
                if let Some(&index) = arcs.iter().find(|&&a| a >= num_arcs) {
                    return Err(ConfigError::FaultArc { index, num_arcs });
                }
            }
        }
        if matches!(self.fallback, FaultFallback::Retry { budget: 0 }) {
            return Err(ConfigError::RetryBudget);
        }
        if matches!(self.fallback, FaultFallback::Escape { ttl: 0 }) {
            return Err(ConfigError::EscapeTtl);
        }
        if let Some(FaultArrivals { rate, .. }) = self.dynamics {
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(ConfigError::FaultRate(rate));
            }
        }
        Ok(())
    }

    /// Whether any arc can ever be dead under this spec — `false` only
    /// for a statically-empty mask with no dynamic arrivals.
    pub fn can_kill(&self) -> bool {
        let static_kill = match &self.mode {
            FaultMode::Seeded { fraction, .. } => *fraction > 0.0,
            FaultMode::Explicit { arcs } => !arcs.is_empty(),
        };
        static_kill || self.dynamics.is_some_and(|d| d.rate > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_unique() {
        let names = [
            Scheme::Greedy.to_string(),
            Scheme::RandomOrder.to_string(),
            Scheme::TwoPhaseValiant.to_string(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_name_matches_display() {
        for scheme in [Scheme::Greedy, Scheme::RandomOrder, Scheme::TwoPhaseValiant] {
            assert_eq!(scheme.name(), scheme.to_string());
        }
        for policy in [
            ContentionPolicy::Fifo,
            ContentionPolicy::Lifo,
            ContentionPolicy::Random,
        ] {
            assert_eq!(policy.name(), policy.to_string());
        }
    }

    #[test]
    fn slot_lengths() {
        assert_eq!(ArrivalModel::Poisson.slot_length(), 1.0);
        assert_eq!(
            ArrivalModel::Slotted { slots_per_unit: 4 }.slot_length(),
            0.25
        );
    }

    #[test]
    fn arrival_model_validation() {
        assert!(ArrivalModel::Poisson.validate().is_ok());
        assert!(ArrivalModel::Slotted { slots_per_unit: 1 }
            .validate()
            .is_ok());
        assert_eq!(
            ArrivalModel::Slotted { slots_per_unit: 0 }.validate(),
            Err(ConfigError::SlotsPerUnit)
        );
    }

    #[test]
    fn defaults_match_paper_model() {
        assert_eq!(Scheme::default(), Scheme::Greedy);
        assert_eq!(ArrivalModel::default(), ArrivalModel::Poisson);
        assert_eq!(ContentionPolicy::default(), ContentionPolicy::Fifo);
        assert_eq!(DestinationSpec::default(), DestinationSpec::BitFlip);
    }

    #[test]
    fn product_of_flips_recovers_eq1() {
        // Uniform per-dimension probability q reproduces Eq. (1)'s
        // p^|mask| (1-p)^(d-|mask|).
        let q = 0.3f64;
        let DestinationSpec::MaskPmf(pmf) = DestinationSpec::product_of_flips(&[q; 3]) else {
            panic!("wrong variant");
        };
        assert_eq!(pmf.len(), 8);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for (mask, &prob) in pmf.iter().enumerate() {
            let k = (mask as u32).count_ones() as i32;
            let expect = q.powi(k) * (1.0 - q).powi(3 - k);
            assert!((prob - expect).abs() < 1e-12, "mask {mask}");
        }
    }

    #[test]
    fn skewed_product_pmf() {
        // Dim 0 always flips: masks without bit 0 have probability 0.
        let DestinationSpec::MaskPmf(pmf) = DestinationSpec::product_of_flips(&[1.0, 0.25]) else {
            panic!("wrong variant");
        };
        assert_eq!(pmf[0b00], 0.0);
        assert_eq!(pmf[0b10], 0.0);
        assert!((pmf[0b01] - 0.75).abs() < 1e-12);
        assert!((pmf[0b11] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mask_pmf_rejects_bad_lengths() {
        assert!(matches!(
            DestinationSpec::mask_pmf(vec![]),
            Err(ConfigError::PmfLength { len: 0, .. })
        ));
        assert!(matches!(
            DestinationSpec::mask_pmf(vec![0.5, 0.3, 0.2]),
            Err(ConfigError::PmfLength { len: 3, .. })
        ));
        assert!(DestinationSpec::mask_pmf(vec![0.25; 4]).is_ok());
    }

    #[test]
    fn mask_pmf_rejects_bad_entries() {
        assert!(matches!(
            DestinationSpec::mask_pmf(vec![1.5, -0.5]),
            Err(ConfigError::PmfEntry { index: 1, .. })
        ));
        assert!(matches!(
            DestinationSpec::mask_pmf(vec![f64::NAN, 1.0]),
            Err(ConfigError::PmfEntry { index: 0, .. })
        ));
        assert!(matches!(
            DestinationSpec::mask_pmf(vec![0.9, 0.3]),
            Err(ConfigError::PmfSum(_))
        ));
    }

    #[test]
    fn validate_against_dimension() {
        let spec = DestinationSpec::mask_pmf(vec![0.25; 4]).unwrap();
        assert!(spec.validate(2).is_ok());
        assert_eq!(
            spec.validate(3),
            Err(ConfigError::PmfLength {
                len: 4,
                expected: Some(8),
            })
        );
        assert!(DestinationSpec::BitFlip.validate(12).is_ok());
        // Directly-constructed malformed pmfs are caught by validate too.
        let bad = DestinationSpec::MaskPmf(vec![0.7, 0.7]);
        assert_eq!(bad.validate(1), Err(ConfigError::PmfSum(1.4)));
    }

    #[test]
    fn node_pmf_validation() {
        assert!(matches!(
            DestinationSpec::node_pmf(vec![]),
            Err(ConfigError::NodePmfLength { len: 0, .. })
        ));
        assert!(matches!(
            DestinationSpec::node_pmf(vec![0.5, 0.4]),
            Err(ConfigError::PmfSum(_))
        ));
        let spec = DestinationSpec::node_pmf(vec![0.5, 0.25, 0.25]).unwrap();
        assert!(spec.validate_nodes(3).is_ok());
        assert_eq!(
            spec.validate_nodes(4),
            Err(ConfigError::NodePmfLength {
                len: 3,
                expected: 4,
            })
        );
        // Node-addressed laws are rejected against a hypercube dimension.
        assert!(matches!(
            spec.validate(2),
            Err(ConfigError::Unsupported { .. })
        ));
    }

    #[test]
    fn power_law_validation() {
        assert!(DestinationSpec::ring_harmonic().validate_nodes(8).is_ok());
        assert!(matches!(
            DestinationSpec::RingPowerLaw { alpha: f64::NAN }.validate_nodes(8),
            Err(ConfigError::PowerLawExponent(a)) if a.is_nan()
        ));
        assert!(matches!(
            DestinationSpec::RingPowerLaw { alpha: -1.0 }.validate_nodes(8),
            Err(ConfigError::PowerLawExponent(_))
        ));
    }

    #[test]
    fn fault_spec_validation() {
        let ok = FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 0.25,
                seed: 7,
            },
            fallback: FaultFallback::Detour,
            dynamics: None,
        };
        assert!(ok.validate(64).is_ok());
        let bad_fraction = FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 1.5,
                seed: 7,
            },
            fallback: FaultFallback::Drop,
            dynamics: None,
        };
        assert_eq!(
            bad_fraction.validate(64),
            Err(ConfigError::FaultFraction(1.5))
        );
        let bad_arc = FaultSpec {
            mode: FaultMode::Explicit { arcs: vec![3, 64] },
            fallback: FaultFallback::Drop,
            dynamics: None,
        };
        assert_eq!(
            bad_arc.validate(64),
            Err(ConfigError::FaultArc {
                index: 64,
                num_arcs: 64,
            })
        );
    }

    #[test]
    fn retry_and_dynamics_validation() {
        let base = FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 0.1,
                seed: 7,
            },
            fallback: FaultFallback::Retry { budget: 3 },
            dynamics: None,
        };
        assert!(base.validate(64).is_ok());
        let zero_budget = FaultSpec {
            fallback: FaultFallback::Retry { budget: 0 },
            ..base.clone()
        };
        assert_eq!(zero_budget.validate(64), Err(ConfigError::RetryBudget));
        let dynamic = FaultSpec {
            fallback: FaultFallback::Multipath,
            dynamics: Some(FaultArrivals { rate: 0.5, seed: 9 }),
            ..base.clone()
        };
        assert!(dynamic.validate(64).is_ok());
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let spec = FaultSpec {
                dynamics: Some(FaultArrivals { rate: bad, seed: 9 }),
                ..base.clone()
            };
            assert!(matches!(spec.validate(64), Err(ConfigError::FaultRate(_))));
        }
    }

    #[test]
    fn can_kill_accounts_for_statics_and_dynamics() {
        let empty = FaultSpec {
            mode: FaultMode::Explicit { arcs: vec![] },
            fallback: FaultFallback::Detour,
            dynamics: None,
        };
        assert!(!empty.can_kill());
        assert!(FaultSpec {
            dynamics: Some(FaultArrivals { rate: 0.1, seed: 1 }),
            ..empty.clone()
        }
        .can_kill());
        assert!(!FaultSpec {
            dynamics: Some(FaultArrivals { rate: 0.0, seed: 1 }),
            ..empty.clone()
        }
        .can_kill());
        assert!(FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 0.2,
                seed: 3,
            },
            ..empty
        }
        .can_kill());
    }

    #[test]
    fn fault_spec_serde_is_backward_compatible() {
        // Specs written before the dynamics field existed still parse,
        // and a static spec round-trips without serialising `dynamics` —
        // this is what keeps the pre-existing corpus scenarios
        // byte-identical.
        let legacy = r#"{"mode":{"Seeded":{"fraction":0.15,"seed":77}},"fallback":"Detour"}"#;
        let spec: FaultSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(spec.dynamics, None);
        assert_eq!(serde_json::to_string(&spec).unwrap(), legacy);
        let dynamic = FaultSpec {
            dynamics: Some(FaultArrivals { rate: 0.5, seed: 9 }),
            ..spec
        };
        let json = serde_json::to_string(&dynamic).unwrap();
        assert!(json.contains("dynamics"));
        assert_eq!(serde_json::from_str::<FaultSpec>(&json).unwrap(), dynamic);
    }

    #[test]
    fn new_fault_error_messages_render() {
        assert!(ConfigError::RetryBudget.to_string().contains("at least 1"));
        assert!(ConfigError::FaultRate(-2.0).to_string().contains("-2"));
        assert!(ConfigError::EscapeTtl.to_string().contains("TTL"));
        let g = ConfigError::GeneratorParam {
            param: "alpha".to_string(),
            value: -1.0,
            requirement: "must be positive".to_string(),
        };
        assert!(g.to_string().contains("alpha"));
        assert!(g.to_string().contains("positive"));
    }

    #[test]
    fn escape_ttl_validation() {
        let base = FaultSpec {
            mode: FaultMode::Seeded {
                fraction: 0.1,
                seed: 7,
            },
            fallback: FaultFallback::Escape { ttl: 8 },
            dynamics: None,
        };
        assert!(base.validate(64).is_ok());
        let zero = FaultSpec {
            fallback: FaultFallback::Escape { ttl: 0 },
            ..base
        };
        assert_eq!(zero.validate(64), Err(ConfigError::EscapeTtl));
    }

    #[test]
    fn config_error_messages_render() {
        let e = ConfigError::Dimension {
            dim: 99,
            min: 1,
            max: 26,
        };
        assert!(e.to_string().contains("99"));
        assert!(ConfigError::SlotsPerUnit
            .to_string()
            .contains("slot per unit"));
        assert!(ConfigError::PmfSum(0.8).to_string().contains("0.8"));
    }
}
