//! Shared simulation configuration types.

use serde::{Deserialize, Serialize};

/// Which routing scheme drives the hypercube simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scheme {
    /// The paper's scheme: cross the required dimensions in increasing
    /// index order (canonical paths) — §3.
    #[default]
    Greedy,
    /// Ablation: cross the required dimensions in an order chosen uniformly
    /// at random, one hop at a time. Still shortest-path and oblivious to
    /// traffic, but the network is no longer levelled, so the paper's proof
    /// technique does not apply to it (experiment E19 measures whether the
    /// *behaviour* changes).
    RandomOrder,
    /// Valiant–Brebner "mixing" (§5 discussion): route greedily to a
    /// uniformly random intermediate node, then greedily to the true
    /// destination. Doubles the expected path length but flattens any
    /// destination skew.
    TwoPhaseValiant,
}

impl Scheme {
    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Greedy => "greedy",
            Scheme::RandomOrder => "random-order",
            Scheme::TwoPhaseValiant => "two-phase-valiant",
        }
    }
}

/// How packets are generated (paper §1.1 vs §3.4).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalModel {
    /// Continuous time: each node generates packets as an independent
    /// Poisson process with rate `λ`.
    #[default]
    Poisson,
    /// Slotted time: at each slot boundary (slot length `1/slots_per_unit`)
    /// each node generates a Poisson batch with mean `λ·r`.
    Slotted {
        /// Number of slots per unit time (`1/r`, must be ≥ 1).
        slots_per_unit: u32,
    },
}

impl ArrivalModel {
    /// Slot length `r` (1.0 for the continuous model, where it is unused).
    pub fn slot_length(self) -> f64 {
        match self {
            ArrivalModel::Poisson => 1.0,
            ArrivalModel::Slotted { slots_per_unit } => 1.0 / slots_per_unit as f64,
        }
    }
}

/// Which waiting packet an arc serves next (ablation of the paper's FIFO
/// contention rule, "priority to the one that arrived first").
///
/// All three policies are non-preemptive and work-conserving, so the mean
/// delay is (nearly) policy-independent while the delay *distribution*
/// changes sharply — experiment E22 measures both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ContentionPolicy {
    /// The paper's rule: first-come, first-served.
    #[default]
    Fifo,
    /// Last-come, first-served (stack order).
    Lifo,
    /// Serve a uniformly random waiting packet.
    Random,
}

impl ContentionPolicy {
    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ContentionPolicy::Fifo => "fifo",
            ContentionPolicy::Lifo => "lifo",
            ContentionPolicy::Random => "random",
        }
    }
}

/// Destination distribution (all translation-invariant, as required by the
/// §2.2 generalisation: `Pr[dest = z | origin = x]` depends on `x ⊕ z`
/// only).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum DestinationSpec {
    /// Eq. (1): flip each bit independently with the config's `p`
    /// (Lemma 1's product form).
    #[default]
    BitFlip,
    /// Arbitrary pmf over XOR masks `0..2^d` (must have length `2^d` and
    /// sum to 1). The per-dimension load factors and the generalised
    /// stability condition `λ·max_j p_j < 1` come from
    /// `hyperroute_analysis::load::dimension_load_factors`.
    MaskPmf(Vec<f64>),
}

impl DestinationSpec {
    /// Build the Eq.-(1)-style product pmf from per-dimension flip
    /// probabilities (a convenient way to construct skewed but structured
    /// distributions).
    pub fn product_of_flips(per_dim: &[f64]) -> DestinationSpec {
        let d = per_dim.len();
        assert!((1..=20).contains(&d), "dimension out of range");
        assert!(per_dim.iter().all(|&q| (0.0..=1.0).contains(&q)));
        let n = 1usize << d;
        let mut pmf = vec![0.0f64; n];
        for (mask, slot) in pmf.iter_mut().enumerate() {
            let mut prob = 1.0;
            for (j, &q) in per_dim.iter().enumerate() {
                prob *= if (mask >> j) & 1 == 1 { q } else { 1.0 - q };
            }
            *slot = prob;
        }
        DestinationSpec::MaskPmf(pmf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_unique() {
        let names = [
            Scheme::Greedy.name(),
            Scheme::RandomOrder.name(),
            Scheme::TwoPhaseValiant.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn slot_lengths() {
        assert_eq!(ArrivalModel::Poisson.slot_length(), 1.0);
        assert_eq!(
            ArrivalModel::Slotted { slots_per_unit: 4 }.slot_length(),
            0.25
        );
    }

    #[test]
    fn defaults_match_paper_model() {
        assert_eq!(Scheme::default(), Scheme::Greedy);
        assert_eq!(ArrivalModel::default(), ArrivalModel::Poisson);
        assert_eq!(ContentionPolicy::default(), ContentionPolicy::Fifo);
        assert_eq!(DestinationSpec::default(), DestinationSpec::BitFlip);
    }

    #[test]
    fn product_of_flips_recovers_eq1() {
        // Uniform per-dimension probability q reproduces Eq. (1)'s
        // p^|mask| (1-p)^(d-|mask|).
        let q = 0.3f64;
        let DestinationSpec::MaskPmf(pmf) = DestinationSpec::product_of_flips(&[q; 3]) else {
            panic!("wrong variant");
        };
        assert_eq!(pmf.len(), 8);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for (mask, &prob) in pmf.iter().enumerate() {
            let k = (mask as u32).count_ones() as i32;
            let expect = q.powi(k) * (1.0 - q).powi(3 - k);
            assert!((prob - expect).abs() < 1e-12, "mask {mask}");
        }
    }

    #[test]
    fn skewed_product_pmf() {
        // Dim 0 always flips: masks without bit 0 have probability 0.
        let DestinationSpec::MaskPmf(pmf) = DestinationSpec::product_of_flips(&[1.0, 0.25]) else {
            panic!("wrong variant");
        };
        assert_eq!(pmf[0b00], 0.0);
        assert_eq!(pmf[0b10], 0.0);
        assert!((pmf[0b01] - 0.75).abs() < 1e-12);
        assert!((pmf[0b11] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn contention_policy_names_unique() {
        let names = [
            ContentionPolicy::Fifo.name(),
            ContentionPolicy::Lifo.name(),
            ContentionPolicy::Random.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
